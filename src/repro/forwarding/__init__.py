"""ECMP-realizable forwarding: quantization, flow hashing, analytics.

The fractional routings produced by every scheme in the repository are
idealizations; switches forward discrete flows over hash buckets with
split ratios quantized to ``1/k``.  This package measures what that
costs:

* :mod:`repro.forwarding.quantize` — path distributions to per-node
  next-hop bucket tables (with the documented path-mode fallback for
  cyclic and non-confluent pairs);
* :mod:`repro.forwarding.realize` — seeded flow placement and the
  compiled-operator evaluation of realized edge loads;
* :mod:`repro.forwarding.analytic` — exact memoized non-congestion
  probabilities for random flow placement, Monte Carlo beyond;
* :mod:`repro.forwarding.router` — the ``realized(scheme, buckets=8)``
  engine wrapper;
* :mod:`repro.forwarding.scenario_axes` / ``bench`` — the ``ecmp-gap``
  suite and the ``ecmp`` bench target (loaded lazily by the scenario
  spec and bench registries).
"""

from repro.forwarding.analytic import (
    analyze_placement,
    congestion_probability,
    monte_carlo_non_congestion,
    non_congestion_probability,
)
from repro.forwarding.quantize import (
    ForwardingTable,
    PairForwarding,
    forwarding_churn,
    quantize_pair,
    quantize_routing,
)
from repro.forwarding.realize import (
    RealizationResult,
    evaluate_realization,
    realize_flows,
)
from repro.forwarding.router import RealizedRouter

__all__ = [
    "ForwardingTable",
    "PairForwarding",
    "RealizationResult",
    "RealizedRouter",
    "analyze_placement",
    "congestion_probability",
    "evaluate_realization",
    "forwarding_churn",
    "monte_carlo_non_congestion",
    "non_congestion_probability",
    "quantize_pair",
    "quantize_routing",
    "realize_flows",
]
