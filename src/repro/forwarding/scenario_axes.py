"""Scenario-axis registration for the forwarding layer.

Imported lazily by :mod:`repro.scenarios.spec` (see
``_EXTENSION_AXIS_MODULES``); importing it registers the built-in
``ecmp-gap`` suite.  The forwarding axis of a sweep is expressed through
the *scheme* line-up — every ``realized(...)`` wrapper in ``schemes``
adds one point on the fractional-to-ECMP axis, with the unwrapped base
scheme as the fractional reference — so no new spec dataclass is needed
and every existing executor, artifact store and resume path applies
unchanged.

The suite sweeps the full 8-topology ingestion catalog with one fitted
gravity snapshot per topology and no failures (ECMP realization under
failure is a rate-adaptation question the scheme wrapper intentionally
reports as unsupported).  The base scheme is the LP-free
``oblivious(ksp, k=4)`` so both dependency legs produce bit-identical
artifacts for any worker count.
"""

from __future__ import annotations

from repro.net.catalog import catalog_entries
from repro.scenarios.spec import (
    DemandSpec,
    FailureSpec,
    ScenarioSuite,
    register_suite,
)

_BASE_SCHEME = "oblivious(ksp, k=4)"


def _suite_ecmp_gap() -> ScenarioSuite:
    topologies = [
        entry.qualified_name
        for entry in sorted(
            catalog_entries(), key=lambda entry: (entry.nodes, entry.name)
        )
    ]
    return ScenarioSuite(
        name="ecmp-gap",
        description="fractional vs ECMP-realized congestion across the "
        "real-topology catalog (quantized splits at k=2 and k=8)",
        topologies=topologies,
        demands=[DemandSpec("fitted-gravity")],
        failures=[FailureSpec("none")],
        schemes=(
            _BASE_SCHEME,
            f"realized({_BASE_SCHEME}, buckets=2)",
            f"realized({_BASE_SCHEME}, buckets=8)",
        ),
        num_snapshots=1,
        seed=0,
    )


# overwrite=True keeps registration idempotent: if this module's import
# fails partway once, the spec layer retries it on the next axis use.
register_suite("ecmp-gap", _suite_ecmp_gap, overwrite=True)
