"""Flow-level ECMP realization: hashing discrete flows onto buckets.

A quantized forwarding table still describes *expected* splits.  Real
traffic is a finite population of flows, each pinned to one bucket per
hop by a hash of its five-tuple — so realized edge loads deviate from
the fractional ideal.  This module samples that placement with
SeedSequence-derived generators (bit-identical for a given seed,
independent of pair iteration order) and evaluates the resulting
empirical routing through the compiled pair-x-edge operator
(:class:`repro.linalg.CompiledRouting`), so the sparse and dense
backends both apply.

Per pair, ``flows`` equal-size flows each carry ``demand(s, t)/flows``:

* next-hop mode — every flow draws one bucket per node along its walk
  (memoryless per-hop hashing, the product-form model);
* path mode — every flow draws a single bucket owning one path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import ForwardingError
from repro.graphs.network import Path
from repro.linalg import CompiledRouting
from repro.linalg._matrix import resolve_representation
from repro.obs import trace_span

from repro.forwarding.quantize import ForwardingTable, quantize_routing

#: SeedSequence stream tag for flow placement (the scenario runner owns
#: tags 0-3; forwarding uses its own namespace entry).
_STREAM_FLOWS = 4


def _flow_rng(seed: int, pair_index: int) -> np.random.Generator:
    """The canonical per-pair flow-placement generator."""
    return np.random.default_rng(
        np.random.SeedSequence([int(seed), _STREAM_FLOWS, int(pair_index)])
    )


def realize_flows(table: ForwardingTable, flows: int, seed: int = 0) -> Routing:
    """Empirical routing from hashing ``flows`` flows per pair onto buckets.

    Deterministic for a given ``seed``: pair streams are derived from
    ``SeedSequence([seed, stream, pair_index])`` with pairs in canonical
    (repr-sorted) order, so results do not depend on dict ordering or
    worker count.
    """
    if int(flows) < 1:
        raise ForwardingError(f"flows must be a positive integer, got {flows!r}")
    flows = int(flows)
    buckets = table.buckets
    distributions: Dict[Tuple, Dict[Path, float]] = {}
    for pair_index, pair in enumerate(table.pairs()):
        entry = table[pair]
        rng = _flow_rng(seed, pair_index)
        counts: Dict[Path, int] = {}
        if entry.mode == "path":
            # One draw per flow; bucket b is owned by the path covering b
            # in the cumulative bucket-count order of the sorted paths.
            owners: list = []
            for path, weight in entry.paths:
                owners.extend([path] * round(weight * buckets))
            for _ in range(flows):
                path = owners[int(rng.integers(0, buckets))]
                counts[path] = counts.get(path, 0) + 1
        else:
            splits = dict(entry.next_hops)
            source, target = pair
            for _ in range(flows):
                node = source
                walk = [node]
                while node != target:
                    entries = splits[node]
                    bucket = int(rng.integers(0, buckets))
                    cumulative = 0
                    for successor, count in entries:
                        cumulative += count
                        if bucket < cumulative:
                            node = successor
                            break
                    walk.append(node)
                path = tuple(walk)
                counts[path] = counts.get(path, 0) + 1
        distributions[pair] = {
            path: count / flows for path, count in counts.items()
        }
    return Routing(table.network, distributions)


@dataclass(frozen=True)
class RealizationResult:
    """Congestion of one routing under quantization and flow placement."""

    buckets: int
    flows: Optional[int]
    backend: str
    fractional_congestion: float
    quantized_congestion: float
    flow_congestion: Optional[float]
    rules: int
    fallback_pairs: int
    max_error: float

    @property
    def gap(self) -> float:
        """Quantized-over-fractional max-congestion ratio."""
        if self.fractional_congestion == 0:
            return float("nan")
        return self.quantized_congestion / self.fractional_congestion

    @property
    def flow_gap(self) -> Optional[float]:
        if self.flow_congestion is None:
            return None
        if self.fractional_congestion == 0:
            return float("nan")
        return self.flow_congestion / self.fractional_congestion

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": self.buckets,
            "flows": self.flows,
            "backend": self.backend,
            "fractional_congestion": self.fractional_congestion,
            "quantized_congestion": self.quantized_congestion,
            "flow_congestion": self.flow_congestion,
            "gap": self.gap,
            "flow_gap": self.flow_gap,
            "rules": self.rules,
            "fallback_pairs": self.fallback_pairs,
            "max_error": self.max_error,
        }


def _compiled_congestion(routing: Routing, demand: Demand, representation: str) -> float:
    compiled = CompiledRouting.from_routing(routing, representation=representation)
    return float(compiled.congestion(demand))


def evaluate_realization(
    routing: Routing,
    demand: Demand,
    buckets: int = 8,
    flows: Optional[int] = None,
    seed: int = 0,
    backend: str = "auto",
    on_cycle: str = "decompose",
    table: Optional[ForwardingTable] = None,
) -> Tuple[ForwardingTable, RealizationResult]:
    """Quantize ``routing`` and measure the realized congestion gap.

    Returns the forwarding table and a :class:`RealizationResult` whose
    congestions are all evaluated through :class:`CompiledRouting` with
    the same resolved ``backend`` (``"sparse"`` degrades to the dense
    representation without scipy, as everywhere else).  A pre-built
    ``table`` for the same routing skips the quantization step (the
    ``realized(...)`` scheme caches tables across snapshots this way).
    """
    representation = resolve_representation(backend)
    if table is None:
        table = quantize_routing(routing, buckets=buckets, on_cycle=on_cycle)
    with trace_span(
        "forwarding.realize",
        buckets=table.buckets,
        flows=0 if flows is None else int(flows),
        backend=representation,
    ) as span:
        fractional = _compiled_congestion(routing, demand, representation)
        quantized = _compiled_congestion(table.routing(), demand, representation)
        flow_congestion = None
        if flows is not None:
            empirical = realize_flows(table, flows, seed=seed)
            flow_congestion = _compiled_congestion(empirical, demand, representation)
        result = RealizationResult(
            buckets=table.buckets,
            flows=None if flows is None else int(flows),
            backend=representation,
            fractional_congestion=fractional,
            quantized_congestion=quantized,
            flow_congestion=flow_congestion,
            rules=table.num_rules(),
            fallback_pairs=len(table.fallback_pairs()),
            max_error=table.max_error(),
        )
        span.add("gap", result.gap)
    return table, result
