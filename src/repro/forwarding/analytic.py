"""Analytic non-congestion probabilities for random flow placement.

The TEController-style question: placing ``flows`` equal flows uniformly
and independently into ``bins`` ECMP buckets, what is the probability
that no bucket receives more than ``limit`` flows?  For small instances
the exact answer comes from a memoized recursion — condition on the
number ``t`` of flows landing in the last bin:

    S(m, n, k) = sum_{t=0..k} C(n, t) (1/m)^t ((m-1)/m)^(n-t) S(m-1, n-t, k)

with ``S(m, n, k) = 1`` when ``n <= k`` and ``0`` when ``m * k < n``
(conditioned on avoiding the last bin's overflow, the remaining ``n-t``
flows are uniform over the other ``m-1`` bins, so the recursion is
exact).  Beyond a state-count threshold the module falls back to seeded
Monte Carlo with a Wilson confidence interval, and ``method="auto"``
picks between them.  No sampling is ever used for small m/n/k.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ForwardingError
from repro.obs import trace_span

#: Exact-recursion memo, shared process-wide: (bins, flows, limit) -> prob.
_EXACT_CACHE: Dict[Tuple[int, int, int], float] = {}

#: ``method="auto"`` solves exactly up to this many (m, n) states.
_DEFAULT_MAX_STATES = 250_000

#: Largest ``n`` for which ``math.comb(n, t)`` is guaranteed to fit in a
#: float (``C(1030, 515) > 1.8e308`` overflows); beyond it the recursion
#: accumulates each term in log space via ``lgamma``.
_COMB_DIRECT_MAX = 1000

_METHOD_CHOICES = ("auto", "exact", "monte-carlo")


def _validate(bins: int, flows: int, limit: int) -> Tuple[int, int, int]:
    bins, flows, limit = int(bins), int(flows), int(limit)
    if bins < 1:
        raise ForwardingError(f"bins must be a positive integer, got {bins!r}")
    if flows < 0:
        raise ForwardingError(f"flows must be nonnegative, got {flows!r}")
    if limit < 0:
        raise ForwardingError(f"limit must be nonnegative, got {limit!r}")
    return bins, flows, limit


def non_congestion_probability(bins: int, flows: int, limit: int) -> float:
    """Exact P(no bin exceeds ``limit``) under uniform placement."""
    bins, flows, limit = _validate(bins, flows, limit)
    return _exact(bins, flows, limit)


def _exact(bins: int, flows: int, limit: int) -> float:
    if flows <= limit:
        return 1.0
    if bins * limit < flows:
        return 0.0
    key = (bins, flows, limit)
    cached = _EXACT_CACHE.get(key)
    if cached is not None:
        return cached
    # Iterative bottom-up over bin counts so deep recursions (hundreds
    # of bins) never hit Python's recursion limit.
    for m in range(1, bins + 1):
        for n in range(flows + 1):
            if n <= limit or m * limit < n:
                continue
            if (m, n, limit) in _EXACT_CACHE:
                continue
            if m == 1:
                # n > limit in one bin: certain overflow.
                _EXACT_CACHE[(m, n, limit)] = 0.0
                continue
            total = 0.0
            p = 1.0 / m
            for t in range(min(limit, n) + 1):
                rest = n - t
                if rest <= limit:
                    tail = 1.0
                elif (m - 1) * limit < rest:
                    tail = 0.0
                else:
                    tail = _EXACT_CACHE[(m - 1, rest, limit)]
                if tail == 0.0:
                    continue
                if n <= _COMB_DIRECT_MAX:
                    term = math.comb(n, t) * (p**t) * ((1.0 - p) ** rest)
                else:
                    # C(n, t) no longer fits in a float; the log-space
                    # product never overflows and underflows gracefully.
                    term = math.exp(
                        math.lgamma(n + 1)
                        - math.lgamma(t + 1)
                        - math.lgamma(rest + 1)
                        + t * math.log(p)
                        + rest * math.log1p(-p)
                    )
                total += term * tail
            _EXACT_CACHE[(m, n, limit)] = total
    return _EXACT_CACHE[key]


def congestion_probability(bins: int, flows: int, limit: int) -> float:
    """Exact P(some bin exceeds ``limit``); complement of the above."""
    return 1.0 - non_congestion_probability(bins, flows, limit)


def _wilson_interval(
    successes: int, samples: int, confidence: float
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if samples <= 0:
        return 0.0, 1.0
    # Normal quantile via the rational approximation of Acklam — scipy
    # may be absent on the numpy-only leg, and the common confidences
    # dominate anyway.
    z = {0.90: 1.6448536, 0.95: 1.9599640, 0.99: 2.5758293}.get(
        round(confidence, 2)
    )
    if z is None:
        # Beasley-Springer-Moro style fallback for unusual confidences.
        q = 1.0 - (1.0 - confidence) / 2.0
        t = math.sqrt(-2.0 * math.log(1.0 - q))
        z = t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)
    phat = successes / samples
    denom = 1.0 + z * z / samples
    center = (phat + z * z / (2 * samples)) / denom
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / samples + z * z / (4.0 * samples * samples))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)


def monte_carlo_non_congestion(
    bins: int,
    flows: int,
    limit: int,
    samples: int = 4000,
    seed: int = 0,
    confidence: float = 0.95,
) -> Dict[str, float]:
    """Seeded Monte Carlo estimate with a Wilson confidence interval."""
    bins, flows, limit = _validate(bins, flows, limit)
    if samples < 1:
        raise ForwardingError(f"samples must be positive, got {samples!r}")
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), bins, flows, limit]))
    if flows == 0:
        successes = samples
    else:
        draws = rng.integers(0, bins, size=(samples, flows))
        occupancy = np.zeros((samples, bins), dtype=np.int64)
        np.add.at(occupancy, (np.arange(samples)[:, None], draws), 1)
        successes = int(np.count_nonzero(np.all(occupancy <= limit, axis=1)))
    low, high = _wilson_interval(successes, samples, confidence)
    return {
        "estimate": successes / samples,
        "ci_low": low,
        "ci_high": high,
        "samples": samples,
        "confidence": confidence,
    }


def analyze_placement(
    bins: int,
    flows: int,
    limit: Optional[int] = None,
    method: str = "auto",
    samples: int = 4000,
    seed: int = 0,
    confidence: float = 0.95,
    max_states: int = _DEFAULT_MAX_STATES,
) -> Dict[str, object]:
    """Non-congestion probability with automatic exact/Monte-Carlo choice.

    ``limit`` defaults to ``ceil(flows / bins) + 1`` — one flow of
    headroom above the perfectly balanced load.  ``method="auto"`` uses
    the exact recursion when the memo it would build stays under
    ``max_states`` entries and sampling otherwise; exact results carry a
    degenerate confidence interval equal to the value.
    """
    if method not in _METHOD_CHOICES:
        raise ForwardingError(
            f"unknown analytic method {method!r}; choose from {_METHOD_CHOICES}"
        )
    bins, flows, limit_value = _validate(
        bins, flows, math.ceil(flows / bins) + 1 if limit is None else limit
    )
    chosen = method
    if method == "auto":
        chosen = "exact" if bins * (flows + 1) <= max_states else "monte-carlo"
    with trace_span(
        "forwarding.analytic", bins=bins, flows=flows, limit=limit_value, method=chosen
    ) as span:
        if chosen == "exact":
            value = non_congestion_probability(bins, flows, limit_value)
            payload: Dict[str, object] = {
                "bins": bins,
                "flows": flows,
                "limit": limit_value,
                "method": "exact",
                "non_congestion_probability": value,
                "ci_low": value,
                "ci_high": value,
            }
        else:
            mc = monte_carlo_non_congestion(
                bins, flows, limit_value,
                samples=samples, seed=seed, confidence=confidence,
            )
            payload = {
                "bins": bins,
                "flows": flows,
                "limit": limit_value,
                "method": "monte-carlo",
                "non_congestion_probability": mc["estimate"],
                "ci_low": mc["ci_low"],
                "ci_high": mc["ci_high"],
                "samples": mc["samples"],
                "confidence": mc["confidence"],
            }
        span.add("probability", float(payload["non_congestion_probability"]))
    return payload
