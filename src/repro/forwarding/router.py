"""The ``realized(...)`` scheme adapter: ECMP realization of any scheme.

``RealizedRouter`` wraps an inner router, quantizes whatever routing the
inner scheme materializes per demand, optionally hashes discrete flows
onto the quantized buckets, and reports the *realized* congestion.  The
wrapper follows the adapter contracts of :mod:`repro.engine.adapters`:
all randomness (the flow-placement seed) is consumed during
``install()``, so repeated ``route()`` calls are deterministic and
bit-identical across executors and worker counts.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.demands.demand import Demand
from repro.engine.adapters import BaseRouter
from repro.engine.router import Pair, RouteResult, Router
from repro.exceptions import ForwardingError
from repro.graphs.network import Network

from repro.forwarding.quantize import ForwardingTable, quantize_routing
from repro.forwarding.realize import evaluate_realization


class RealizedRouter(BaseRouter):
    """ECMP-realized evaluation of an inner scheme.

    Parameters
    ----------
    network:
        The topology (must match the inner router's network).
    inner:
        The wrapped scheme, constructed but not yet installed.
    buckets:
        ECMP group size ``k``; split ratios become multiples of ``1/k``.
    flows:
        When set, additionally hash this many discrete flows per pair
        onto the buckets and report the flow-level congestion as the
        scheme's congestion; when None the quantized-expected congestion
        is reported.
    on_cycle:
        Cycle/blow-up policy of the quantizer.
    backend:
        Evaluation backend for the realized routing (compiled pair-x-edge
        operator; ``"auto"``/``"sparse"``/``"dense"`` or the ``"dict"``
        reference).
    rng:
        Generator supplying the flow-placement seed at install time.
    """

    def __init__(
        self,
        network: Network,
        inner: Router,
        buckets: int = 8,
        flows: Optional[int] = None,
        on_cycle: str = "decompose",
        backend: str = "auto",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if int(buckets) < 1:
            raise ForwardingError(
                f"buckets must be a positive integer, got {buckets!r}"
            )
        inner_name = getattr(inner, "name", type(inner).__name__)
        suffix = f", flows={int(flows)}" if flows is not None else ""
        super().__init__(network, f"realized[{inner_name}, k={int(buckets)}{suffix}]")
        self._inner = inner
        self.buckets = int(buckets)
        self.flows = None if flows is None else int(flows)
        self.on_cycle = on_cycle
        self.backend = backend
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._flow_seed: int = 0
        #: (routing, version, buckets) -> table cache so fixed-ratio
        #: inners quantize once.  The routing object itself is retained:
        #: identity (``is``) is only a safe cache key while the object is
        #: alive, and adaptive inners build a fresh Routing per route().
        self._cache: Optional[tuple] = None

    @property
    def inner(self) -> Router:
        return self._inner

    def _install(self, pairs: List[Pair]) -> None:
        self._inner.install(pairs)
        if self.flows is not None:
            # The only random bits this wrapper ever consumes; route()
            # derives per-pair SeedSequence streams from this integer.
            self._flow_seed = int(self._rng.integers(0, 2**63))

    def _quantized(self, routing) -> ForwardingTable:
        version = getattr(routing, "_version", None)
        if self._cache is not None:
            cached_routing, cached_version, cached_buckets, cached_table = self._cache
            if (
                cached_routing is routing
                and cached_version == version
                and cached_buckets == self.buckets
            ):
                return cached_table
        table = quantize_routing(
            routing, buckets=self.buckets, on_cycle=self.on_cycle
        )
        self._cache = (routing, version, self.buckets, table)
        return table

    def _route(self, demand: Demand) -> RouteResult:
        inner_result = self._inner.route(demand)
        routing = inner_result.routing
        if routing is None:
            raise ForwardingError(
                f"realized(...) needs an inner scheme that materializes a "
                f"routing; {self._inner.name!r} returned none"
            )
        table, result = evaluate_realization(
            routing,
            demand,
            buckets=self.buckets,
            flows=self.flows,
            seed=self._flow_seed,
            backend="auto" if self.backend == "dict" else self.backend,
            on_cycle=self.on_cycle,
            # Cached when the inner routing is unchanged (fixed-ratio
            # inners return the same object every route).
            table=self._quantized(routing),
        )
        congestion = (
            result.flow_congestion
            if result.flow_congestion is not None
            else result.quantized_congestion
        )
        return RouteResult(
            scheme=self.name,
            congestion=congestion,
            routing=table.routing(),
            method="ecmp",
            extra={
                "buckets": self.buckets,
                "flows": self.flows,
                "fractional_congestion": result.fractional_congestion,
                "gap": result.gap,
                "flow_gap": result.flow_gap,
                "rules": result.rules,
                "fallback_pairs": result.fallback_pairs,
            },
        )


__all__ = ["RealizedRouter"]
