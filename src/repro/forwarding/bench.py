"""The ``ecmp`` bench target: fractional-vs-realized gaps on the catalog.

Registered with the :mod:`repro.linalg.bench` target registry (the
``repro bench ecmp`` CLI path).  For each bundled real topology the
bench installs the ``oblivious(ksp, k=4)`` fixed-ratio routing (LP-free,
so the target runs identically on the numpy-only leg), fits one seeded
gravity demand, and measures the max-congestion ratio between the
fractional routing and its ECMP quantization for k in {2, 4, 8, 16},
plus a flow-level realization at k=8 and the exact analytic
non-congestion probability of the matching random flow placement.

The quantized gaps depend only on (topology, scheme, seed, k) — demand
generation is scale-invariant by construction (one snapshot, the same
per-topology SeedSequence streams at every scale) — so CI can compare a
fresh smoke run against the committed full-scale ``BENCH_ecmp.json`` on
the shared topologies with a tight tolerance.  Only the flow count (and
hence runtime) grows with scale.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

import numpy as np

from repro.engine.registry import build_router
from repro.linalg.bench import BENCH_SCHEMA, environment_info, register_bench
from repro.linalg.evaluator import build_evaluator
from repro.net.catalog import catalog_entries, load_catalog_topology
from repro.net.fitting import fitted_gravity_series
from repro.utils.timing import Stopwatch, timing_entry

from repro.forwarding.analytic import analyze_placement
from repro.forwarding.quantize import quantize_routing
from repro.forwarding.realize import realize_flows

#: Discrete flows per pair in the flow-level leg, per scale.  Gaps from
#: the quantized (flow-free) leg are scale-invariant; only this grows.
_FLOW_SCALES: Dict[str, int] = {"smoke": 32, "small": 128, "full": 256}

#: ECMP group sizes swept by the bench (the committed-artifact contract).
_BUCKET_SWEEP = (2, 4, 8, 16)

#: The fixed-ratio base scheme: k-shortest-path splitting, solvable
#: without scipy so both dependency legs run the identical workload.
_BASE_SCHEME = "oblivious(ksp, k=4)"

#: The smoke scale trims the catalog to its smallest entries so the CI
#: leg stays in seconds; other scales sweep the full catalog.
_SMOKE_TOPOLOGIES = 3


def bench_ecmp(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Quantize and realize the catalog; report per-topology ECMP gaps."""
    flows = _FLOW_SCALES[scale]
    entries = sorted(catalog_entries(), key=lambda entry: (entry.nodes, entry.name))
    if scale == "smoke":
        entries = entries[:_SMOKE_TOPOLOGIES]

    per_topology: List[Dict[str, Any]] = []
    fractional_total = 0.0
    realized_total = 0.0
    quantize_total = 0.0
    total_nodes = 0
    total_edges = 0
    resolved_backend = "sparse"
    gap_by_buckets: Dict[str, float] = {str(k): 0.0 for k in _BUCKET_SWEEP}
    mean_gap_k8 = 0.0
    for index, entry in enumerate(entries):
        network = load_catalog_topology(entry.qualified_name)
        router = build_router(
            _BASE_SCHEME,
            network,
            rng=np.random.default_rng(np.random.SeedSequence([int(seed), index, 1])),
        )
        router.install()
        routing = router.routing
        demand = list(
            fitted_gravity_series(
                network, 1,
                rng=np.random.default_rng(np.random.SeedSequence([int(seed), index])),
            )
        )[0]

        with Stopwatch() as fractional_watch:
            fractional_evaluator = build_evaluator(routing, backend="sparse")
            fractional = float(fractional_evaluator.congestion(demand))
        fractional_total += fractional_watch.elapsed
        # "sparse" resolves to the dense representation on numpy-only
        # installs; record what actually ran.
        resolved_backend = fractional_evaluator.backend

        gaps: Dict[str, float] = {}
        table_k8 = None
        for buckets in _BUCKET_SWEEP:
            with Stopwatch() as quantize_watch:
                table = quantize_routing(routing, buckets=buckets)
            quantize_total += quantize_watch.elapsed
            with Stopwatch() as realized_watch:
                quantized = float(
                    build_evaluator(table.routing(), backend="sparse").congestion(demand)
                )
            realized_total += realized_watch.elapsed
            gaps[str(buckets)] = quantized / fractional
            gap_by_buckets[str(buckets)] = max(
                gap_by_buckets[str(buckets)], quantized / fractional
            )
            if buckets == 8:
                table_k8 = table

        flow_seed = int(
            np.random.default_rng(
                np.random.SeedSequence([int(seed), index, 2])
            ).integers(0, 2**63)
        )
        with Stopwatch() as flow_watch:
            empirical = realize_flows(table_k8, flows, seed=flow_seed)
            flow_congestion = float(
                build_evaluator(empirical, backend="sparse").congestion(demand)
            )
        realized_total += flow_watch.elapsed

        analytic = analyze_placement(
            bins=8,
            flows=flows,
            limit=math.ceil(flows / 8) + 1,
            method="auto",
            seed=int(seed),
        )

        total_nodes += network.num_vertices
        total_edges += network.num_edges
        mean_gap_k8 += gaps["8"]
        per_topology.append(
            {
                "name": entry.qualified_name,
                "n": network.num_vertices,
                "m": network.num_edges,
                "fractional_congestion": fractional,
                "gaps": gaps,
                "flow_congestion": flow_congestion,
                "flow_gap": flow_congestion / fractional,
                "rules_k8": table_k8.num_rules(),
                "fallback_pairs": len(table_k8.fallback_pairs()),
                "analytic": analytic,
            }
        )

    num_tables = len(entries) * len(_BUCKET_SWEEP)
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "name": "ecmp",
        "scale": scale,
        "seed": seed,
        "network": {"name": "catalog", "n": total_nodes, "m": total_edges},
        "workload": {
            "num_topologies": len(entries),
            "buckets": list(_BUCKET_SWEEP),
            "flows": flows,
            "scheme": _BASE_SCHEME,
        },
        "backends": {
            "fractional": {
                "backend": resolved_backend,
                **timing_entry(
                    fractional_total,
                    count=len(entries),
                    rate_key="topologies_per_sec",
                ),
            },
            "realized": {
                "backend": resolved_backend,
                **timing_entry(
                    realized_total,
                    count=num_tables,
                    rate_key="tables_per_sec",
                    quantize_seconds=quantize_total,
                ),
            },
        },
        "max_gap": max(gap_by_buckets.values()),
        "mean_gap_k8": mean_gap_k8 / len(entries),
        "gap_by_buckets": gap_by_buckets,
        "topologies": per_topology,
        "environment": environment_info(),
    }
    return payload


register_bench(
    "ecmp",
    bench_ecmp,
    "fractional-vs-ECMP-realized congestion gaps on the real-topology catalog",
)
