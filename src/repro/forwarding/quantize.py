"""Quantizing path distributions into ECMP-realizable forwarding tables.

Real switches do not forward fractional flow: at each node a pair's
traffic is hashed onto ``k`` equal-weight buckets and every bucket is
owned by one next hop, so split ratios are multiples of ``1/k``.  This
module converts any :class:`~repro.core.routing.Routing` into that
shape.

Per pair the quantizer first tries **next-hop form**: project the path
distribution onto directed arcs, divide each node's outgoing arc weight
by its through-flow, and quantize the resulting split ratios with the
largest-remainder method (so per-node ratios are exact multiples of
``1/k`` summing to exactly 1).  On a directed acyclic arc set this
reproduces the fractional edge loads exactly before quantization.  Two
pathologies make next-hop form unrepresentable or impractical:

* **loops** — two paths of the same pair traverse a shared edge in
  opposite directions, so the union arc set has a directed cycle and
  per-node splitting would forward traffic forever;
* **non-confluent blow-up** — the quantized next-hop DAG encodes more
  than ``max_paths`` distinct walks, so materializing the realized path
  distribution is not tractable.

Both fall back (``on_cycle="decompose"``, the default) to **path form**:
the pair's path weights themselves are quantized to multiples of
``1/k``, which any ECMP implementation can realize with per-path
buckets.  ``on_cycle="error"`` raises :class:`ForwardingError` instead.

Normalization contract (shared with ``Routing.path_usage_counts``): the
quantizer consumes the weights exactly as stored and raises a typed
:class:`ForwardingError` when a pair's weights do not sum to 1 within
``1e-9`` — it never renormalizes silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.routing import Pair, Routing
from repro.exceptions import ForwardingError
from repro.graphs.network import Network, Path, Vertex
from repro.obs import trace_span

#: Tolerance on per-pair path-weight sums (satellite contract: stricter
#: than Routing's construction tolerance because stored weights are
#: renormalized exactly; anything outside 1e-9 means external mutation).
_WEIGHT_SUM_TOL = 1e-9

#: Next-hop DAGs encoding more walks than this decompose to path form.
_DEFAULT_MAX_PATHS = 1024

_ON_CYCLE_CHOICES = ("decompose", "error")


def _largest_remainder(weights: Sequence[float], buckets: int) -> List[int]:
    """Integer bucket counts summing to ``buckets``, proportional to ``weights``.

    Largest-remainder (Hamilton) apportionment: floor everything, then
    hand the leftover buckets to the largest fractional remainders.
    Ties break deterministically by (remainder, index).  Weights are
    assumed nonnegative with a positive sum.
    """
    total = float(sum(weights))
    shares = [weight * buckets / total for weight in weights]
    counts = [int(share) for share in shares]
    leftover = buckets - sum(counts)
    order = sorted(range(len(weights)), key=lambda i: (-(shares[i] - counts[i]), i))
    for i in order[:leftover]:
        counts[i] += 1
    return counts


def _topological_order(
    nodes: Sequence[Vertex], arcs: Mapping[Vertex, Sequence[Vertex]]
) -> Optional[List[Vertex]]:
    """Kahn's algorithm; ``None`` when the arc set has a directed cycle."""
    indegree: Dict[Vertex, int] = {node: 0 for node in nodes}
    for successors in arcs.values():
        for successor in successors:
            indegree[successor] += 1
    frontier = [node for node in nodes if indegree[node] == 0]
    order: List[Vertex] = []
    while frontier:
        frontier.sort(key=repr)
        node = frontier.pop(0)
        order.append(node)
        for successor in arcs.get(node, ()):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                frontier.append(successor)
    if len(order) != len(nodes):
        return None
    return order


@dataclass(frozen=True)
class PairForwarding:
    """One pair's ECMP state: either per-node splits or quantized paths.

    ``next_hops`` maps node -> ((successor, bucket_count), ...) with the
    counts summing to ``buckets`` at every node (empty in path mode).
    ``paths`` is the realized path distribution: in next-hop mode the
    product-form walk weights of the quantized DAG, in path mode the
    per-path quantized weights (exact multiples of ``1/buckets``).
    """

    pair: Pair
    mode: str  # "next-hop" | "path"
    buckets: int
    next_hops: Tuple[Tuple[Vertex, Tuple[Tuple[Vertex, int], ...]], ...]
    paths: Tuple[Tuple[Path, float], ...]
    #: Total-variation distance between the original and realized
    #: path distributions (0.5 * L1); the per-pair quantization error.
    error: float

    def next_hop_ratios(self) -> Dict[Vertex, Dict[Vertex, float]]:
        """Fractional split ratios per node (multiples of ``1/buckets``)."""
        return {
            node: {succ: count / self.buckets for succ, count in entries}
            for node, entries in self.next_hops
        }

    def next_hop_sets(self) -> Dict[Vertex, FrozenSet[Vertex]]:
        """Per-node sets of active next hops (bucket count > 0).

        Path-mode pairs derive the sets from the arcs of their surviving
        quantized paths, so churn is comparable across modes.
        """
        if self.mode == "next-hop":
            return {
                node: frozenset(succ for succ, count in entries if count > 0)
                for node, entries in self.next_hops
            }
        sets: Dict[Vertex, set] = {}
        for path, weight in self.paths:
            if weight <= 0:
                continue
            for node, successor in zip(path, path[1:]):
                sets.setdefault(node, set()).add(successor)
        return {node: frozenset(successors) for node, successors in sets.items()}

    def num_rules(self) -> int:
        """Number of installed (node, next-hop) forwarding rules."""
        return sum(len(successors) for successors in self.next_hop_sets().values())


class ForwardingTable:
    """A full ECMP forwarding table: one :class:`PairForwarding` per pair."""

    def __init__(
        self, network: Network, buckets: int, entries: Mapping[Pair, PairForwarding]
    ) -> None:
        self._network = network
        self._buckets = int(buckets)
        self._entries: Dict[Pair, PairForwarding] = dict(entries)

    @property
    def network(self) -> Network:
        return self._network

    @property
    def buckets(self) -> int:
        return self._buckets

    @property
    def entries(self) -> Dict[Pair, PairForwarding]:
        return dict(self._entries)

    def pairs(self) -> List[Pair]:
        return sorted(self._entries, key=repr)

    def __getitem__(self, pair: Pair) -> PairForwarding:
        return self._entries[pair]

    def __len__(self) -> int:
        return len(self._entries)

    def routing(self) -> Routing:
        """The realized (still fractional) routing encoded by the table."""
        return Routing(
            self._network,
            {pair: dict(entry.paths) for pair, entry in self._entries.items()},
        )

    def next_hop_sets(self) -> Dict[Tuple[Pair, Vertex], FrozenSet[Vertex]]:
        """Flat (pair, node) -> next-hop set map; the churn comparison key."""
        flat: Dict[Tuple[Pair, Vertex], FrozenSet[Vertex]] = {}
        for pair, entry in self._entries.items():
            for node, successors in entry.next_hop_sets().items():
                flat[(pair, node)] = successors
        return flat

    def num_rules(self) -> int:
        return sum(entry.num_rules() for entry in self._entries.values())

    def fallback_pairs(self) -> List[Pair]:
        """Pairs realized in path mode (cycle or walk blow-up fallback)."""
        return sorted(
            (pair for pair, entry in self._entries.items() if entry.mode == "path"),
            key=repr,
        )

    def max_error(self) -> float:
        """Worst per-pair total-variation quantization error."""
        if not self._entries:
            return 0.0
        return max(entry.error for entry in self._entries.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-able summary (deterministic ordering throughout)."""
        pairs_payload = []
        for pair in self.pairs():
            entry = self._entries[pair]
            pairs_payload.append({
                "pair": [repr(pair[0]), repr(pair[1])],
                "mode": entry.mode,
                "rules": entry.num_rules(),
                "error": entry.error,
                "next_hops": {
                    repr(node): {
                        repr(succ): count for succ, count in entries if count > 0
                    }
                    for node, entries in entry.next_hops
                },
                "num_paths": len(entry.paths),
            })
        return {
            "buckets": self._buckets,
            "num_pairs": len(self._entries),
            "num_rules": self.num_rules(),
            "fallback_pairs": len(self.fallback_pairs()),
            "max_error": self.max_error(),
            "pairs": pairs_payload,
        }


def _pair_arcs(
    distribution: Mapping[Path, float],
) -> Dict[Tuple[Vertex, Vertex], float]:
    """Project a path distribution onto directed arc weights.

    The split ratio at node ``u`` is arc weight over through-flow, but
    through-flow is exactly the sum of ``u``'s outgoing arc weights and
    largest-remainder apportionment is scale-invariant, so arc weights
    alone determine the quantized splits.
    """
    arc_weight: Dict[Tuple[Vertex, Vertex], float] = {}
    for path, probability in distribution.items():
        for u, v in zip(path, path[1:]):
            arc_weight[(u, v)] = arc_weight.get((u, v), 0.0) + probability
    return arc_weight


def _quantize_path_mode(
    pair: Pair, distribution: Mapping[Path, float], buckets: int
) -> PairForwarding:
    """Fallback decomposition: quantize the path weights themselves."""
    paths = sorted(distribution, key=repr)
    counts = _largest_remainder([distribution[path] for path in paths], buckets)
    realized = {
        path: count / buckets for path, count in zip(paths, counts) if count > 0
    }
    error = 0.5 * sum(
        abs(realized.get(path, 0.0) - distribution[path]) for path in paths
    )
    return PairForwarding(
        pair=pair,
        mode="path",
        buckets=buckets,
        next_hops=(),
        paths=tuple(sorted(realized.items(), key=lambda item: repr(item[0]))),
        error=error,
    )


def _walk_paths(
    source: Vertex,
    target: Vertex,
    splits: Mapping[Vertex, Sequence[Tuple[Vertex, int]]],
    buckets: int,
    max_paths: int,
) -> Optional[Dict[Path, float]]:
    """Product-form path distribution of a quantized next-hop DAG.

    Every walk from ``source`` follows positive-count arcs and must end
    at ``target`` (each arc belongs to an original simple path that
    continues to the target, and per-node counts sum to ``buckets``), so
    the returned weights sum to 1.  ``None`` when more than ``max_paths``
    walks exist.
    """
    results: Dict[Path, float] = {}
    stack: List[Tuple[Tuple[Vertex, ...], float]] = [((source,), 1.0)]
    # Work bound on pushed prefixes, not frontier width: every arc leads
    # to the target, so a DAG with at most ``max_paths`` complete walks
    # pushes at most one prefix per (walk, node) — exceeding this budget
    # proves the walk count exceeds ``max_paths`` without enumerating
    # them all, while a wide-but-small DAG is never spuriously demoted.
    work_limit = (max_paths + 1) * (len(splits) + 2)
    pushed = 1
    while stack:
        prefix, weight = stack.pop()
        node = prefix[-1]
        if node == target:
            results[prefix] = results.get(prefix, 0.0) + weight
            if len(results) > max_paths:
                return None
            continue
        for successor, count in splits.get(node, ()):
            if count > 0:
                stack.append((prefix + (successor,), weight * count / buckets))
                pushed += 1
                if pushed > work_limit:
                    return None
    return results


def quantize_pair(
    pair: Pair,
    distribution: Mapping[Path, float],
    buckets: int,
    on_cycle: str = "decompose",
    max_paths: int = _DEFAULT_MAX_PATHS,
) -> PairForwarding:
    """Quantize one pair's path distribution; see module docstring."""
    total = sum(distribution.values())
    if abs(total - 1.0) > _WEIGHT_SUM_TOL:
        raise ForwardingError(
            f"pair {pair!r}: path weights sum to {total!r}, not 1 within "
            f"{_WEIGHT_SUM_TOL:g}; the quantizer does not renormalize silently"
        )
    arc_weight = _pair_arcs(distribution)
    arcs: Dict[Vertex, List[Vertex]] = {}
    nodes = set()
    for (u, v), _ in arc_weight.items():
        arcs.setdefault(u, []).append(v)
        nodes.add(u)
        nodes.add(v)
    order = _topological_order(sorted(nodes, key=repr), arcs)
    if order is None:
        if on_cycle == "error":
            raise ForwardingError(
                f"pair {pair!r}: the union of path arcs has a directed cycle; "
                "per-node next-hop splits would loop "
                '(use on_cycle="decompose" for the path-mode fallback)'
            )
        return _quantize_path_mode(pair, distribution, buckets)

    splits: Dict[Vertex, Tuple[Tuple[Vertex, int], ...]] = {}
    for node in sorted(arcs, key=repr):
        successors = sorted(arcs[node], key=repr)
        counts = _largest_remainder(
            [arc_weight[(node, successor)] for successor in successors], buckets
        )
        splits[node] = tuple(zip(successors, counts))

    source, target = pair
    realized = _walk_paths(source, target, splits, buckets, max_paths)
    if realized is None:
        if on_cycle == "error":
            raise ForwardingError(
                f"pair {pair!r}: quantized next-hop DAG encodes more than "
                f"{max_paths} walks (non-confluent blow-up); "
                'use on_cycle="decompose" for the path-mode fallback'
            )
        return _quantize_path_mode(pair, distribution, buckets)
    support = set(distribution) | set(realized)
    error = 0.5 * sum(
        abs(realized.get(path, 0.0) - distribution.get(path, 0.0))
        for path in support
    )
    return PairForwarding(
        pair=pair,
        mode="next-hop",
        buckets=buckets,
        next_hops=tuple(sorted(splits.items(), key=lambda item: repr(item[0]))),
        paths=tuple(sorted(realized.items(), key=lambda item: repr(item[0]))),
        error=error,
    )


def quantize_routing(
    routing: Routing,
    buckets: int = 8,
    on_cycle: str = "decompose",
    max_paths: int = _DEFAULT_MAX_PATHS,
) -> ForwardingTable:
    """Quantize every pair of ``routing`` into a :class:`ForwardingTable`.

    ``buckets`` is the ECMP group size ``k`` (any positive integer; the
    benched sweep is k in {2, 4, 8, 16}).  ``on_cycle`` selects between
    the documented path-mode decomposition fallback (``"decompose"``,
    default) and strict ``ForwardingError`` (``"error"``) for pairs
    whose arc union is cyclic or whose quantized DAG exceeds
    ``max_paths`` walks.
    """
    if int(buckets) < 1:
        raise ForwardingError(f"buckets must be a positive integer, got {buckets!r}")
    if on_cycle not in _ON_CYCLE_CHOICES:
        raise ForwardingError(
            f"unknown on_cycle policy {on_cycle!r}; choose from {_ON_CYCLE_CHOICES}"
        )
    buckets = int(buckets)
    pairs = sorted(routing.pairs(), key=repr)
    with trace_span("forwarding.quantize", buckets=buckets, pairs=len(pairs)) as span:
        entries = {
            pair: quantize_pair(
                pair,
                routing.distribution(*pair),
                buckets,
                on_cycle=on_cycle,
                max_paths=max_paths,
            )
            for pair in pairs
        }
        table = ForwardingTable(routing.network, buckets, entries)
        span.add("rules", table.num_rules())
        span.add("fallback_pairs", len(table.fallback_pairs()))
    return table


def forwarding_churn(
    before: Optional[ForwardingTable], after: ForwardingTable
) -> int:
    """Number of (pair, node) next-hop sets that differ between tables.

    Entries present on only one side count as changed; with ``before``
    None (the first install) every entry of ``after`` counts, so a
    stream policy's cumulative churn includes the initial table push.
    """
    new = after.next_hop_sets()
    if before is None:
        return len(new)
    old = before.next_hop_sets()
    keys = set(old) | set(new)
    return sum(1 for key in keys if old.get(key) != new.get(key))
