"""The bundled real-topology catalog and the network source resolver.

``repro/net/catalog/`` ships a small set of checked-in real topologies
(Topology Zoo GraphML and SNDlib native/XML transcriptions) described by
``index.json``: per entry a name, on-disk format, expected node/link
counts, capacity units, and provenance.  The catalog is the data behind
the ``zoo(...)`` / ``sndlib(...)`` scenario topology kinds, the ``repro
net`` CLI, and the ``repro bench net`` target.

Catalog names are qualified as ``zoo(abilene)`` / ``sndlib(geant)``
(the scenario-axis spelling); ``zoo:abilene`` and a bare ``abilene`` are
accepted wherever the name is unambiguous.  :func:`load_network`
additionally resolves file-system paths, dispatching on content
(GraphML vs SNDlib native/XML), so ad-hoc downloads parse with the same
rules as the bundled data.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.exceptions import NetError, TopologyFormatError
from repro.graphs.network import Network
from repro.net.graphml import parse_graphml
from repro.net.inference import CapacityRules
from repro.net.sndlib import SndlibInstance, parse_sndlib, parse_sndlib_xml

_CATALOG_DIR = Path(__file__).resolve().parent

#: ``zoo(abilene)`` / ``sndlib:geant`` / ``abilene`` spellings.
_QUALIFIED_RE = re.compile(r"^(?P<format>[a-z]+)\s*[(:]\s*(?P<name>[\w.-]+)\s*\)?$")

_FORMATS = ("zoo", "sndlib")


@dataclass(frozen=True)
class CatalogEntry:
    """One bundled topology: metadata from ``index.json``."""

    name: str
    format: str
    file: str
    nodes: int
    links: int
    capacity_units: str
    has_demands: bool
    provenance: str
    description: str

    @property
    def qualified_name(self) -> str:
        """The canonical ``format(name)`` spelling."""
        return f"{self.format}({self.name})"

    @property
    def path(self) -> Path:
        return _CATALOG_DIR / self.file

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "format": self.format,
            "file": self.file,
            "nodes": self.nodes,
            "links": self.links,
            "capacity_units": self.capacity_units,
            "has_demands": self.has_demands,
            "provenance": self.provenance,
            "description": self.description,
        }


def _load_index() -> List[CatalogEntry]:
    index_path = _CATALOG_DIR / "index.json"
    try:
        payload = json.loads(index_path.read_text(encoding="utf-8"))
    except OSError as error:
        raise NetError(f"catalog index is unreadable: {error}") from None
    except json.JSONDecodeError as error:
        raise NetError(f"catalog index is not valid JSON: {error}") from None
    entries = []
    for raw in payload.get("entries", []):
        entry = CatalogEntry(**raw)
        if entry.format not in _FORMATS:
            raise NetError(
                f"catalog entry {entry.name!r} has unknown format {entry.format!r}; "
                f"expected one of {list(_FORMATS)}"
            )
        entries.append(entry)
    return entries


_ENTRIES: Optional[List[CatalogEntry]] = None


def catalog_entries() -> List[CatalogEntry]:
    """All catalog entries in index order (cached)."""
    global _ENTRIES
    if _ENTRIES is None:
        _ENTRIES = _load_index()
    return list(_ENTRIES)


def available_topologies(format: Optional[str] = None) -> List[str]:
    """Sorted catalog names, optionally restricted to one format."""
    return sorted(
        entry.name
        for entry in catalog_entries()
        if format is None or entry.format == format
    )


def _split_qualified(name: str) -> Tuple[Optional[str], str]:
    """``"zoo(abilene)"`` -> ``("zoo", "abilene")``; bare names pass through."""
    match = _QUALIFIED_RE.match(name.strip())
    if match and match.group("format") in _FORMATS:
        return match.group("format"), match.group("name")
    return None, name.strip()


def catalog_entry(name: str, format: Optional[str] = None) -> CatalogEntry:
    """Look up a catalog entry by (optionally qualified) name.

    Raises :class:`NetError` listing the available names when the entry
    does not exist or a bare name is ambiguous across formats.
    """
    parsed_format, bare = _split_qualified(name)
    wanted_format = format or parsed_format
    matches = [
        entry
        for entry in catalog_entries()
        if entry.name == bare and (wanted_format is None or entry.format == wanted_format)
    ]
    if len(matches) == 1:
        return matches[0]
    available = [entry.qualified_name for entry in catalog_entries()]
    if not matches:
        raise NetError(
            f"unknown catalog topology {name!r}; available: {available}"
        )
    raise NetError(
        f"catalog name {name!r} is ambiguous across formats; "
        f"qualify it as one of {[entry.qualified_name for entry in matches]}"
    )


def load_catalog_instance(
    name: str,
    format: Optional[str] = None,
    rules: Optional[CapacityRules] = None,
) -> Tuple[CatalogEntry, SndlibInstance]:
    """Load a catalog entry as an :class:`SndlibInstance`.

    GraphML entries yield an instance with an empty demand matrix, so
    callers consume one shape regardless of the on-disk format.  The
    parsed network is checked against the index metadata (node/link
    counts, connectivity), turning a corrupted data file into a
    :class:`TopologyFormatError` at load time rather than a silently
    wrong experiment.
    """
    entry = catalog_entry(name, format=format)
    try:
        text = entry.path.read_text(encoding="utf-8")
    except OSError as error:
        raise NetError(
            f"catalog file {entry.file!r} for {entry.qualified_name} is unreadable: {error}"
        ) from None
    if entry.format == "zoo":
        network = parse_graphml(text, name=entry.name, rules=rules, source=entry.file)
        instance = SndlibInstance(network=network, demands={})
    else:
        instance = parse_sndlib(text, name=entry.name, rules=rules, source=entry.file)
    network = instance.network
    if network.num_vertices != entry.nodes or network.num_edges != entry.links:
        raise TopologyFormatError(
            f"catalog metadata mismatch for {entry.qualified_name}: index declares "
            f"{entry.nodes} nodes / {entry.links} links, parsed "
            f"{network.num_vertices} / {network.num_edges}",
            source=entry.file,
        )
    if entry.has_demands != instance.has_demands:
        raise TopologyFormatError(
            f"catalog metadata mismatch for {entry.qualified_name}: index declares "
            f"has_demands={entry.has_demands}, parsed {instance.has_demands}",
            source=entry.file,
        )
    return entry, instance


def load_catalog_topology(
    name: str,
    format: Optional[str] = None,
    rules: Optional[CapacityRules] = None,
) -> Network:
    """Load a catalog entry's :class:`Network` (metadata-checked)."""
    _, instance = load_catalog_instance(name, format=format, rules=rules)
    return instance.network


# --------------------------------------------------------------------- #
# The generic source resolver
# --------------------------------------------------------------------- #
def load_instance(
    source: str, rules: Optional[CapacityRules] = None, name: Optional[str] = None
) -> SndlibInstance:
    """Resolve ``source`` into an :class:`SndlibInstance`.

    ``source`` may be a qualified catalog name (``zoo(abilene)``,
    ``sndlib:geant``), a bare catalog name when unambiguous, or a path
    to a ``.graphml`` / SNDlib file (format detected from content).
    The instance carries the dataset's bundled demand matrix when one
    exists (SNDlib ``DEMANDS`` sections), so demand-fitting consumers
    see the same marginals whether the data came from the catalog or
    from a file.
    """
    parsed_format, bare = _split_qualified(source)
    if parsed_format is not None or any(
        entry.name == bare for entry in catalog_entries()
    ):
        _, instance = load_catalog_instance(source, rules=rules)
        return instance
    path = Path(source)
    if not path.exists():
        available = [entry.qualified_name for entry in catalog_entries()]
        raise NetError(
            f"cannot resolve network source {source!r}: not a catalog entry "
            f"(available: {available}) and not an existing file"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise NetError(f"cannot read network file {source!r}: {error}") from None
    stem = name or path.stem
    if text.lstrip().startswith("<"):
        # XML: GraphML and SNDlib XML share the syntax; dispatch on the
        # actual root element, not a substring sniff (a comment
        # mentioning "<graphml" must not confuse the router).
        from repro.net._common import local_name, parse_xml_root

        root = parse_xml_root(text, path.name, "topology XML")
        if local_name(root.tag) == "graphml":
            network = parse_graphml(text, name=stem, rules=rules, source=path.name)
            return SndlibInstance(network=network, demands={})
        return parse_sndlib_xml(text, name=stem, rules=rules, source=path.name)
    return parse_sndlib(text, name=stem, rules=rules, source=path.name)


def load_network(
    source: str, rules: Optional[CapacityRules] = None, name: Optional[str] = None
) -> Network:
    """Resolve ``source`` into a :class:`Network` (see :func:`load_instance`)."""
    return load_instance(source, rules=rules, name=name).network


__all__ = [
    "CatalogEntry",
    "available_topologies",
    "catalog_entries",
    "catalog_entry",
    "load_catalog_instance",
    "load_catalog_topology",
    "load_instance",
    "load_network",
]
