"""Shared parser plumbing: XML helpers and file reading with typed errors.

Both parser modules (:mod:`repro.net.graphml`, :mod:`repro.net.sndlib`)
need the same three things — namespace-agnostic tag names, an
``ElementTree`` parse that surfaces syntax errors as
:class:`~repro.exceptions.TopologyFormatError` with the source line, and
file reading whose ``OSError`` carries the path.  They live here so a
fix applies to every format at once.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Tuple

from repro.exceptions import TopologyFormatError


def local_name(tag: str) -> str:
    """Element tag with any ``{namespace}`` prefix stripped."""
    return tag.rsplit("}", 1)[-1]


def parse_xml_root(text: str, source: str, what: str) -> ET.Element:
    """Parse ``text`` as XML; syntax errors become typed diagnostics."""
    try:
        return ET.fromstring(text)
    except ET.ParseError as error:
        line = error.position[0] if getattr(error, "position", None) else 0
        raise TopologyFormatError(
            f"not well-formed {what}: {error}", source=source, line=line
        ) from None


def read_topology_file(path: str) -> Tuple[str, Path]:
    """Read a topology file, wrapping I/O failures in the typed error."""
    file_path = Path(path)
    try:
        return file_path.read_text(encoding="utf-8"), file_path
    except OSError as error:
        raise TopologyFormatError(
            f"cannot read file: {error}", source=str(path)
        ) from None


__all__ = ["local_name", "parse_xml_root", "read_topology_file"]
