"""Scenario-axis registration for the ingestion layer.

Imported lazily by :mod:`repro.scenarios.spec` (see
``_EXTENSION_AXIS_MODULES``); importing it registers:

* topology kinds ``zoo`` and ``sndlib`` — bundled catalog topologies,
  addressed as ``zoo(abilene)`` / ``sndlib(geant)``.  Validation runs at
  spec-parse time: an unknown catalog name fails immediately with the
  available names, never deep inside a worker process;
* demand kinds ``fitted-gravity`` and ``max-entropy`` — the fitted
  demand models of :mod:`repro.net.fitting`, usable on *any* topology
  (capacity-derived weights) but designed for the heterogeneous
  capacities of real networks.

Catalog topologies are deterministic, so — like the other deterministic
kinds — they ignore the per-topology generator the runner passes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.graphs.network import Network
from repro.net.catalog import available_topologies, load_catalog_topology
from repro.net.fitting import fitted_gravity_series, max_entropy_series
from repro.scenarios.spec import (
    ScenarioError,
    register_demand_kind,
    register_topology_kind,
)


def _catalog_validate(format: str):
    def validate(size: Optional[int], params: Dict[str, Any]) -> None:
        names = available_topologies(format)
        name = params.get("name")
        if not name:
            raise ScenarioError(
                f"{format} topology needs a catalog name, e.g. "
                f"{format}({names[0]}); available: {names}"
            )
        if name not in names:
            raise ScenarioError(
                f"unknown {format} catalog topology {name!r}; available: {names}"
            )
        if size is not None:
            raise ScenarioError(
                f"{format} topologies are fixed-size; drop the size argument"
            )
        extra = sorted(set(params) - {"name"})
        if extra:
            raise ScenarioError(
                f"unknown {format} topology parameters {extra}; only 'name' is accepted"
            )

    return validate


def _catalog_build(format: str):
    def build(size: Optional[int], params: Dict[str, Any], rng) -> Network:
        return load_catalog_topology(params["name"], format=format)

    return build


def _series_fitted_gravity(network, snapshots, rng, params):
    return fitted_gravity_series(
        network,
        snapshots,
        total=float(params.get("total", 10.0)),
        jitter=float(params.get("jitter", 0.1)),
        rng=rng,
    )


def _series_max_entropy(network, snapshots, rng, params):
    return max_entropy_series(
        network,
        snapshots,
        total=float(params.get("total", 10.0)),
        jitter=float(params.get("jitter", 0.15)),
        rng=rng,
    )


# overwrite=True keeps registration idempotent: if this module's import
# fails partway once, the spec layer retries it on the next axis use.
register_topology_kind(
    "zoo",
    _catalog_build("zoo"),
    "bundled Topology Zoo catalog entry: zoo(abilene)",
    validate=_catalog_validate("zoo"),
    overwrite=True,
)
register_topology_kind(
    "sndlib",
    _catalog_build("sndlib"),
    "bundled SNDlib catalog entry: sndlib(geant)",
    validate=_catalog_validate("sndlib"),
    overwrite=True,
)
register_demand_kind("fitted-gravity", _series_fitted_gravity, overwrite=True)
register_demand_kind("max-entropy", _series_max_entropy, overwrite=True)
