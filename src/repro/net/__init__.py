"""Real-network ingestion: parsers, topology catalog, demand fitting.

The ingestion layer turns real-world topology datasets into the repo's
:class:`~repro.graphs.network.Network` objects and fits demand models
from whatever marginals the datasets carry, so every downstream
subsystem — engine, scenario grids, compiled evaluation, streaming
replay — runs on Abilene/GÉANT-class networks exactly as it runs on the
synthetic families::

    from repro.net import load_network, fitted_gravity_series

    network = load_network("zoo(abilene)")          # bundled catalog
    series = fitted_gravity_series(network, 24, rng=0)

Three pieces:

* parsers (:mod:`repro.net.graphml`, :mod:`repro.net.sndlib`) with
  shared capacity/latency inference rules
  (:class:`~repro.net.inference.CapacityRules`) and typed
  :class:`~repro.exceptions.TopologyFormatError` diagnostics;
* the bundled catalog (:mod:`repro.net.catalog`) of checked-in real
  topologies, addressable as ``zoo(name)`` / ``sndlib(name)`` from the
  scenario topology axis, the ``repro net`` CLI, and
  :meth:`RoutingEngine.load_network`;
* demand fitting (:mod:`repro.net.fitting`): gravity estimation and
  max-entropy (IPF) fitting from link-load marginals, emitting
  :class:`~repro.demands.traffic_matrix.TrafficMatrixSeries`.
"""

from repro.exceptions import NetError, TopologyFormatError
from repro.net.catalog import (
    CatalogEntry,
    available_topologies,
    catalog_entries,
    catalog_entry,
    load_catalog_instance,
    load_catalog_topology,
    load_instance,
    load_network,
)
from repro.net.fitting import (
    IpfDiagnostics,
    capacity_weights,
    demand_marginals,
    fit_gravity,
    fitted_gravity_series,
    marginals_from_link_loads,
    max_entropy_demand,
    max_entropy_series,
    population_weights,
)
from repro.net.graphml import load_graphml, parse_graphml
from repro.net.inference import CapacityRules, haversine_km
from repro.net.sndlib import (
    SndlibInstance,
    load_sndlib,
    parse_sndlib,
    parse_sndlib_native,
    parse_sndlib_xml,
)

__all__ = [
    "NetError",
    "TopologyFormatError",
    "CapacityRules",
    "haversine_km",
    "CatalogEntry",
    "available_topologies",
    "catalog_entries",
    "catalog_entry",
    "load_catalog_instance",
    "load_catalog_topology",
    "load_instance",
    "load_network",
    "parse_graphml",
    "load_graphml",
    "SndlibInstance",
    "parse_sndlib",
    "parse_sndlib_native",
    "parse_sndlib_xml",
    "load_sndlib",
    "IpfDiagnostics",
    "capacity_weights",
    "population_weights",
    "demand_marginals",
    "marginals_from_link_loads",
    "fit_gravity",
    "fitted_gravity_series",
    "max_entropy_demand",
    "max_entropy_series",
]
