"""SNDlib instance ingestion (native text and XML formats).

`SNDlib <http://sndlib.zib.de/>`_ publishes survivable-network-design
instances — real carrier topologies (GÉANT, Polska, Nobel-Germany, …)
with link capacity modules and, usually, a measured demand matrix.  Two
on-disk formats exist and both are supported:

* the *native* format: ``?SNDlib native format`` header followed by
  ``NODES ( … ) LINKS ( … ) DEMANDS ( … )`` sections, one entry per
  line;
* the *XML* format: a ``<network>`` document with
  ``networkStructure/nodes|links`` and a ``demands`` section.

Parsing yields an :class:`SndlibInstance`: the
:class:`~repro.graphs.network.Network` plus the instance's demand matrix
(raw pair -> value, empty when the instance carries none).  Capacity
inference: a link's capacity is its pre-installed capacity when
positive, otherwise its largest installable module, otherwise
``rules.default_capacity``; node coordinates (SNDlib order: longitude
then latitude) yield the same distance-based ``latency`` edge attribute
as the GraphML parser.

All diagnostics are :class:`~repro.exceptions.TopologyFormatError` with
the source name and — for the line-oriented native format — the 1-based
offending line.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import TopologyFormatError
from repro.graphs.network import Network
from repro.net._common import local_name as _local_name
from repro.net._common import parse_xml_root, read_topology_file
from repro.obs import trace_span
from repro.net.inference import CapacityRules, parse_float

Pair = Tuple[str, str]

_NATIVE_HEADER = "?SNDlib native format"
_SECTION_RE = re.compile(r"^([A-Z_]+)\s*\($")
#: ``id ( source target ) rest`` — the common shape of LINKS/DEMANDS lines.
_ENTRY_RE = re.compile(r"^(\S+)\s*\(\s*(\S+)\s+(\S+)\s*\)\s*(.*)$")


@dataclass
class SndlibInstance:
    """A parsed SNDlib instance: the network plus its demand matrix."""

    network: Network
    demands: Dict[Pair, float] = field(default_factory=dict)

    @property
    def has_demands(self) -> bool:
        return bool(self.demands)

    def total_demand(self) -> float:
        return sum(self.demands.values())


def _strip_comment(line: str) -> str:
    return line.split("#", 1)[0].strip()


def _module_capacities(
    modules_text: str, source: str, line_number: int
) -> List[float]:
    """Installable module capacities from ``( cap cost cap cost … )``."""
    tokens = modules_text.replace("(", " ").replace(")", " ").split()
    return [
        parse_float(tokens[index], "module capacity", source=source, line=line_number)
        for index in range(0, len(tokens) - 1, 2)
    ]


def parse_sndlib_native(
    text: str,
    name: str = "sndlib",
    rules: Optional[CapacityRules] = None,
    source: str = "",
) -> SndlibInstance:
    """Parse an SNDlib *native format* document."""
    rules = rules if rules is not None else CapacityRules()
    source = source or name
    lines = text.splitlines()
    if not lines or not lines[0].strip().startswith(_NATIVE_HEADER):
        raise TopologyFormatError(
            f"missing {_NATIVE_HEADER!r} header", source=source, line=1
        )

    # MultiGraph: Network's constructor sums parallel-link capacities.
    graph = nx.MultiGraph()
    coordinates: Dict[str, Tuple[float, float]] = {}
    demands: Dict[Pair, float] = {}
    section: Optional[str] = None
    for line_number, raw_line in enumerate(lines[1:], start=2):
        line = _strip_comment(raw_line)
        if not line:
            continue
        match = _SECTION_RE.match(line)
        if match:
            if section is not None:
                raise TopologyFormatError(
                    f"section {match.group(1)} opened inside {section}",
                    source=source,
                    line=line_number,
                )
            section = match.group(1)
            continue
        if line == ")":
            section = None
            continue
        if section == "NODES":
            entry = _ENTRY_RE.match(line)
            if entry is None:
                raise TopologyFormatError(
                    f"malformed NODES entry {line!r} "
                    "(expected 'id ( longitude latitude )')",
                    source=source,
                    line=line_number,
                )
            node_id, longitude_text, latitude_text, _rest = entry.groups()
            if graph.has_node(node_id):
                raise TopologyFormatError(
                    f"duplicate node {node_id!r}", source=source, line=line_number
                )
            longitude = parse_float(longitude_text, "longitude", source, line_number)
            latitude = parse_float(latitude_text, "latitude", source, line_number)
            coordinates[node_id] = (latitude, longitude)
            graph.add_node(node_id, latitude=latitude, longitude=longitude)
        elif section == "LINKS":
            entry = _ENTRY_RE.match(line)
            if entry is None:
                raise TopologyFormatError(
                    f"malformed LINKS entry {line!r} "
                    "(expected 'id ( source target ) …')",
                    source=source,
                    line=line_number,
                )
            _link_id, u, v, rest = entry.groups()
            for endpoint in (u, v):
                if not graph.has_node(endpoint):
                    raise TopologyFormatError(
                        f"link references unknown node {endpoint!r}",
                        source=source,
                        line=line_number,
                    )
            if u == v:
                continue
            fields = rest.split("(", 1)
            numbers = fields[0].split()
            pre_installed = (
                parse_float(numbers[0], "pre-installed capacity", source, line_number)
                if numbers
                else 0.0
            )
            modules = (
                _module_capacities(fields[1], source, line_number)
                if len(fields) > 1
                else []
            )
            capacity = rules.capacity_from_modules(pre_installed, modules)
            latency = rules.latency_between(coordinates.get(u), coordinates.get(v))
            graph.add_edge(u, v, capacity=capacity, latency=latency)
        elif section == "DEMANDS":
            entry = _ENTRY_RE.match(line)
            if entry is None:
                raise TopologyFormatError(
                    f"malformed DEMANDS entry {line!r}",
                    source=source,
                    line=line_number,
                )
            _demand_id, origin, destination, rest = entry.groups()
            for endpoint in (origin, destination):
                if not graph.has_node(endpoint):
                    raise TopologyFormatError(
                        f"demand references unknown node {endpoint!r}",
                        source=source,
                        line=line_number,
                    )
            numbers = rest.split()
            if len(numbers) < 2:
                raise TopologyFormatError(
                    f"demand entry {line!r} has no value field",
                    source=source,
                    line=line_number,
                )
            value = parse_float(numbers[1], "demand value", source, line_number)
            if origin != destination and value > 0:
                pair = (origin, destination)
                demands[pair] = demands.get(pair, 0.0) + value
        # Other sections (META, ADMISSIBLE_PATHS, …) are ignored.
    if section is not None:
        raise TopologyFormatError(
            f"unterminated section {section}", source=source, line=len(lines)
        )
    if not graph.number_of_nodes():
        raise TopologyFormatError("document declares no nodes", source=source)
    try:
        network = Network(graph, name=name)
    except Exception as error:
        raise TopologyFormatError(str(error), source=source) from error
    return SndlibInstance(network=network, demands=demands)


# --------------------------------------------------------------------- #
# XML format
# --------------------------------------------------------------------- #
def _find(element: ET.Element, name: str) -> Optional[ET.Element]:
    return next(
        (child for child in element.iter() if _local_name(child.tag) == name), None
    )


def _children(element: ET.Element, name: str) -> List[ET.Element]:
    return [child for child in element.iter() if _local_name(child.tag) == name]


def _child_text(element: ET.Element, name: str) -> Optional[str]:
    child = _find(element, name)
    if child is None or child.text is None:
        return None
    return child.text.strip()


def parse_sndlib_xml(
    text: str,
    name: str = "sndlib",
    rules: Optional[CapacityRules] = None,
    source: str = "",
) -> SndlibInstance:
    """Parse an SNDlib *XML format* document."""
    rules = rules if rules is not None else CapacityRules()
    source = source or name
    root = parse_xml_root(text, source, "SNDlib XML")
    if _local_name(root.tag) != "network":
        raise TopologyFormatError(
            f"root element is <{_local_name(root.tag)}>, expected <network>",
            source=source,
        )
    structure = _find(root, "networkStructure")
    if structure is None:
        raise TopologyFormatError(
            "document contains no <networkStructure>", source=source
        )

    # MultiGraph: Network's constructor sums parallel-link capacities.
    graph = nx.MultiGraph()
    coordinates: Dict[str, Tuple[float, float]] = {}
    for node in _children(structure, "node"):
        node_id = node.get("id")
        if node_id is None:
            raise TopologyFormatError("<node> element without an id", source=source)
        if graph.has_node(node_id):
            raise TopologyFormatError(f"duplicate node {node_id!r}", source=source)
        attrs: Dict[str, float] = {}
        x_text, y_text = _child_text(node, "x"), _child_text(node, "y")
        if x_text is not None and y_text is not None:
            longitude = parse_float(x_text, "node x coordinate", source=source)
            latitude = parse_float(y_text, "node y coordinate", source=source)
            coordinates[node_id] = (latitude, longitude)
            attrs = {"latitude": latitude, "longitude": longitude}
        graph.add_node(node_id, **attrs)
    if not graph.number_of_nodes():
        raise TopologyFormatError("document declares no nodes", source=source)

    for link in _children(structure, "link"):
        u, v = _child_text(link, "source"), _child_text(link, "target")
        if u is None or v is None:
            raise TopologyFormatError(
                f"link {link.get('id')!r} lacks source/target elements", source=source
            )
        for endpoint in (u, v):
            if not graph.has_node(endpoint):
                raise TopologyFormatError(
                    f"link {link.get('id')!r} references unknown node {endpoint!r}",
                    source=source,
                )
        if u == v:
            continue
        pre_installed = 0.0
        pre_module = _find(link, "preInstalledModule")
        if pre_module is not None:
            capacity_text = _child_text(pre_module, "capacity")
            if capacity_text is not None:
                pre_installed = parse_float(
                    capacity_text, "preInstalledModule capacity", source=source
                )
        modules = [
            parse_float(capacity_text, "addModule capacity", source=source)
            for module in _children(link, "addModule")
            if (capacity_text := _child_text(module, "capacity")) is not None
        ]
        capacity = rules.capacity_from_modules(pre_installed, modules)
        latency = rules.latency_between(coordinates.get(u), coordinates.get(v))
        graph.add_edge(u, v, capacity=capacity, latency=latency)

    demands: Dict[Pair, float] = {}
    demands_section = _find(root, "demands")
    if demands_section is not None:
        for demand in _children(demands_section, "demand"):
            origin, destination = _child_text(demand, "source"), _child_text(demand, "target")
            value_text = _child_text(demand, "demandValue")
            if origin is None or destination is None or value_text is None:
                raise TopologyFormatError(
                    f"demand {demand.get('id')!r} lacks source/target/demandValue",
                    source=source,
                )
            for endpoint in (origin, destination):
                if not graph.has_node(endpoint):
                    raise TopologyFormatError(
                        f"demand {demand.get('id')!r} references unknown node "
                        f"{endpoint!r}",
                        source=source,
                    )
            value = parse_float(value_text, "demandValue", source=source)
            if origin != destination and value > 0:
                pair = (origin, destination)
                demands[pair] = demands.get(pair, 0.0) + value

    try:
        network = Network(graph, name=name)
    except Exception as error:
        raise TopologyFormatError(str(error), source=source) from error
    return SndlibInstance(network=network, demands=demands)


def parse_sndlib(
    text: str,
    name: str = "sndlib",
    rules: Optional[CapacityRules] = None,
    source: str = "",
) -> SndlibInstance:
    """Parse SNDlib content, auto-detecting native vs XML format."""
    stripped = text.lstrip()
    if stripped.startswith("<"):
        return parse_sndlib_xml(text, name=name, rules=rules, source=source)
    return parse_sndlib_native(text, name=name, rules=rules, source=source)


def load_sndlib(
    path: str, name: Optional[str] = None, rules: Optional[CapacityRules] = None
) -> SndlibInstance:
    """Read and parse an SNDlib file (name defaults to the file stem)."""
    text, file_path = read_topology_file(path)
    with trace_span("net.parse", format="sndlib", file=file_path.name):
        return parse_sndlib(
            text, name=name or file_path.stem, rules=rules, source=file_path.name
        )


__all__ = [
    "SndlibInstance",
    "parse_sndlib",
    "parse_sndlib_native",
    "parse_sndlib_xml",
    "load_sndlib",
]
