"""Capacity and latency inference rules for ingested topologies.

Real topology datasets are messy: Topology Zoo annotates links with raw
bit-per-second speeds (sometimes), SNDlib instances carry module
capacities in dataset-specific units, and plenty of links carry no
annotation at all.  :class:`CapacityRules` centralizes how raw
annotations become the repo's ``capacity`` numbers so every parser (and
every test) applies the same policy:

* explicit link speeds are divided by ``speed_unit`` (default 1e9, i.e.
  capacities are expressed in Gbit/s),
* unannotated links get ``default_capacity``,
* node coordinates, when present, yield a distance-based ``latency``
  edge attribute (great-circle kilometres over ``propagation_km_per_ms``
  kilometres per millisecond), usable as a shortest-path weight.

The rules are a plain dataclass: callers needing different units pass
their own instance to the parsers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.exceptions import TopologyFormatError

#: Mean Earth radius in kilometres (great-circle distance).
_EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class CapacityRules:
    """How raw link annotations become capacities and latencies.

    Parameters
    ----------
    default_capacity:
        Capacity assigned to links with no usable speed annotation.
    speed_unit:
        Divisor applied to raw link speeds (bit/s); the default 1e9
        expresses capacities in Gbit/s.
    min_capacity:
        Floor applied after scaling, so a 64 kbit/s historical link
        still yields a positive, routable capacity.
    propagation_km_per_ms:
        Signal propagation speed used for distance-based latency
        (~200 km/ms in fibre).
    default_latency_ms:
        Latency assigned when either endpoint has no coordinates.
    """

    default_capacity: float = 1.0
    speed_unit: float = 1e9
    min_capacity: float = 1e-3
    propagation_km_per_ms: float = 200.0
    default_latency_ms: float = 1.0

    def capacity_from_speed(self, raw_speed: Optional[float]) -> float:
        """Scaled capacity for a raw bit/s annotation (or the default)."""
        if raw_speed is None or raw_speed <= 0:
            return self.default_capacity
        return max(raw_speed / self.speed_unit, self.min_capacity)

    def capacity_from_modules(
        self, pre_installed: float, module_capacities: Iterable[float]
    ) -> float:
        """The SNDlib capacity policy, shared by both SNDlib parsers.

        Pre-installed capacity wins when positive; otherwise the largest
        installable module; otherwise the default.  Module capacities
        are in dataset units, so no ``speed_unit`` scaling applies.
        """
        if pre_installed > 0:
            return pre_installed
        positive = [capacity for capacity in module_capacities if capacity > 0]
        return max(positive) if positive else self.default_capacity

    def latency_between(
        self,
        first: Optional[Tuple[float, float]],
        second: Optional[Tuple[float, float]],
    ) -> float:
        """Propagation latency (ms) between two (lat, lon) coordinates."""
        if first is None or second is None:
            return self.default_latency_ms
        return haversine_km(first, second) / self.propagation_km_per_ms


def haversine_km(first: Tuple[float, float], second: Tuple[float, float]) -> float:
    """Great-circle distance in kilometres between (lat, lon) points."""
    lat1, lon1 = (math.radians(value) for value in first)
    lat2, lon2 = (math.radians(value) for value in second)
    half_dlat = (lat2 - lat1) / 2.0
    half_dlon = (lon2 - lon1) / 2.0
    chord = (
        math.sin(half_dlat) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(half_dlon) ** 2
    )
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(chord)))


def parse_float(
    text: str, what: str, source: str = "", line: int = 0
) -> float:
    """``float(text)`` with a :class:`TopologyFormatError` on failure.

    Non-finite values (``nan``/``inf``) are rejected too: a NaN capacity
    would slip past every ``<= 0`` guard and poison downstream
    congestion metrics silently.
    """
    try:
        value = float(text)
    except (TypeError, ValueError):
        raise TopologyFormatError(
            f"{what} is not a number: {text!r}", source=source, line=line
        ) from None
    if not math.isfinite(value):
        raise TopologyFormatError(
            f"{what} must be finite, got {text!r}", source=source, line=line
        )
    return value


__all__ = ["CapacityRules", "haversine_km", "parse_float"]
