"""Demand-model fitting for ingested real topologies.

Real topology datasets rarely ship full traffic matrices; what exists
are *marginals* — per-node ingress/egress volumes, link-load counters,
or (for SNDlib) a measured demand subset.  This module fits the two
classic estimators over whatever marginals are available and emits
:class:`~repro.demands.traffic_matrix.TrafficMatrixSeries`, so fitted
real-topology traffic composes with everything downstream (batch
evaluation, scenario grids, :class:`~repro.stream.sources.ReplayStream`
replay):

* **gravity** (:func:`fit_gravity`): ``d(s, t) ∝ w_out(s) · w_in(t)``.
  Weights come, in order of preference, from explicit per-node
  populations, from a known demand matrix's marginals (SNDlib entries),
  or from incident capacity (a node that terminates more capacity
  originates more traffic).
* **maximum entropy** (:func:`max_entropy_demand`): the least-informative
  matrix consistent with given row/column marginals, computed by
  iterative proportional fitting (Sinkhorn/RAS) over the zero-diagonal
  pair simplex.  :func:`marginals_from_link_loads` derives node
  marginals from per-link load (or capacity) counters first.

Both series builders consume randomness only from the passed generator
(per-snapshot multiplicative weight jitter), so fitted series obey the
same replay-determinism contract as every synthetic demand model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.demands.demand import Demand, Pair
from repro.demands.traffic_matrix import TrafficMatrixSeries
from repro.exceptions import DemandError, NetError
from repro.graphs.network import Network, Vertex, edge_key
from repro.obs import trace_span
from repro.utils.rng import RngLike, ensure_rng

#: No node may claim more than this share of the total volume: keeps the
#: zero-diagonal IPF problem strictly feasible under marginal jitter.
_MAX_MARGINAL_SHARE = 0.35


# --------------------------------------------------------------------- #
# Weight / marginal sources
# --------------------------------------------------------------------- #
def capacity_weights(network: Network) -> Dict[Vertex, float]:
    """Per-node weight: total incident capacity (the structural proxy)."""
    weights: Dict[Vertex, float] = {vertex: 0.0 for vertex in network.vertices}
    for edge in network.edges:
        capacity = network.capacity_of(edge)
        weights[edge[0]] += capacity
        weights[edge[1]] += capacity
    return weights


def population_weights(
    network: Network, populations: Optional[Mapping[Vertex, float]] = None
) -> Optional[Dict[Vertex, float]]:
    """Per-node weights from populations (argument or node attributes).

    Returns ``None`` when no node carries a population signal, so
    callers can fall back to :func:`capacity_weights`.
    """
    if populations is not None:
        chosen = dict(populations)
    else:
        # Dataset attributes arrive as raw strings; surface bad values
        # as the subsystem's typed error, not a bare ValueError.
        chosen = {}
        for vertex in network.vertices:
            raw = network.graph.nodes[vertex].get("population")
            if raw in (None, ""):
                continue
            try:
                chosen[vertex] = float(raw)
            except (TypeError, ValueError):
                raise NetError(
                    f"node {vertex!r} has non-numeric population {raw!r}"
                ) from None
    if not chosen:
        return None
    try:
        weights = {vertex: float(chosen.get(vertex, 0.0)) for vertex in network.vertices}
    except (TypeError, ValueError) as error:
        raise NetError(f"population weights must be numeric: {error}") from None
    if any(value < 0 for value in weights.values()):
        raise NetError("population weights must be nonnegative")
    if sum(weights.values()) <= 0:
        raise NetError("population weights must have positive total")
    return weights


def demand_marginals(
    network: Network, demands: Mapping[Pair, float]
) -> Tuple[Dict[Vertex, float], Dict[Vertex, float]]:
    """(egress, ingress) per-node volumes of a known demand matrix."""
    out_totals: Dict[Vertex, float] = {vertex: 0.0 for vertex in network.vertices}
    in_totals: Dict[Vertex, float] = {vertex: 0.0 for vertex in network.vertices}
    for (source, target), value in demands.items():
        if source not in out_totals or target not in in_totals:
            raise NetError(
                f"demand pair {(source, target)!r} references vertices outside the network"
            )
        out_totals[source] += float(value)
        in_totals[target] += float(value)
    return out_totals, in_totals


def marginals_from_link_loads(
    network: Network, loads: Optional[Mapping] = None
) -> Dict[Vertex, float]:
    """Node volume marginals inferred from per-link load counters.

    Each unit of load on a link is attributed half to either endpoint —
    the simplest tomogravity-style aggregation: transit load cancels in
    expectation, terminating load does not.  With ``loads`` omitted the
    link capacities serve as the load proxy (a fully-subscribed
    network).  Keys may be canonical edge keys or ``(u, v)`` tuples in
    either orientation; unknown edges raise :class:`NetError`.
    """
    if loads is None:
        resolved = {edge: network.capacity_of(edge) for edge in network.edges}
    else:
        resolved = {}
        for raw_edge, value in loads.items():
            key = edge_key(raw_edge[0], raw_edge[1])
            if not network.has_edge(*key):
                raise NetError(f"link load references unknown edge {raw_edge!r}")
            resolved[key] = resolved.get(key, 0.0) + float(value)
    marginals = {vertex: 0.0 for vertex in network.vertices}
    for (u, v), load in resolved.items():
        if load < 0:
            raise NetError(f"link load for edge {(u, v)!r} is negative")
        marginals[u] += 0.5 * load
        marginals[v] += 0.5 * load
    if sum(marginals.values()) <= 0:
        raise DemandError(
            "link loads are all zero: no node volume marginal can be inferred "
            "(an IPF fit downstream would have nothing to match)"
        )
    return marginals


# --------------------------------------------------------------------- #
# Gravity fitting
# --------------------------------------------------------------------- #
def fit_gravity(
    network: Network,
    total: float = 10.0,
    out_weights: Optional[Mapping[Vertex, float]] = None,
    in_weights: Optional[Mapping[Vertex, float]] = None,
    demands: Optional[Mapping[Pair, float]] = None,
    populations: Optional[Mapping[Vertex, float]] = None,
) -> Demand:
    """A deterministic gravity demand fitted to the best available signal.

    Weight preference order: explicit ``out_weights``/``in_weights``, a
    known ``demands`` matrix (its egress/ingress marginals), per-node
    ``populations`` (argument or node attribute), incident capacity.
    """
    if total <= 0:
        raise NetError("gravity total volume must be positive")
    if out_weights is None and demands:
        demand_out, demand_in = demand_marginals(network, demands)
        out_weights = demand_out
        if in_weights is None:  # never clobber caller-supplied weights
            in_weights = demand_in
    if out_weights is None:
        out_weights = population_weights(network, populations) or capacity_weights(network)
    resolved_out = {v: float(out_weights.get(v, 0.0)) for v in network.vertices}
    resolved_in = (
        {v: float(in_weights.get(v, 0.0)) for v in network.vertices}
        if in_weights is not None
        else dict(resolved_out)
    )
    normalizer = sum(
        resolved_out[s] * resolved_in[t]
        for s in network.vertices
        for t in network.vertices
        if s != t
    )
    if normalizer <= 0:
        raise NetError("gravity weights must have positive pairwise products")
    values = {
        (s, t): total * resolved_out[s] * resolved_in[t] / normalizer
        for s in network.vertices
        for t in network.vertices
        if s != t and resolved_out[s] * resolved_in[t] > 0
    }
    return Demand(values, network=network)


def fitted_gravity_series(
    network: Network,
    num_snapshots: int,
    total: float = 10.0,
    jitter: float = 0.1,
    rng: RngLike = None,
    demands: Optional[Mapping[Pair, float]] = None,
    populations: Optional[Mapping[Vertex, float]] = None,
) -> TrafficMatrixSeries:
    """A gravity series around the fitted base weights.

    Every snapshot multiplies each node's weight by an independent
    lognormal factor (``sigma = jitter``) before rebuilding the gravity
    matrix — node-level volume drift rather than pair-level noise, which
    is how real ingress volumes move.
    """
    if num_snapshots < 1:
        raise NetError("need at least one snapshot")
    if jitter < 0:
        raise NetError("jitter must be nonnegative")
    generator = ensure_rng(rng)
    if demands:
        base_out, base_in = demand_marginals(network, demands)
    else:
        base_out = population_weights(network, populations) or capacity_weights(network)
        base_in = dict(base_out)
    vertices = network.vertices
    snapshots = []
    with trace_span("net.fit", model="gravity", snapshots=num_snapshots):
        for _ in range(num_snapshots):
            factors = np.exp(jitter * generator.normal(size=len(vertices)))
            out_weights = {
                vertex: base_out[vertex] * float(factor)
                for vertex, factor in zip(vertices, factors)
            }
            in_factors = np.exp(jitter * generator.normal(size=len(vertices)))
            in_weights = {
                vertex: base_in[vertex] * float(factor)
                for vertex, factor in zip(vertices, in_factors)
            }
            snapshots.append(
                fit_gravity(
                    network, total=total, out_weights=out_weights, in_weights=in_weights
                )
            )
    return TrafficMatrixSeries(snapshots=snapshots)


# --------------------------------------------------------------------- #
# Maximum-entropy fitting (iterative proportional fitting)
# --------------------------------------------------------------------- #
#: Relative in/out total mismatch beyond which the marginals are treated
#: as inconsistent rather than numerically jittered.
_MARGINAL_MISMATCH_TOL = 1e-6


@dataclass(frozen=True)
class IpfDiagnostics:
    """Convergence record of one iterative-proportional-fitting run.

    Attached to the fitted :class:`~repro.demands.demand.Demand` as its
    ``fit_diagnostics`` attribute, so closed-loop consumers (the
    telemetry estimators) can report how hard the fit worked without
    re-running it.  ``residual`` is the final max marginal mismatch,
    in absolute volume units.
    """

    iterations: int
    residual: float
    converged: bool
    tolerance: float
    max_iterations: int


def _check_marginal_consistency(
    vertices, row: "np.ndarray", col: "np.ndarray"
) -> None:
    """Raise :class:`DemandError` when in/out totals disagree.

    Without an explicit ``total`` the IPF volume comes from the egress
    sum, and a mismatched ingress sum used to be rescaled silently —
    masking upstream accounting bugs (e.g. link-load counters that
    double-count one direction).  The error names the node contributing
    the largest imbalance in the mismatch direction, which is where the
    bad counter almost always lives.
    """
    out_total = float(row.sum())
    in_total = float(col.sum())
    mismatch = abs(out_total - in_total)
    if mismatch <= _MARGINAL_MISMATCH_TOL * max(out_total, in_total):
        return
    gaps = row - col
    if out_total > in_total:
        offender = int(np.argmax(gaps))
    else:
        offender = int(np.argmin(gaps))
    vertex = vertices[offender]
    raise DemandError(
        f"inconsistent volume marginals: egress total {out_total:g} != ingress "
        f"total {in_total:g}; node {vertex!r} contributes the largest imbalance "
        f"(out - in = {gaps[offender]:+g}).  Pass total=... to rescale both "
        f"sides explicitly if the mismatch is intentional"
    )


def _clip_marginals(values: "np.ndarray", volume: float) -> "np.ndarray":
    """Scale marginals to ``volume`` with no entry above the share cap.

    Water-filling: entries over the cap are pinned to it and the excess
    is redistributed proportionally over the rest (repeating, since the
    redistribution can push new entries over).  The result sums to
    ``volume`` with every entry at most ``cap`` — keeping the
    zero-diagonal IPF problem feasible — unlike a clip-then-renormalize,
    which would scale clipped entries straight back over the cap.
    """
    cap = max(_MAX_MARGINAL_SHARE, 1.0 / len(values)) * volume
    scaled = values * (volume / values.sum())
    for _ in range(len(values)):
        if not np.any(scaled > cap * (1.0 + 1e-12)):
            return scaled
        over = scaled >= cap
        free = ~over
        remaining = volume - cap * float(over.sum())
        free_sum = float(scaled[free].sum()) if np.any(free) else 0.0
        if remaining <= 0 or free_sum <= 0:
            raise NetError(
                "marginals are too concentrated to fit with zero self-traffic: "
                f"{int(over.sum())} of {len(values)} nodes would exceed a "
                f"{cap / volume:.0%} share of the total volume"
            )
        scaled = np.where(over, cap, scaled)
        scaled[free] *= remaining / free_sum
    return scaled


def max_entropy_demand(
    network: Network,
    out_marginals: Mapping[Vertex, float],
    in_marginals: Optional[Mapping[Vertex, float]] = None,
    total: Optional[float] = None,
    tolerance: float = 1e-9,
    max_iterations: int = 1000,
    prior: Optional[Mapping[Pair, float]] = None,
) -> Demand:
    """The maximum-entropy demand matching per-node volume marginals.

    Runs iterative proportional fitting (Sinkhorn/RAS) on the
    zero-diagonal pair matrix: alternately rescale rows to the egress
    marginals and columns to the ingress marginals until both match
    within ``tolerance`` (relative to the total volume).  Marginals are
    normalized to a common ``total`` (default: the egress sum) and
    clipped to at most ``0.35 · total`` per node, which keeps the
    zero-diagonal problem strictly feasible.  When both marginals are
    supplied with *no* explicit ``total``, disagreeing egress/ingress
    sums raise :class:`~repro.exceptions.DemandError` naming the node
    with the largest imbalance (an explicit ``total`` opts back into
    rescaling both sides).

    ``prior`` warm-starts the fit: IPF is seeded from the prior matrix
    (e.g. a gravity fit, see :func:`fit_gravity`) instead of the
    independence seed, so the result is the minimum cross-entropy
    projection of the prior onto the marginal constraints — pairs the
    prior favors keep more mass wherever the marginals leave slack.

    The fitted demand carries an :class:`IpfDiagnostics` record as its
    ``fit_diagnostics`` attribute.  Iterations are always capped at
    ``max_iterations``; non-convergence raises :class:`NetError` with
    the residual in the message.
    """
    vertices = network.vertices
    if len(vertices) < 2:
        raise NetError("max-entropy fitting needs at least two vertices")
    if max_iterations < 1:
        raise NetError("max_iterations must be at least 1")
    row = np.array([float(out_marginals.get(v, 0.0)) for v in vertices])
    if in_marginals is None:
        col = row.copy()
    else:
        col = np.array([float(in_marginals.get(v, 0.0)) for v in vertices])
    if np.any(row < 0) or np.any(col < 0):
        raise NetError("marginals must be nonnegative")
    if row.sum() <= 0 or col.sum() <= 0:
        raise NetError("marginals must have positive totals")
    if in_marginals is not None and total is None:
        _check_marginal_consistency(vertices, row, col)
    volume = float(total) if total is not None else float(row.sum())
    if volume <= 0:
        raise NetError("total volume must be positive")
    row = _clip_marginals(row, volume)
    col = _clip_marginals(col, volume)

    if prior is None:
        matrix = np.outer(row, col) / volume
    else:
        index = {vertex: i for i, vertex in enumerate(vertices)}
        matrix = np.zeros((len(vertices), len(vertices)))
        for (source, target), value in prior.items():
            i, j = index.get(source), index.get(target)
            if i is None or j is None:
                raise NetError(
                    f"prior demand pair {(source, target)!r} references vertices "
                    "outside the network"
                )
            if value < 0:
                raise NetError(f"prior demand for {(source, target)!r} is negative")
            matrix[i, j] = float(value)
        if matrix.sum() <= 0:
            raise NetError("prior demand must have positive total volume")
        # A strictly positive background keeps every off-diagonal cell
        # reachable: a sparse prior would otherwise pin its zero cells
        # and can make the (clipped, hence feasible) marginals
        # unreachable for IPF.
        matrix += 1e-9 * matrix.sum() / max(len(vertices) ** 2 - len(vertices), 1)
    np.fill_diagonal(matrix, 0.0)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        row_sums = matrix.sum(axis=1)
        matrix *= np.divide(
            row, row_sums, out=np.zeros_like(row), where=row_sums > 0
        )[:, None]
        col_sums = matrix.sum(axis=0)
        matrix *= np.divide(
            col, col_sums, out=np.zeros_like(col), where=col_sums > 0
        )[None, :]
        residual = max(
            float(np.max(np.abs(matrix.sum(axis=1) - row))),
            float(np.max(np.abs(matrix.sum(axis=0) - col))),
        )
        if residual <= tolerance * volume:
            break
    else:
        raise NetError(
            f"iterative proportional fitting did not converge within "
            f"{max_iterations} iterations (residual {residual:.3e})"
        )
    cutoff = 1e-12 * volume
    values = {
        (s, t): float(matrix[i, j])
        for i, s in enumerate(vertices)
        for j, t in enumerate(vertices)
        if i != j and matrix[i, j] > cutoff
    }
    fitted = Demand(values, network=network)
    fitted.fit_diagnostics = IpfDiagnostics(
        iterations=iterations,
        residual=residual,
        converged=True,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    return fitted


def max_entropy_series(
    network: Network,
    num_snapshots: int,
    total: float = 10.0,
    jitter: float = 0.15,
    rng: RngLike = None,
    loads: Optional[Mapping] = None,
) -> TrafficMatrixSeries:
    """A max-entropy series from jittered link-load marginals.

    The base marginals come from :func:`marginals_from_link_loads`
    (capacities by default); each snapshot jitters them with lognormal
    node factors and re-runs the IPF fit, modelling measured-counter
    drift around a structural baseline.
    """
    if num_snapshots < 1:
        raise NetError("need at least one snapshot")
    if jitter < 0:
        raise NetError("jitter must be nonnegative")
    generator = ensure_rng(rng)
    base = marginals_from_link_loads(network, loads)
    vertices = network.vertices
    snapshots = []
    with trace_span("net.fit", model="max-entropy", snapshots=num_snapshots):
        for _ in range(num_snapshots):
            out_factors = np.exp(jitter * generator.normal(size=len(vertices)))
            in_factors = np.exp(jitter * generator.normal(size=len(vertices)))
            out_marginals = {
                vertex: base[vertex] * float(factor)
                for vertex, factor in zip(vertices, out_factors)
            }
            in_marginals = {
                vertex: base[vertex] * float(factor)
                for vertex, factor in zip(vertices, in_factors)
            }
            snapshots.append(
                max_entropy_demand(
                    network, out_marginals, in_marginals, total=total
                )
            )
    return TrafficMatrixSeries(snapshots=snapshots)


__all__ = [
    "IpfDiagnostics",
    "capacity_weights",
    "population_weights",
    "demand_marginals",
    "marginals_from_link_loads",
    "fit_gravity",
    "fitted_gravity_series",
    "max_entropy_demand",
    "max_entropy_series",
]
