"""Topology Zoo GraphML ingestion.

The `Internet Topology Zoo <http://www.topology-zoo.org/>`_ distributes
real ISP/WAN topologies as GraphML with dataset-specific attribute keys:
node ``label``/``Latitude``/``Longitude``, edge ``LinkSpeedRaw`` (bit/s)
or ``LinkSpeed`` + ``LinkSpeedUnits``.  :func:`parse_graphml` turns such
a document into a :class:`~repro.graphs.network.Network`:

* node ids are relabelled to their human-readable ``label`` when the
  labels are unique (``"Seattle"`` instead of ``"3"``),
* capacities come from the speed annotations through
  :class:`~repro.net.inference.CapacityRules` (default Gbit/s units,
  ``default_capacity`` for unannotated links, parallel links summed),
* node coordinates become a per-edge ``latency`` attribute
  (great-circle distance over fibre propagation speed), usable as a
  shortest-path weight.

Malformed documents raise :class:`~repro.exceptions.TopologyFormatError`
with the source name (and the XML parser's line for syntax errors)
rather than bare ``xml`` / ``KeyError`` tracebacks.

The parser reads with :mod:`xml.etree.ElementTree` and is namespace-
agnostic, so both namespaced Topology Zoo exports and plain GraphML
parse identically.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.exceptions import TopologyFormatError
from repro.graphs.network import Network
from repro.net._common import local_name as _local_name
from repro.net._common import parse_xml_root, read_topology_file
from repro.obs import trace_span
from repro.net.inference import CapacityRules, parse_float

#: Multipliers for ``LinkSpeedUnits`` annotations (bit/s).
_SPEED_UNITS = {"": 1.0, "K": 1e3, "M": 1e6, "G": 1e9, "T": 1e12}


def _data_values(element: ET.Element, key_names: Dict[str, str]) -> Dict[str, str]:
    """``attr.name -> text`` for the <data> children of a node/edge."""
    values: Dict[str, str] = {}
    for child in element:
        if _local_name(child.tag) != "data":
            continue
        key_id = child.get("key", "")
        name = key_names.get(key_id, key_id)
        values[name] = (child.text or "").strip()
    return values


def _link_speed(values: Dict[str, str], source: str) -> Optional[float]:
    """The raw bit/s speed of an edge, if annotated."""
    raw = values.get("LinkSpeedRaw")
    if raw:
        return parse_float(raw, "LinkSpeedRaw", source=source)
    speed = values.get("LinkSpeed")
    if not speed:
        return None
    unit = values.get("LinkSpeedUnits", "").strip().upper()
    if unit and unit not in _SPEED_UNITS:
        raise TopologyFormatError(
            f"unknown LinkSpeedUnits {unit!r} (expected one of K/M/G/T)",
            source=source,
        )
    return parse_float(speed, "LinkSpeed", source=source) * _SPEED_UNITS[unit]


def parse_graphml(
    text: str,
    name: str = "graphml",
    rules: Optional[CapacityRules] = None,
    source: str = "",
) -> Network:
    """Parse a Topology Zoo style GraphML document into a :class:`Network`.

    Parameters
    ----------
    text:
        The GraphML document.
    name:
        Network name recorded on the result.
    rules:
        Capacity/latency inference rules (default :class:`CapacityRules`).
    source:
        File name used in diagnostics (defaults to ``name``).
    """
    rules = rules if rules is not None else CapacityRules()
    source = source or name
    root = parse_xml_root(text, source, "GraphML")
    if _local_name(root.tag) != "graphml":
        raise TopologyFormatError(
            f"root element is <{_local_name(root.tag)}>, expected <graphml>", source=source
        )

    key_names: Dict[str, str] = {}
    for child in root:
        if _local_name(child.tag) == "key":
            key_names[child.get("id", "")] = child.get("attr.name", child.get("id", ""))

    graph_element = next(
        (child for child in root if _local_name(child.tag) == "graph"), None
    )
    if graph_element is None:
        raise TopologyFormatError("document contains no <graph> element", source=source)

    # A MultiGraph: Network's constructor sums parallel-edge capacities
    # (Topology Zoo multi-links) — one merge policy for every parser.
    graph = nx.MultiGraph()
    labels: Dict[str, str] = {}
    coordinates: Dict[str, Tuple[float, float]] = {}
    for element in graph_element:
        if _local_name(element.tag) != "node":
            continue
        node_id = element.get("id")
        if node_id is None:
            raise TopologyFormatError("<node> element without an id", source=source)
        if node_id in labels:
            raise TopologyFormatError(f"duplicate node id {node_id!r}", source=source)
        values = _data_values(element, key_names)
        labels[node_id] = values.get("label", "").strip()
        attrs: Dict[str, object] = {}
        if values.get("Latitude") and values.get("Longitude"):
            latitude = parse_float(values["Latitude"], "Latitude", source=source)
            longitude = parse_float(values["Longitude"], "Longitude", source=source)
            coordinates[node_id] = (latitude, longitude)
            attrs["latitude"] = latitude
            attrs["longitude"] = longitude
        for extra in ("Country", "type", "Internal", "population"):
            if values.get(extra):
                attrs[extra.lower()] = values[extra]
        graph.add_node(node_id, **attrs)
    if not graph.number_of_nodes():
        raise TopologyFormatError("document declares no nodes", source=source)

    for element in graph_element:
        if _local_name(element.tag) != "edge":
            continue
        endpoint_ids = (element.get("source"), element.get("target"))
        if None in endpoint_ids:
            raise TopologyFormatError(
                "<edge> element without source/target attributes", source=source
            )
        unknown = [end for end in endpoint_ids if end not in labels]
        if unknown:
            raise TopologyFormatError(
                f"edge {endpoint_ids!r} references unknown node ids "
                f"{sorted(map(repr, unknown))}",
                source=source,
            )
        u, v = endpoint_ids
        if u == v:
            continue
        values = _data_values(element, key_names)
        capacity = rules.capacity_from_speed(_link_speed(values, source))
        latency = rules.latency_between(coordinates.get(u), coordinates.get(v))
        graph.add_edge(u, v, capacity=capacity, latency=latency)

    # Prefer human-readable labels when they identify nodes uniquely.
    rendered = [label for label in labels.values() if label]
    if len(rendered) == len(labels) and len(set(rendered)) == len(rendered):
        graph = nx.relabel_nodes(graph, labels, copy=True)
    try:
        return Network(graph, name=name)
    except Exception as error:
        raise TopologyFormatError(str(error), source=source) from error


def load_graphml(
    path: str, name: Optional[str] = None, rules: Optional[CapacityRules] = None
) -> Network:
    """Read and parse a GraphML file (name defaults to the file stem)."""
    text, file_path = read_topology_file(path)
    with trace_span("net.parse", format="graphml", file=file_path.name):
        return parse_graphml(
            text,
            name=name or file_path.stem,
            rules=rules,
            source=file_path.name,
        )


__all__ = ["parse_graphml", "load_graphml"]
