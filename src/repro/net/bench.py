"""The ``net`` bench target: compile + evaluate every catalog topology.

Registered with the :mod:`repro.linalg.bench` target registry (the
``repro bench net`` CLI path).  For each bundled real topology the bench
parses the catalog file, installs the shortest-path (``spf``) routing,
fits a gravity demand batch, and measures congestion evaluation through
the ``dict`` reference evaluator against the compiled ``sparse`` backend
— so the committed ``BENCH_net.json`` baseline records, per real
topology, the parse, compile, and batch-evaluate costs on heterogeneous
real capacities (where utilization division actually exercises the
capacity vector, unlike the unit-capacity synthetic workloads).

The aggregate ``backends`` / ``speedup`` / ``max_abs_difference`` keys
follow the ``repro-bench/v1`` schema; the per-topology breakdown lives
under the additive ``topologies`` key.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.linalg.bench import BENCH_SCHEMA, environment_info, register_bench
from repro.linalg.evaluator import DictEvaluator, build_evaluator
from repro.net.catalog import catalog_entries, load_catalog_topology
from repro.net.fitting import fitted_gravity_series
from repro.utils.timing import Stopwatch, timing_entry

#: Demand matrices evaluated per topology, per scale.
_NET_SCALES: Dict[str, int] = {"smoke": 20, "small": 100, "full": 400}

#: The smoke scale trims the catalog to its smallest entries so the CI
#: leg stays in seconds; other scales sweep the full catalog.
_SMOKE_TOPOLOGIES = 3


def bench_net(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Parse, compile, and batch-evaluate the bundled real-topology catalog."""
    from repro.linalg.bench import _shortest_path_routing

    num_demands = _NET_SCALES[scale]
    entries = sorted(catalog_entries(), key=lambda entry: (entry.nodes, entry.name))
    if scale == "smoke":
        entries = entries[:_SMOKE_TOPOLOGIES]

    per_topology: List[Dict[str, Any]] = []
    dict_total = 0.0
    sparse_total = 0.0
    compile_total = 0.0
    parse_total = 0.0
    max_diff = 0.0
    total_nodes = 0
    total_edges = 0
    resolved_backend = "sparse"
    for index, entry in enumerate(entries):
        with Stopwatch() as parse_watch:
            network = load_catalog_topology(entry.qualified_name)
        routing = _shortest_path_routing(network)
        rng = np.random.default_rng(np.random.SeedSequence([int(seed), index]))
        demands = list(fitted_gravity_series(network, num_demands, rng=rng))

        dict_evaluator = DictEvaluator(routing, cache_size=1)
        with Stopwatch() as dict_watch:
            dict_congestions = dict_evaluator.congestions(demands)
        with Stopwatch() as compile_watch:
            sparse_evaluator = build_evaluator(routing, backend="sparse")
        with Stopwatch() as sparse_watch:
            sparse_congestions = sparse_evaluator.congestions(demands)
        # "sparse" resolves to the dense representation on numpy-only
        # installs; record what actually ran.
        resolved_backend = sparse_evaluator.backend

        topology_diff = float(
            np.max(np.abs(dict_congestions - sparse_congestions), initial=0.0)
        )
        per_topology.append(
            {
                "name": entry.qualified_name,
                "format": entry.format,
                "n": network.num_vertices,
                "m": network.num_edges,
                "capacity_units": entry.capacity_units,
                "num_demands": num_demands,
                "parse_seconds": parse_watch.elapsed,
                "compile_seconds": compile_watch.elapsed,
                "dict_seconds": dict_watch.elapsed,
                "sparse_seconds": sparse_watch.elapsed,
                "speedup_sparse_over_dict": (
                    dict_watch.elapsed / sparse_watch.elapsed
                    if sparse_watch.elapsed > 0
                    else None
                ),
                "max_abs_difference": topology_diff,
            }
        )
        parse_total += parse_watch.elapsed
        dict_total += dict_watch.elapsed
        compile_total += compile_watch.elapsed
        sparse_total += sparse_watch.elapsed
        max_diff = max(max_diff, topology_diff)
        total_nodes += network.num_vertices
        total_edges += network.num_edges

    evaluations = num_demands * len(entries)
    return {
        "schema": BENCH_SCHEMA,
        "name": "net",
        "scale": scale,
        "seed": seed,
        "network": {"name": "catalog", "n": total_nodes, "m": total_edges},
        "workload": {
            "num_topologies": len(entries),
            "num_demands": num_demands,
            "num_evaluations": evaluations,
            "parse_seconds": parse_total,
        },
        "backends": {
            "dict": {
                "backend": "dict",
                **timing_entry(dict_total, count=evaluations, rate_key="demands_per_sec"),
            },
            "sparse": {
                "backend": resolved_backend,
                **timing_entry(
                    sparse_total,
                    count=evaluations,
                    rate_key="demands_per_sec",
                    compile_seconds=compile_total,
                ),
            },
        },
        "speedup_sparse_over_dict": dict_total / sparse_total if sparse_total > 0 else None,
        "max_abs_difference": max_diff,
        "topologies": per_topology,
        "environment": environment_info(),
    }


register_bench(
    "net",
    bench_net,
    "real-topology catalog: parse + compile + batch evaluation per entry",
)

__all__ = ["bench_net"]
