"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``experiments``
    Run one or more experiments from the registry and print their tables::

        python -m repro experiments --scale small E1_sparsity_tradeoff E3_lower_bound
        python -m repro experiments --scale paper            # all of them
        python -m repro experiments --json E8_smore_te       # machine-readable

``te``
    Traffic-engineering simulation through the scheme registry: pick a
    topology, a traffic-matrix series length, and any number of scheme
    specs (``--scheme`` is repeatable)::

        python -m repro te --topology hypercube:4 --snapshots 6 \
            --scheme "semi-oblivious(racke, alpha=4)" --scheme "ksp(k=4)" --scheme spf
        python -m repro te --topology waxman:14 --json
        python -m repro te --topology "isp(pops=16, seed=3)" --scheme spf

    Any registered scenario topology kind works here (and on every other
    ``--topology`` flag), including the synthetic ISP-scale generators
    ``isp(pops=...)`` and ``backbone:N``.

``scenarios``
    Declarative failure × demand × topology sweeps through the engine::

        python -m repro scenarios list
        python -m repro scenarios describe smoke
        python -m repro scenarios run --suite smoke --workers 2 --json
        python -m repro scenarios run --suite failures --output sweep.json
        python -m repro scenarios run --suite real-world --workers 4 \
            --artifact-dir sweeps/rw            # killable: streams cell results
        python -m repro scenarios run --suite real-world --workers 4 \
            --resume sweeps/rw                  # finishes only the missing cells

    ``run`` executes every grid cell (candidate paths installed once per
    topology, deterministic per-cell seeds) and prints the harness table
    rendering — or, with ``--json``, the artifact itself, which is
    bit-identical for any ``--workers`` value, executor, or
    kill-and-resume history.

``stream``
    Streaming traffic replay: play a time-varying demand stream through
    one scheme under online rerouting policies, evaluated incrementally
    on the compiled backend::

        python -m repro stream list
        python -m repro stream describe random-walk
        python -m repro stream run --topology torus:5 --stream flash-crowd \
            --steps 96 --policy static --policy "periodic(k=16)" --optimal
        python -m repro stream run --stream adversarial-shift --json

    Seeded runs are bit-identical however often they are replayed (the
    artifact carries no wall-clock fields).

``net``
    Real-network ingestion: list and inspect the bundled topology
    catalog (Topology Zoo GraphML, SNDlib native/XML), convert any
    catalog entry or file into the canonical JSON network form, and fit
    demand models (gravity, max-entropy) from the dataset's marginals::

        python -m repro net list
        python -m repro net describe "sndlib(geant)"
        python -m repro net convert "zoo(abilene)" --output abilene.json
        python -m repro net fit "sndlib(polska)" --model max-entropy --json
        python -m repro net odme "zoo(abilene)" --noise 0.05 --coverage 0.75 --json

    Seeded ``convert``/``fit`` artifacts are bit-identical across runs.
    Catalog names also work wherever a topology is expected:
    ``repro te --topology "zoo(abilene)"``.

``bench``
    Run registered benchmark targets and write schema-stable
    ``BENCH_<name>.json`` artifacts comparing a reference and a fast
    evaluation path (``dict`` vs ``sparse``, per-step batch vs
    incremental streaming, the real-topology catalog)::

        python -m repro bench list
        python -m repro bench linalg --scale smoke
        python -m repro bench stream --scale small
        python -m repro bench net --scale smoke
        python -m repro bench scale --scale small     # nodes-vs-seconds/peak-MB
        python -m repro bench --scale full --output-dir .

``forwarding``
    ECMP realization: quantize any scheme's routing into per-node
    next-hop buckets (split ratios in multiples of 1/k), hash discrete
    flows onto the table, and measure the fractional-vs-realized
    congestion gap with analytic non-congestion probabilities::

        python -m repro forwarding quantize --topology "zoo(abilene)" --buckets 8
        python -m repro forwarding realize --scheme "oblivious(ksp, k=4)" --flows 128
        python -m repro forwarding gap --topology "zoo(abilene)" --buckets 8 --json

    Seeded ``--json`` artifacts are bit-identical across runs.  The
    ``realized(...)`` scheme wrapper exposes the same realization to
    every other subcommand, e.g.
    ``repro te --scheme "realized(oblivious(ksp, k=4), buckets=8)"``.

``trace``
    Inspect trace files produced by ``--trace`` (available on ``te``,
    ``scenarios run``, ``stream run``, ``net fit``, ``net odme``)::

        python -m repro scenarios run --suite smoke --workers 4 --trace run.jsonl
        python -m repro trace summarize run.jsonl
        python -m repro trace export run.jsonl --chrome

    ``summarize`` prints the hot-span table (count, self/total time,
    p50/p95); ``export --chrome`` writes a Chrome/Perfetto trace-event
    file loadable at ``chrome://tracing`` or https://ui.perfetto.dev.

``schemes``
    List the registered scheme names and oblivious sampling sources.

``list``
    List the available experiment ids with one-line descriptions.

``quickstart``
    Run the quickstart pipeline on a hypercube (same as
    ``examples/quickstart.py``) — useful as an installation check.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import REGISTRY
from repro.experiments.harness import ExperimentConfig
from repro.utils.serialization import dumps as json_dumps

_DESCRIPTIONS = {
    "E1_sparsity_tradeoff": "sparsity vs competitiveness sweep (Theorem 2.5)",
    "E2_log_sparsity": "logarithmic sparsity suffices (Theorem 2.3)",
    "E3_lower_bound": "C(n,k) lower bound and Figure 1 (Lemma 8.1)",
    "E4_deterministic_hypercube": "deterministic single path vs sampled paths (KKT91)",
    "E5_weak_routing_process": "the Lemma 5.6 deletion process",
    "E6_rounding": "randomized rounding guarantee (Lemma 6.3)",
    "E7_completion_time": "completion-time competitive sampling (Section 7)",
    "E8_smore_te": "SMORE-style traffic engineering",
    "E9_arbitrary_demands": "(alpha+cut)-sparsity for arbitrary demands (Lemma 2.7)",
    "E10_oblivious_baselines": "quality of the oblivious sampling sources",
    "E11_ablation_selection": "ablation of the path-selection rule",
    "E12_robustness": "link-failure robustness of sampled candidate paths",
}

#: Default scheme specs for the ``te`` subcommand (the SMORE line-up).
_DEFAULT_TE_SCHEMES = [
    "semi-oblivious(racke, alpha=4)",
    "oblivious(racke)",
    "ksp(k=4)",
    "spf",
    "optimal",
]


import contextlib


@contextlib.contextmanager
def _tracing(path: Optional[str], root: str):
    """Install a JSONL tracer around one CLI command (no-op when path is None).

    The root span wraps the whole command so the summary's top line is
    the command itself; worker processes append their spans through the
    sweep runner's part-file merge before the sink closes.
    """
    if not path:
        yield
        return
    from repro.obs import JsonlSink, Tracer, install_tracer, uninstall_tracer

    tracer = Tracer(sink=JsonlSink(path), role="main")
    install_tracer(tracer)
    try:
        with tracer.span(root):
            yield
    finally:
        uninstall_tracer()
        tracer.close()
        print(f"wrote trace to {path}", file=sys.stderr)


def _cmd_list() -> int:
    for name in sorted(REGISTRY):
        print(f"{name:30s} {_DESCRIPTIONS.get(name, '')}")
    return 0


def _cmd_schemes() -> int:
    from repro.engine import available_sources, scheme_descriptions

    print("schemes:")
    for name, description in scheme_descriptions().items():
        print(f"  {name:18s} {description}")
    print("oblivious sources:")
    for name in available_sources():
        print(f"  {name}")
    return 0


def _cmd_experiments(ids: List[str], scale: str, seed: int, as_json: bool = False) -> int:
    chosen = ids or sorted(REGISTRY)
    unknown = [name for name in chosen if name not in REGISTRY]
    if unknown:
        print(f"unknown experiment id(s): {unknown}", file=sys.stderr)
        return 2
    config = ExperimentConfig(seed=seed, scale=scale)
    payloads = []
    for name in chosen:
        start = time.perf_counter()
        result = REGISTRY[name](config)
        elapsed = time.perf_counter() - start
        if as_json:
            payload = result.to_dict()
            payload["elapsed_seconds"] = round(elapsed, 3)
            payload["scale"] = scale
            payloads.append(payload)
        else:
            print(result.render())
            print(f"\n[{name} completed in {elapsed:.1f}s at scale={scale}]\n")
    if as_json:
        print(json_dumps(payloads))
    return 0


def _build_te_network(topology: str, seed: int):
    """Parse ``name[:size]``, spec shorthand, or a catalog name into a Network.

    Synthetic families: ``hypercube:4``, ``torus:4``, ``expander:12``,
    ``waxman:14``.  Real topologies come from the ingestion catalog:
    ``zoo(abilene)``, ``zoo:abilene``, ``sndlib(geant)``.  Beyond those,
    *any* registered scenario topology kind is addressable — including
    the synthetic scale generators: ``isp(pops=16, seed=3)``,
    ``backbone:2000`` (``name:size`` is shorthand for ``name(size)``).
    """
    from repro.graphs import topologies
    from repro.graphs.generators import waxman_isp

    name, _, size_text = topology.partition(":")
    if name.startswith(("zoo", "sndlib")):
        from repro.exceptions import NetError
        from repro.net import load_network

        try:
            return load_network(topology)
        except NetError as error:
            print(str(error), file=sys.stderr)
            raise SystemExit(2)
    if ":" in topology:
        try:
            size = int(size_text) if size_text else None
        except ValueError:
            print(f"topology size must be an integer, got {topology!r}", file=sys.stderr)
            raise SystemExit(2)
    else:
        size = None
    if name == "hypercube":
        return topologies.hypercube(size if size is not None else 4)
    if name == "torus":
        return topologies.torus_2d(size if size is not None else 4)
    if name == "expander":
        return topologies.random_regular_expander(size if size is not None else 12, rng=seed)
    if name == "waxman":
        return waxman_isp(size if size is not None else 14, rng=seed)
    # Anything else resolves through the scenario topology-kind registry
    # (fat-tree, grid, clique, and the synth scale kinds isp/backbone),
    # so every CLI accepts every registered kind without a bespoke branch.
    from repro.exceptions import GraphError
    from repro.scenarios.spec import (
        ScenarioError,
        TopologySpec,
        available_topology_kinds,
    )

    if "(" in topology:
        spec_text = topology
    elif size is not None:
        spec_text = f"{name}({size})"
    else:
        spec_text = name
    try:
        spec = TopologySpec.from_string(spec_text)
    except (ScenarioError, GraphError) as error:
        print(
            f"invalid topology {topology!r}: {error}\n"
            f"registered kinds: {available_topology_kinds()} "
            f"(plus catalog names like zoo(abilene) / sndlib(geant))",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return spec.build(rng=seed)


def _cmd_te(
    topology: str,
    schemes: List[str],
    snapshots: int,
    seed: int,
    as_json: bool,
    backend: Optional[str] = None,
    trace: Optional[str] = None,
) -> int:
    from repro.demands.traffic_matrix import diurnal_gravity_series
    from repro.engine import RoutingEngine
    from repro.exceptions import ReproError

    with _tracing(trace, "cli.te"):
        network = _build_te_network(topology, seed)
        try:
            series = diurnal_gravity_series(network, num_snapshots=snapshots, rng=seed + 1)
        except ReproError as error:
            print(f"bad traffic series: {error}", file=sys.stderr)
            return 2
        try:
            engine = RoutingEngine(
                network, schemes or _DEFAULT_TE_SCHEMES, rng=seed, backend=backend
            )
        except ReproError as error:
            print(f"bad scheme spec: {error}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        report = engine.evaluate_matrix_series(series)
        elapsed = time.perf_counter() - start
    if as_json:
        payload = report.to_dict()
        payload["elapsed_seconds"] = round(elapsed, 3)
        payload["optimal_mcf_solves"] = engine.num_optimal_solves
        print(json_dumps(payload))
        return 0
    print(f"{network.name}: {network.num_vertices} vertices, {network.num_edges} edges, "
          f"{len(series)} snapshots")
    header = f"{'scheme':22s} {'mean':>8s} {'p90':>8s} {'worst':>8s}"
    print(header)
    print("-" * len(header))
    for label in report.ranking():
        result = report.results[label]
        print(f"{label:22s} {result.mean_ratio():8.3f} "
              f"{result.percentile_ratio(90.0):8.3f} {result.worst_ratio():8.3f}")
    print(f"[{engine.num_optimal_solves} optimal MCF solve(s) shared across "
          f"{len(report.results)} scheme(s), {elapsed:.1f}s]")
    return 0


def _cmd_scenarios_list() -> int:
    from repro.scenarios import available_suites, get_suite

    for name in available_suites():
        suite = get_suite(name)
        print(f"{name:12s} {suite.num_cells():4d} cells  {suite.description}")
    return 0


def _cmd_scenarios_describe(name: str) -> int:
    from repro.exceptions import ReproError
    from repro.scenarios import get_suite

    try:
        suite = get_suite(name)
    except ReproError as error:
        print(error, file=sys.stderr)
        return 2
    print(suite.describe())
    return 0


def _cmd_scenarios_run(
    suite_name: str,
    workers: int,
    seed: Optional[int],
    snapshots: Optional[int],
    as_json: bool,
    output: Optional[str],
    backend: str = "dict",
    executor: str = "auto",
    artifact_dir: Optional[str] = None,
    resume: Optional[str] = None,
    trace: Optional[str] = None,
) -> int:
    from repro.exceptions import ReproError
    from repro.scenarios import get_suite, run_suite

    if workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    try:
        suite = get_suite(suite_name).with_overrides(seed=seed, num_snapshots=snapshots)
    except ReproError as error:
        print(error, file=sys.stderr)
        return 2
    start = time.perf_counter()
    try:
        with _tracing(trace, "cli.scenarios"):
            result = run_suite(
                suite,
                workers=workers,
                backend=backend,
                executor=executor,
                artifact_dir=artifact_dir,
                resume=resume,
            )
    except (ReproError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    artifact = result.to_json()
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(artifact + "\n")
        print(f"wrote {len(result.cells)}-cell artifact to {output}", file=sys.stderr)
    if as_json:
        print(artifact)
    else:
        print(result.render())
        print(f"\n[{suite.num_cells()} cells on {workers} worker(s), {elapsed:.1f}s]")
    return 0


def _cmd_stream_list() -> int:
    from repro.stream import policy_descriptions, stream_descriptions

    print("streams:")
    for name, description in stream_descriptions().items():
        print(f"  {name:18s} {description}")
    print("policies:")
    for name, description in policy_descriptions().items():
        print(f"  {name:18s} {description}")
    return 0


def _cmd_stream_describe(name: str) -> int:
    from repro.stream import policy_descriptions, stream_descriptions

    streams = stream_descriptions()
    policies = policy_descriptions()
    if name in streams:
        print(f"stream {name}: {streams[name]}")
        return 0
    if name in policies:
        print(f"policy {name}: {policies[name]}")
        return 0
    print(
        f"unknown stream or policy {name!r}; "
        f"streams: {sorted(streams)}; policies: {sorted(policies)}",
        file=sys.stderr,
    )
    return 2


def _cmd_stream_run(
    topology: str,
    stream_kind: str,
    steps: int,
    policies: List[str],
    scheme: str,
    seed: int,
    window: int,
    threshold: float,
    backend: str,
    with_optimal: bool,
    as_json: bool,
    no_steps: bool,
    output: Optional[str],
    trace: Optional[str] = None,
    churn_buckets: Optional[int] = None,
) -> int:
    from repro.engine import RoutingEngine
    from repro.exceptions import ReproError
    from repro.stream import build_stream

    with _tracing(trace, "cli.stream"):
        network = _build_te_network(topology, seed)
        try:
            stream = build_stream(stream_kind, network, num_steps=steps, seed=seed + 1)
            engine = RoutingEngine(network, [scheme], rng=seed)
            start = time.perf_counter()
            report = engine.run_stream(
                stream,
                policies=policies or ["static"],
                backend=backend,
                window=window,
                threshold=threshold,
                with_optimal=with_optimal,
                record_steps=not no_steps,
                churn_buckets=churn_buckets,
            )
            elapsed = time.perf_counter() - start
        except ReproError as error:
            print(f"stream run failed: {error}", file=sys.stderr)
            return 2
    # The artifact deliberately excludes wall time: seeded runs are
    # bit-identical however often they are replayed.
    artifact = report.to_json(include_steps=not no_steps)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(artifact + "\n")
        print(f"wrote stream artifact to {output}", file=sys.stderr)
    if as_json:
        print(artifact)
    else:
        print(report.render())
        print(f"\n[{len(policies or ['static'])} policy replay(s) over "
              f"{report.num_steps} steps, {elapsed:.1f}s]")
    return 0


def _cmd_bench_list() -> int:
    from repro.linalg.bench import BENCH_TARGETS, _ensure_registered

    # Pull in the extension layers (stream, net, telemetry) before
    # enumerating: BENCH_TARGETS alone only holds the linalg built-ins.
    _ensure_registered()
    for name in sorted(BENCH_TARGETS):
        _, description = BENCH_TARGETS[name]
        print(f"{name:12s} {description}")
    return 0


def _cmd_bench(
    names: List[str],
    scale: str,
    seed: int,
    output_dir: str,
    as_json: bool,
) -> int:
    import os

    from repro.exceptions import ReproError
    from repro.linalg.bench import available_benches, run_bench, write_bench_artifact

    # Resolve the artifact directory up front so a relative --output-dir
    # means "relative to where the user invoked the CLI" even if a bench
    # target chdirs or the path is consumed late.
    output_dir = os.path.abspath(os.path.expanduser(output_dir))
    chosen = names or available_benches()
    unknown = [name for name in chosen if name not in available_benches()]
    if unknown:
        print(f"unknown bench target(s): {unknown}; available: {available_benches()}",
              file=sys.stderr)
        return 2
    payloads = []
    for name in chosen:
        try:
            payload = run_bench(name, scale=scale, seed=seed)
        except ReproError as error:
            print(f"bench {name!r} failed: {error}", file=sys.stderr)
            return 1
        path = write_bench_artifact(payload, output_dir=output_dir)
        payloads.append(payload)
        if not as_json:
            # Backends are ordered baseline-first in every payload; the
            # speedup key varies per target ("speedup_<fast>_over_<base>").
            timings = " ".join(
                f"{key}={entry['seconds']:.4f}s"
                for key, entry in payload["backends"].items()
            )
            speedup = next(
                (value for key, value in payload.items() if key.startswith("speedup_")),
                None,
            )
            speedup_text = f"{speedup:.1f}x" if speedup else "n/a"
            extras = ""
            if "max_abs_difference" in payload:
                extras += f" max|diff|={payload['max_abs_difference']:.2e}"
            if "artifacts_identical" in payload:
                extras += f" identical={payload['artifacts_identical']}"
            if "leaked_segments" in payload:
                extras += f" leaked={payload['leaked_segments']}"
            if "overhead_enabled_pct" in payload:
                extras += (f" overhead: disabled={payload['overhead_disabled_pct']:+.2f}%"
                           f" enabled={payload['overhead_enabled_pct']:+.2f}%")
            print(f"{name}: n={payload['network']['n']} m={payload['network']['m']} "
                  f"{timings} speedup={speedup_text}{extras}")
            print(f"  wrote {path}", file=sys.stderr)
    if as_json:
        print(json_dumps(payloads))
    return 0


_NET_SCHEMA = "repro-net/v1"


def _emit_net_artifact(artifact: str, output: Optional[str], as_json: bool, label: str) -> None:
    """Write and/or print a net artifact (printed when no --output given)."""
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(artifact + "\n")
        print(f"wrote {label} artifact to {output}", file=sys.stderr)
    if as_json or not output:
        print(artifact)


def _cmd_net_list(as_json: bool) -> int:
    from repro.net import catalog_entries

    entries = catalog_entries()
    if as_json:
        print(json_dumps([entry.to_dict() for entry in entries]))
        return 0
    header = (f"{'name':24s} {'format':8s} {'nodes':>5s} {'links':>5s} "
              f"{'units':8s} demands  description")
    print(header)
    print("-" * len(header))
    for entry in entries:
        print(f"{entry.qualified_name:24s} {entry.format:8s} {entry.nodes:5d} "
              f"{entry.links:5d} {entry.capacity_units:8s} "
              f"{'yes' if entry.has_demands else 'no ':7s} {entry.description}")
    return 0


def _cmd_net_describe(name: str, as_json: bool) -> int:
    from repro.exceptions import NetError
    from repro.net import load_catalog_instance

    try:
        entry, instance = load_catalog_instance(name)
    except NetError as error:
        print(error, file=sys.stderr)
        return 2
    network = instance.network
    capacities = [network.capacity_of(edge) for edge in network.edges]
    stats = {
        "n": network.num_vertices,
        "m": network.num_edges,
        "diameter": network.diameter(),
        "max_degree": network.max_degree(),
        "min_capacity": min(capacities),
        "max_capacity": max(capacities),
        "total_capacity": sum(capacities),
        "num_demand_pairs": len(instance.demands),
        "total_demand": instance.total_demand(),
    }
    if as_json:
        print(json_dumps({**entry.to_dict(), "stats": stats}))
        return 0
    print(f"{entry.qualified_name}: {entry.description}")
    print(f"  file:       {entry.file} ({entry.format} format)")
    print(f"  provenance: {entry.provenance}")
    print(f"  size:       {stats['n']} nodes, {stats['m']} links, "
          f"diameter {stats['diameter']}, max degree {stats['max_degree']}")
    print(f"  capacity:   [{stats['min_capacity']:g}, {stats['max_capacity']:g}] "
          f"{entry.capacity_units} per link, {stats['total_capacity']:g} total")
    if instance.has_demands:
        print(f"  demands:    {stats['num_demand_pairs']} pairs, "
              f"{stats['total_demand']:g} total volume")
    else:
        print("  demands:    none bundled (fitting uses capacity marginals)")
    return 0


def _network_artifact(source: str, network) -> dict:
    """The canonical JSON form of an ingested network (bit-stable)."""
    nodes = []
    for vertex in network.vertices:
        record = {"id": str(vertex)}
        data = network.graph.nodes[vertex]
        for key in ("latitude", "longitude"):
            if key in data:
                record[key] = data[key]
        nodes.append(record)
    edges = []
    for u, v in network.edges:
        record = {
            "source": str(u),
            "target": str(v),
            "capacity": network.capacity(u, v),
        }
        latency = network.graph[u][v].get("latency")
        if latency is not None:
            record["latency_ms"] = latency
        edges.append(record)
    return {
        "artifact": "network",
        "schema": _NET_SCHEMA,
        "source": source,
        "name": network.name,
        "nodes": nodes,
        "edges": edges,
        "stats": {
            "n": network.num_vertices,
            "m": network.num_edges,
            "total_capacity": sum(edge["capacity"] for edge in edges),
        },
    }


def _cmd_net_convert(source: str, as_json: bool, output: Optional[str]) -> int:
    from repro.exceptions import NetError
    from repro.net import load_network

    try:
        network = load_network(source)
    except NetError as error:
        print(error, file=sys.stderr)
        return 2
    _emit_net_artifact(
        json_dumps(_network_artifact(source, network)), output, as_json, "network"
    )
    return 0


def _cmd_net_fit(
    source: str,
    model: str,
    snapshots: int,
    seed: int,
    total: Optional[float],
    as_json: bool,
    output: Optional[str],
    trace: Optional[str] = None,
) -> int:
    from repro.exceptions import NetError
    from repro.net import fitted_gravity_series, load_instance, max_entropy_series

    try:
        with _tracing(trace, "cli.net.fit"):
            # Catalog names and file paths resolve identically: SNDlib
            # sources keep their bundled demand matrix either way.
            instance = load_instance(source)
            network, demands = instance.network, instance.demands
            resolved_total = total if total is not None else (
                sum(demands.values()) if demands else 10.0
            )
            if model == "gravity":
                # Catalog entries with a bundled demand matrix are fitted to
                # its per-node marginals; otherwise capacity weights apply.
                series = fitted_gravity_series(
                    network, snapshots, total=resolved_total, rng=seed, demands=demands or None
                )
            else:
                series = max_entropy_series(
                    network, snapshots, total=resolved_total, rng=seed
                )
    except NetError as error:
        print(error, file=sys.stderr)
        return 2
    payload = {
        "artifact": "fitted-demands",
        "schema": _NET_SCHEMA,
        "source": source,
        "network": network.name,
        "model": model,
        "seed": seed,
        "num_snapshots": snapshots,
        "total": resolved_total,
        "fitted_from": (
            "bundled-demand-marginals" if (demands and model == "gravity")
            else "link-capacity-marginals"
        ),
        "snapshots": [
            sorted(
                (
                    {"source": str(s), "target": str(t), "value": value}
                    for (s, t), value in snapshot.items()
                ),
                key=lambda record: (record["source"], record["target"]),
            )
            for snapshot in series
        ],
        "total_volumes": series.total_volumes(),
    }
    _emit_net_artifact(json_dumps(payload), output, as_json, "fitted-demand")
    return 0


def _cmd_net_odme(
    source: str,
    scheme: str,
    snapshots: int,
    seed: int,
    noise: float,
    coverage: float,
    granularity: str,
    method: str,
    total: Optional[float],
    as_json: bool,
    output: Optional[str],
    trace: Optional[str] = None,
) -> int:
    from repro.engine import RoutingEngine
    from repro.exceptions import ReproError
    from repro.net import fitted_gravity_series, load_instance

    try:
        with _tracing(trace, "cli.net.odme"):
            instance = load_instance(source)
            network, demands = instance.network, instance.demands
            resolved_total = total if total is not None else (
                sum(demands.values()) if demands else 10.0
            )
            series = fitted_gravity_series(
                network, snapshots, total=resolved_total, rng=seed, demands=demands or None
            )
            engine = RoutingEngine(network, [scheme], rng=seed)
            result = engine.run_odme(
                series,
                noise=noise,
                coverage=coverage,
                granularity=granularity,
                method=method,
                seed=seed,
            )
    except ReproError as error:
        print(error, file=sys.stderr)
        return 2
    if as_json or output:
        payload = {
            "artifact": "odme",
            "schema": _NET_SCHEMA,
            "source": source,
            "total": resolved_total,
            **result.to_dict(),
        }
        _emit_net_artifact(json_dumps(payload), output, as_json, "odme")
    else:
        print(result.render())
    return 0


_FORWARDING_SCHEMA = "repro-forwarding/v1"


def _forwarding_setup(topology: str, scheme: str, seed: int):
    """Build (network, routing, demand) for the forwarding subcommands.

    The demand is one fitted-gravity snapshot (capacity marginals on
    synthetic topologies, bundled marginals on catalog entries) and the
    routing is whatever the scheme installs — both seeded through
    ``SeedSequence`` so repeated invocations are bit-identical.
    """
    from numpy.random import SeedSequence, default_rng

    from repro.engine import build_router
    from repro.exceptions import ForwardingError
    from repro.net import fitted_gravity_series

    network = _build_te_network(topology, seed)
    demand = list(
        fitted_gravity_series(network, 1, rng=default_rng(SeedSequence([seed, 0])))
    )[0]
    router = build_router(scheme, network, rng=default_rng(SeedSequence([seed, 1])))
    router.install()
    result = router.route(demand)
    if result.routing is None:
        raise ForwardingError(
            f"scheme {scheme!r} does not materialize a routing to quantize "
            "(the optimal MCF router solves per demand); pick a path-based scheme"
        )
    return network, result.routing, demand


def _cmd_forwarding_quantize(
    topology: str,
    scheme: str,
    buckets: int,
    on_cycle: str,
    seed: int,
    as_json: bool,
    output: Optional[str],
    trace: Optional[str] = None,
) -> int:
    from repro.exceptions import ReproError
    from repro.forwarding import quantize_routing

    try:
        with _tracing(trace, "cli.forwarding.quantize"):
            network, routing, _ = _forwarding_setup(topology, scheme, seed)
            table = quantize_routing(routing, buckets=buckets, on_cycle=on_cycle)
    except ReproError as error:
        print(error, file=sys.stderr)
        return 2
    payload = {
        "artifact": "forwarding-table",
        "schema": _FORWARDING_SCHEMA,
        "topology": topology,
        "scheme": scheme,
        "seed": seed,
        "on_cycle": on_cycle,
        **table.to_dict(),
    }
    if output or as_json:
        _emit_net_artifact(json_dumps(payload), output, as_json, "forwarding-table")
    if not as_json:
        print(f"{network.name}: quantized {len(table.entries)} pair(s) at 1/{buckets} "
              f"granularity -> {table.num_rules()} next-hop rules, "
              f"{len(table.fallback_pairs())} path-mode fallback(s), "
              f"max TV error {table.max_error():.4f}")
    return 0


def _cmd_forwarding_realize(
    topology: str,
    scheme: str,
    buckets: int,
    flows: int,
    backend: str,
    seed: int,
    as_json: bool,
    output: Optional[str],
    trace: Optional[str] = None,
) -> int:
    from repro.exceptions import ReproError
    from repro.forwarding import evaluate_realization

    try:
        with _tracing(trace, "cli.forwarding.realize"):
            network, routing, demand = _forwarding_setup(topology, scheme, seed)
            _, result = evaluate_realization(
                routing, demand, buckets=buckets, flows=flows,
                seed=seed, backend=backend,
            )
    except ReproError as error:
        print(error, file=sys.stderr)
        return 2
    payload = {
        "artifact": "forwarding-realization",
        "schema": _FORWARDING_SCHEMA,
        "topology": topology,
        "scheme": scheme,
        "seed": seed,
        **result.to_dict(),
    }
    if output or as_json:
        _emit_net_artifact(json_dumps(payload), output, as_json, "realization")
    if not as_json:
        print(f"{network.name}: fractional {result.fractional_congestion:.4f} vs "
              f"quantized {result.quantized_congestion:.4f} "
              f"(gap {result.gap:.4f}) at k={buckets}; "
              f"{flows} hashed flow(s) -> {result.flow_congestion:.4f} "
              f"(gap {result.flow_gap:.4f})")
    return 0


def _cmd_forwarding_gap(
    topology: str,
    scheme: str,
    buckets_list: List[int],
    flows: int,
    backend: str,
    seed: int,
    as_json: bool,
    output: Optional[str],
    trace: Optional[str] = None,
) -> int:
    from repro.exceptions import ReproError
    from repro.forwarding import analyze_placement, evaluate_realization

    buckets_list = sorted(set(buckets_list)) if buckets_list else [2, 4, 8, 16]
    rows = []
    try:
        with _tracing(trace, "cli.forwarding.gap"):
            network, routing, demand = _forwarding_setup(topology, scheme, seed)
            for buckets in buckets_list:
                _, result = evaluate_realization(
                    routing, demand, buckets=buckets, flows=flows,
                    seed=seed, backend=backend,
                )
                analytic = analyze_placement(buckets, flows, seed=seed)
                rows.append({"buckets": buckets, **result.to_dict(),
                             "analytic": analytic})
    except ReproError as error:
        print(error, file=sys.stderr)
        return 2
    payload = {
        "artifact": "forwarding-gap",
        "schema": _FORWARDING_SCHEMA,
        "topology": topology,
        "scheme": scheme,
        "seed": seed,
        "flows": flows,
        "network": {"n": network.num_vertices, "m": network.num_edges},
        "rows": rows,
        "max_gap": max(row["gap"] for row in rows),
    }
    if output or as_json:
        _emit_net_artifact(json_dumps(payload), output, as_json, "forwarding-gap")
    if not as_json:
        print(f"{network.name}: fractional congestion "
              f"{rows[0]['fractional_congestion']:.4f} ({scheme})")
        header = (f"{'k':>4s} {'quantized':>10s} {'gap':>8s} {'flow-gap':>9s} "
                  f"{'rules':>6s} {'P(no congest)':>14s}")
        print(header)
        print("-" * len(header))
        for row in rows:
            print(f"{row['buckets']:4d} {row['quantized_congestion']:10.4f} "
                  f"{row['gap']:8.4f} {row['flow_gap']:9.4f} {row['rules']:6d} "
                  f"{row['analytic']['non_congestion_probability']:14.4f}")
    return 0


def _cmd_trace_summarize(path: str, limit: int) -> int:
    from repro.exceptions import ObsError
    from repro.obs import load_trace, render_summary, summarize_trace

    try:
        records = load_trace(path)
        rows = summarize_trace(records)
    except ObsError as error:
        print(error, file=sys.stderr)
        return 2
    if not rows:
        print(f"{path}: no spans recorded", file=sys.stderr)
        return 0
    print(render_summary(rows, limit=limit))
    return 0


def _cmd_trace_export(path: str, output: Optional[str]) -> int:
    from repro.exceptions import ObsError
    from repro.obs import load_trace, write_chrome_trace

    try:
        records = load_trace(path)
    except ObsError as error:
        print(error, file=sys.stderr)
        return 2
    if output is None:
        stem = path[:-6] if path.endswith(".jsonl") else path
        output = stem + ".chrome.json"
    write_chrome_trace(records, output)
    print(f"wrote Chrome trace-event file to {output} "
          "(load at chrome://tracing or https://ui.perfetto.dev)", file=sys.stderr)
    return 0


def _cmd_quickstart(dimension: int, alpha: int) -> int:
    from repro import build_router, topologies
    from repro.demands import random_permutation_demand
    from repro.mcf import min_congestion_lp

    network = topologies.hypercube(dimension)
    router = build_router(f"semi-oblivious(valiant, alpha={alpha})", network, rng=0)
    router.install()
    demand = random_permutation_demand(network, rng=1)
    achieved = router.route(demand).congestion
    optimum = min_congestion_lp(network, demand).congestion
    print(f"{network.name}: alpha={alpha}, achieved={achieved:.3f}, "
          f"optimum={optimum:.3f}, ratio={achieved / max(optimum, 1e-12):.3f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description="Sparse semi-oblivious routing reproduction")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")
    subparsers.add_parser("schemes", help="list registered routing schemes and sources")

    exp_parser = subparsers.add_parser("experiments", help="run experiments and print their tables")
    exp_parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    exp_parser.add_argument("--scale", choices=("smoke", "small", "paper"), default="small")
    exp_parser.add_argument("--seed", type=int, default=0)
    exp_parser.add_argument("--json", action="store_true", help="print JSON instead of tables")

    te_parser = subparsers.add_parser("te", help="traffic-engineering simulation via scheme specs")
    te_parser.add_argument("--topology", default="waxman:14",
                           help="any registered topology kind: hypercube:K, torus:K, waxman:N, "
                                "isp(pops=P), backbone:N, ... (default waxman:14)")
    te_parser.add_argument("--scheme", action="append", default=[], dest="schemes",
                           help="scheme spec, repeatable (default: the SMORE line-up)")
    te_parser.add_argument("--snapshots", type=int, default=4)
    te_parser.add_argument("--seed", type=int, default=0)
    te_parser.add_argument("--json", action="store_true", help="print the report as JSON")
    from repro.linalg.evaluator import BACKEND_CHOICES

    te_parser.add_argument("--backend", choices=BACKEND_CHOICES, default=None,
                           help="evaluation backend for fixed-ratio schemes (default: per-scheme)")
    te_parser.add_argument("--trace", default=None, metavar="PATH",
                           help="write a span trace (JSONL) of the run to this path")

    scenario_parser = subparsers.add_parser(
        "scenarios", help="failure x demand x topology sweeps through the engine"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list the built-in scenario suites")
    describe_parser = scenario_sub.add_parser("describe", help="show one suite's grid")
    describe_parser.add_argument("suite", help="suite name (see 'scenarios list')")
    run_parser = scenario_sub.add_parser("run", help="execute a suite and print its report")
    run_parser.add_argument("--suite", default="smoke", help="suite name (default smoke)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for the topology shards (default 1)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the suite's master seed")
    run_parser.add_argument("--snapshots", type=int, default=None,
                            help="override demand snapshots per cell")
    run_parser.add_argument("--json", action="store_true",
                            help="print the JSON artifact instead of tables")
    run_parser.add_argument("--output", default=None,
                            help="also write the JSON artifact to this path")
    run_parser.add_argument("--backend", choices=BACKEND_CHOICES,
                            default="dict",
                            help="evaluation backend for fixed-ratio schemes "
                                 "(dict reproduces reference artifacts bit for bit)")
    from repro.scenarios.runner import EXECUTOR_CHOICES

    # No argparse choices= here on purpose: the runner validates the
    # executor itself and reports the registered list, so extension
    # executors registered at runtime keep working.
    run_parser.add_argument("--executor", default="auto",
                            help="execution strategy, one of "
                                 f"{', '.join(EXECUTOR_CHOICES)} "
                                 "(auto: inline for --workers 1, "
                                 "shared-memory cell queue otherwise)")
    run_parser.add_argument("--artifact-dir", default=None,
                            help="stream per-cell results into a resumable store "
                                 "at this directory")
    run_parser.add_argument("--resume", default=None,
                            help="resume from the store at this directory, "
                                 "skipping completed cells")
    run_parser.add_argument("--trace", default=None, metavar="PATH",
                            help="write a span trace (JSONL) of the sweep to this path; "
                                 "worker spans are merged into the one file")

    stream_parser = subparsers.add_parser(
        "stream", help="streaming traffic replay with online rerouting policies"
    )
    stream_sub = stream_parser.add_subparsers(dest="stream_command", required=True)
    stream_sub.add_parser("list", help="list the registered streams and policies")
    stream_describe = stream_sub.add_parser("describe", help="describe one stream or policy")
    stream_describe.add_argument("name", help="stream or policy name (see 'stream list')")
    stream_run = stream_sub.add_parser("run", help="replay a stream and print the policy table")
    stream_run.add_argument("--topology", default="torus:5",
                            help="any registered topology kind: hypercube:K, torus:K, waxman:N, "
                                 "isp(pops=P), backbone:N, ... (default torus:5)")
    stream_run.add_argument("--stream", default="random-walk", dest="stream_kind",
                            help="stream kind (see 'stream list'; default random-walk)")
    stream_run.add_argument("--steps", type=int, default=64,
                            help="number of timesteps (default 64)")
    stream_run.add_argument("--policy", action="append", default=[], dest="policies",
                            help="rerouting policy spec, repeatable (default: static)")
    stream_run.add_argument("--scheme", default="spf",
                            help="scheme spec routed through (default spf)")
    stream_run.add_argument("--seed", type=int, default=0)
    stream_run.add_argument("--window", type=int, default=16,
                            help="rolling metric window in steps (default 16)")
    stream_run.add_argument("--threshold", type=float, default=1.0,
                            help="overload utilization threshold (default 1.0)")
    stream_run.add_argument("--backend", choices=("auto", "sparse", "dense"), default="auto",
                            help="compiled evaluation representation (default auto)")
    stream_run.add_argument("--optimal", action="store_true",
                            help="normalize each step by the per-step optimal MCF (needs LP)")
    stream_run.add_argument("--json", action="store_true",
                            help="print the JSON artifact instead of the table")
    stream_run.add_argument("--no-steps", action="store_true",
                            help="omit per-step records from the artifact (summaries only)")
    stream_run.add_argument("--output", default=None,
                            help="also write the JSON artifact to this path")
    stream_run.add_argument("--trace", default=None, metavar="PATH",
                            help="write a span trace (JSONL) of the replay to this path")
    stream_run.add_argument("--churn-buckets", type=int, default=None, metavar="K",
                            help="also charge each policy re-solve its ECMP "
                                 "forwarding-table churn at 1/K split granularity "
                                 "(default: off)")

    net_parser = subparsers.add_parser(
        "net", help="real-network ingestion: topology catalog, conversion, demand fitting"
    )
    net_sub = net_parser.add_subparsers(dest="net_command", required=True)
    net_list = net_sub.add_parser("list", help="list the bundled real-topology catalog")
    net_list.add_argument("--json", action="store_true",
                          help="print catalog metadata as JSON")
    net_describe = net_sub.add_parser("describe", help="describe one catalog topology")
    net_describe.add_argument("name", help="catalog name, e.g. 'zoo(abilene)' or 'geant'")
    net_describe.add_argument("--json", action="store_true",
                              help="print metadata and parsed stats as JSON")
    net_convert = net_sub.add_parser(
        "convert", help="parse a topology into the canonical JSON network form"
    )
    net_convert.add_argument("source",
                             help="catalog name or path to a GraphML/SNDlib file")
    net_convert.add_argument("--json", action="store_true",
                             help="print the artifact (default when no --output)")
    net_convert.add_argument("--output", default=None,
                             help="write the JSON artifact to this path")
    net_fit = net_sub.add_parser(
        "fit", help="fit a demand model and emit a traffic-matrix series artifact"
    )
    net_fit.add_argument("source", help="catalog name or path to a GraphML/SNDlib file")
    net_fit.add_argument("--model", choices=("gravity", "max-entropy"), default="gravity",
                         help="demand model (default gravity)")
    net_fit.add_argument("--snapshots", type=int, default=4,
                         help="snapshots in the fitted series (default 4)")
    net_fit.add_argument("--seed", type=int, default=0)
    net_fit.add_argument("--total", type=float, default=None,
                         help="total volume per snapshot (default: the bundled "
                              "demand total when present, else 10)")
    net_fit.add_argument("--json", action="store_true",
                         help="print the artifact (default when no --output)")
    net_fit.add_argument("--output", default=None,
                         help="write the JSON artifact to this path")
    net_fit.add_argument("--trace", default=None, metavar="PATH",
                         help="write a span trace (JSONL) of the fit to this path")
    net_odme = net_sub.add_parser(
        "odme", help="closed-loop demand estimation from observed link loads"
    )
    net_odme.add_argument("source", help="catalog name or path to a GraphML/SNDlib file")
    net_odme.add_argument("--scheme", default="spf",
                          help="routing scheme the loop routes with (default spf)")
    net_odme.add_argument("--snapshots", type=int, default=4,
                          help="true-demand snapshots replayed through the loop (default 4)")
    net_odme.add_argument("--seed", type=int, default=0)
    net_odme.add_argument("--noise", type=float, default=0.0,
                          help="relative Gaussian counter noise (default 0: exact)")
    net_odme.add_argument("--coverage", type=float, default=1.0,
                          help="fraction of link sensors that report (default 1.0)")
    net_odme.add_argument("--granularity", choices=("ingress", "link"), default="ingress",
                          help="telemetry granularity (default ingress)")
    net_odme.add_argument("--method", choices=("auto", "nnls", "entropy"), default="auto",
                          help="estimator leg (default auto: NNLS)")
    net_odme.add_argument("--total", type=float, default=None,
                          help="total true volume per snapshot (default: the bundled "
                               "demand total when present, else 10)")
    net_odme.add_argument("--json", action="store_true",
                          help="print the artifact (default prints the table)")
    net_odme.add_argument("--output", default=None,
                          help="write the JSON artifact to this path")
    net_odme.add_argument("--trace", default=None, metavar="PATH",
                          help="write a span trace (JSONL) of the loop to this path")

    fwd_parser = subparsers.add_parser(
        "forwarding", help="ECMP-realizable forwarding tables and congestion gaps"
    )
    fwd_sub = fwd_parser.add_subparsers(dest="forwarding_command", required=True)

    def _forwarding_common(sub):
        sub.add_argument("--topology", default="zoo(abilene)",
                         help="synthetic (hypercube:K, isp(pops=P), ...) or catalog "
                              "name (default zoo(abilene))")
        sub.add_argument("--scheme", default="oblivious(ksp, k=4)",
                         help="scheme whose routing is realized "
                              "(default 'oblivious(ksp, k=4)')")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--json", action="store_true",
                         help="print the artifact (bit-identical per seed)")
        sub.add_argument("--output", default=None,
                         help="write the JSON artifact to this path")
        sub.add_argument("--trace", default=None, metavar="PATH",
                         help="write a span trace (JSONL) to this path")

    fwd_quantize = fwd_sub.add_parser(
        "quantize", help="emit the ECMP forwarding table for a scheme's routing"
    )
    fwd_quantize.add_argument("--buckets", type=int, default=8,
                              help="split-ratio granularity 1/k (default 8)")
    fwd_quantize.add_argument("--on-cycle", choices=("decompose", "error"),
                              default="decompose", dest="on_cycle",
                              help="cyclic/non-confluent pairs: fall back to "
                                   "per-path quantization or raise (default decompose)")
    _forwarding_common(fwd_quantize)
    fwd_realize = fwd_sub.add_parser(
        "realize", help="hash discrete flows onto the table and report realized congestion"
    )
    fwd_realize.add_argument("--buckets", type=int, default=8,
                             help="split-ratio granularity 1/k (default 8)")
    fwd_realize.add_argument("--flows", type=int, default=64,
                             help="discrete flows hashed per pair (default 64)")
    fwd_realize.add_argument("--backend", choices=("auto", "sparse", "dense"),
                             default="auto",
                             help="compiled evaluation representation (default auto)")
    _forwarding_common(fwd_realize)
    fwd_gap = fwd_sub.add_parser(
        "gap", help="fractional-vs-ECMP congestion gap across bucket granularities"
    )
    fwd_gap.add_argument("--buckets", type=int, action="append", default=[],
                         dest="buckets_list",
                         help="bucket count, repeatable (default: 2 4 8 16)")
    fwd_gap.add_argument("--flows", type=int, default=64,
                         help="discrete flows hashed per pair (default 64)")
    fwd_gap.add_argument("--backend", choices=("auto", "sparse", "dense"),
                         default="auto",
                         help="compiled evaluation representation (default auto)")
    _forwarding_common(fwd_gap)

    trace_parser = subparsers.add_parser(
        "trace", help="summarize or export span traces written by --trace"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize", help="print the hot-span table for a trace file"
    )
    trace_summarize.add_argument("path", help="trace file written by --trace")
    trace_summarize.add_argument("--limit", type=int, default=30,
                                 help="max span names to print (default 30)")
    trace_export = trace_sub.add_parser(
        "export", help="convert a trace to another format"
    )
    trace_export.add_argument("path", help="trace file written by --trace")
    trace_export.add_argument("--chrome", action="store_true", required=True,
                              help="emit the Chrome trace-event format (the only format)")
    trace_export.add_argument("--output", default=None,
                              help="output path (default: <trace>.chrome.json)")

    bench_parser = subparsers.add_parser(
        "bench", help="run benchmark targets and write BENCH_<name>.json artifacts"
    )
    bench_parser.add_argument("names", nargs="*",
                              help="bench targets ('list' to enumerate; default: all)")
    bench_parser.add_argument("--scale", choices=("smoke", "small", "full"), default="small")
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument("--output-dir", default=".",
                              help="directory for BENCH_<name>.json artifacts (default: .)")
    bench_parser.add_argument("--json", action="store_true",
                              help="print the artifact payloads as JSON")

    quick_parser = subparsers.add_parser("quickstart", help="tiny end-to-end pipeline check")
    quick_parser.add_argument("--dimension", type=int, default=3)
    quick_parser.add_argument("--alpha", type=int, default=3)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "schemes":
        return _cmd_schemes()
    if args.command == "experiments":
        return _cmd_experiments(args.ids, args.scale, args.seed, as_json=args.json)
    if args.command == "te":
        return _cmd_te(args.topology, args.schemes, args.snapshots, args.seed,
                       as_json=args.json, backend=args.backend, trace=args.trace)
    if args.command == "scenarios":
        if args.scenario_command == "list":
            return _cmd_scenarios_list()
        if args.scenario_command == "describe":
            return _cmd_scenarios_describe(args.suite)
        if args.scenario_command == "run":
            return _cmd_scenarios_run(
                args.suite, args.workers, args.seed, args.snapshots, args.json, args.output,
                backend=args.backend, executor=args.executor,
                artifact_dir=args.artifact_dir, resume=args.resume, trace=args.trace,
            )
        return 2
    if args.command == "stream":
        if args.stream_command == "list":
            return _cmd_stream_list()
        if args.stream_command == "describe":
            return _cmd_stream_describe(args.name)
        if args.stream_command == "run":
            return _cmd_stream_run(
                args.topology, args.stream_kind, args.steps, args.policies, args.scheme,
                args.seed, args.window, args.threshold, args.backend, args.optimal,
                args.json, args.no_steps, args.output, trace=args.trace,
                churn_buckets=args.churn_buckets,
            )
        return 2
    if args.command == "forwarding":
        if args.forwarding_command == "quantize":
            return _cmd_forwarding_quantize(
                args.topology, args.scheme, args.buckets, args.on_cycle, args.seed,
                as_json=args.json, output=args.output, trace=args.trace,
            )
        if args.forwarding_command == "realize":
            return _cmd_forwarding_realize(
                args.topology, args.scheme, args.buckets, args.flows, args.backend,
                args.seed, as_json=args.json, output=args.output, trace=args.trace,
            )
        if args.forwarding_command == "gap":
            return _cmd_forwarding_gap(
                args.topology, args.scheme, args.buckets_list, args.flows, args.backend,
                args.seed, as_json=args.json, output=args.output, trace=args.trace,
            )
        return 2
    if args.command == "net":
        if args.net_command == "list":
            return _cmd_net_list(as_json=args.json)
        if args.net_command == "describe":
            return _cmd_net_describe(args.name, as_json=args.json)
        if args.net_command == "convert":
            return _cmd_net_convert(args.source, as_json=args.json, output=args.output)
        if args.net_command == "fit":
            return _cmd_net_fit(
                args.source, args.model, args.snapshots, args.seed, args.total,
                as_json=args.json, output=args.output, trace=args.trace,
            )
        if args.net_command == "odme":
            return _cmd_net_odme(
                args.source, args.scheme, args.snapshots, args.seed, args.noise,
                args.coverage, args.granularity, args.method, args.total,
                as_json=args.json, output=args.output, trace=args.trace,
            )
        return 2
    if args.command == "trace":
        if args.trace_command == "summarize":
            return _cmd_trace_summarize(args.path, args.limit)
        if args.trace_command == "export":
            return _cmd_trace_export(args.path, args.output)
        return 2
    if args.command == "bench":
        if args.names == ["list"]:
            return _cmd_bench_list()
        return _cmd_bench(args.names, args.scale, args.seed, args.output_dir, as_json=args.json)
    if args.command == "quickstart":
        return _cmd_quickstart(args.dimension, args.alpha)
    return 2


if __name__ == "__main__":
    sys.exit(main())
