"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``experiments``
    Run one or more experiments from the registry and print their tables::

        python -m repro experiments --scale small E1_sparsity_tradeoff E3_lower_bound
        python -m repro experiments --scale paper            # all of them

``list``
    List the available experiment ids with one-line descriptions.

``quickstart``
    Run the quickstart pipeline on a hypercube (same as
    ``examples/quickstart.py``) — useful as an installation check.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import REGISTRY
from repro.experiments.harness import ExperimentConfig

_DESCRIPTIONS = {
    "E1_sparsity_tradeoff": "sparsity vs competitiveness sweep (Theorem 2.5)",
    "E2_log_sparsity": "logarithmic sparsity suffices (Theorem 2.3)",
    "E3_lower_bound": "C(n,k) lower bound and Figure 1 (Lemma 8.1)",
    "E4_deterministic_hypercube": "deterministic single path vs sampled paths (KKT91)",
    "E5_weak_routing_process": "the Lemma 5.6 deletion process",
    "E6_rounding": "randomized rounding guarantee (Lemma 6.3)",
    "E7_completion_time": "completion-time competitive sampling (Section 7)",
    "E8_smore_te": "SMORE-style traffic engineering",
    "E9_arbitrary_demands": "(alpha+cut)-sparsity for arbitrary demands (Lemma 2.7)",
    "E10_oblivious_baselines": "quality of the oblivious sampling sources",
    "E11_ablation_selection": "ablation of the path-selection rule",
    "E12_robustness": "link-failure robustness of sampled candidate paths",
}


def _cmd_list() -> int:
    for name in sorted(REGISTRY):
        print(f"{name:30s} {_DESCRIPTIONS.get(name, '')}")
    return 0


def _cmd_experiments(ids: List[str], scale: str, seed: int) -> int:
    chosen = ids or sorted(REGISTRY)
    unknown = [name for name in chosen if name not in REGISTRY]
    if unknown:
        print(f"unknown experiment id(s): {unknown}", file=sys.stderr)
        return 2
    config = ExperimentConfig(seed=seed, scale=scale)
    for name in chosen:
        start = time.perf_counter()
        result = REGISTRY[name](config)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"\n[{name} completed in {elapsed:.1f}s at scale={scale}]\n")
    return 0


def _cmd_quickstart(dimension: int, alpha: int) -> int:
    from repro import SemiObliviousRouting, topologies
    from repro.demands import random_permutation_demand
    from repro.mcf import min_congestion_lp
    from repro.oblivious import ValiantHypercubeRouting

    network = topologies.hypercube(dimension)
    oblivious = ValiantHypercubeRouting(network, dimension, rng=0)
    router = SemiObliviousRouting.sample(network, alpha=alpha, oblivious=oblivious, rng=0)
    demand = random_permutation_demand(network, rng=1)
    achieved = router.congestion(demand)
    optimum = min_congestion_lp(network, demand).congestion
    print(f"{network.name}: alpha={alpha}, achieved={achieved:.3f}, "
          f"optimum={optimum:.3f}, ratio={achieved / max(optimum, 1e-12):.3f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description="Sparse semi-oblivious routing reproduction")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    exp_parser = subparsers.add_parser("experiments", help="run experiments and print their tables")
    exp_parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    exp_parser.add_argument("--scale", choices=("smoke", "small", "paper"), default="small")
    exp_parser.add_argument("--seed", type=int, default=0)

    quick_parser = subparsers.add_parser("quickstart", help="tiny end-to-end pipeline check")
    quick_parser.add_argument("--dimension", type=int, default=3)
    quick_parser.add_argument("--alpha", type=int, default=3)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "experiments":
        return _cmd_experiments(args.ids, args.scale, args.seed)
    if args.command == "quickstart":
        return _cmd_quickstart(args.dimension, args.alpha)
    return 2


if __name__ == "__main__":
    sys.exit(main())
