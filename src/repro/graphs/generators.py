"""Random graph generators used as ISP-like evaluation substrates.

The SMORE traffic-engineering evaluation ([KYY+18]) used proprietary ISP
topologies; we substitute synthetic topologies with comparable structure:
Waxman random geometric graphs (the standard ISP-like generator),
connected Erdos–Renyi graphs, and random geometric networks.  See
DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx
import numpy as np

from repro.exceptions import GraphError
from repro.graphs.network import Network
from repro.utils.rng import RngLike, ensure_rng


def _largest_connected(graph: nx.Graph) -> nx.Graph:
    components = list(nx.connected_components(graph))
    if not components:
        raise GraphError("generated graph has no vertices")
    biggest = max(components, key=len)
    return graph.subgraph(biggest).copy()


def waxman_isp(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.25,
    capacity_levels: Optional[tuple] = (1.0, 4.0, 10.0),
    rng: RngLike = None,
) -> Network:
    """A Waxman random graph with heterogeneous link capacities.

    Vertices are placed uniformly in the unit square; an edge (u, v) is
    present with probability ``alpha * exp(-dist(u, v) / (beta * L))``
    where ``L`` is the maximum distance.  Capacities are drawn from
    ``capacity_levels`` with probability decreasing in link length, which
    mimics ISP backbones (short metro links are fat, long-haul links are
    scarcer but also fat, access links are thin).
    """
    if n < 3:
        raise GraphError("waxman_isp needs n >= 3")
    generator = ensure_rng(rng)
    positions = generator.random((n, 2))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    max_dist = math.sqrt(2.0)
    for u in range(n):
        for v in range(u + 1, n):
            dist = float(np.linalg.norm(positions[u] - positions[v]))
            probability = alpha * math.exp(-dist / (beta * max_dist))
            if generator.random() < probability:
                if capacity_levels:
                    level = int(generator.integers(0, len(capacity_levels)))
                    capacity = float(capacity_levels[level])
                else:
                    capacity = 1.0
                graph.add_edge(u, v, capacity=capacity)
    # Backbone ring over a geographic ordering: guarantees connectivity and
    # a minimum degree of 2 (every real ISP graph is at least 2-connected).
    order = sorted(range(n), key=lambda v: math.atan2(positions[v][1] - 0.5, positions[v][0] - 0.5))
    ring_capacity = float(capacity_levels[-1]) if capacity_levels else 1.0
    for index, u in enumerate(order):
        v = order[(index + 1) % n]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, capacity=ring_capacity)
    return Network(graph, name=f"waxman-{n}")


def erdos_renyi_connected(n: int, p: float, rng: RngLike = None, max_tries: int = 50) -> Network:
    """A connected Erdos–Renyi G(n, p) graph (resampled until connected)."""
    if n < 2 or not (0.0 < p <= 1.0):
        raise GraphError("need n >= 2 and 0 < p <= 1")
    generator = ensure_rng(rng)
    for _ in range(max_tries):
        seed = int(generator.integers(0, 2**31 - 1))
        graph = nx.gnp_random_graph(n, p, seed=seed)
        if nx.is_connected(graph):
            nx.set_edge_attributes(graph, 1.0, "capacity")
            return Network(graph, name=f"gnp-{n}-{p}")
    raise GraphError("failed to sample a connected G(n, p); increase p")


def random_geometric_network(n: int, radius: float = 0.3, rng: RngLike = None, max_tries: int = 50) -> Network:
    """A connected random geometric graph in the unit square."""
    if n < 2 or radius <= 0:
        raise GraphError("need n >= 2 and radius > 0")
    generator = ensure_rng(rng)
    for _ in range(max_tries):
        seed = int(generator.integers(0, 2**31 - 1))
        graph = nx.random_geometric_graph(n, radius, seed=seed)
        if nx.is_connected(graph):
            nx.set_edge_attributes(graph, 1.0, "capacity")
            return Network(graph, name=f"geometric-{n}")
    raise GraphError("failed to sample a connected geometric graph; increase radius")


__all__ = ["waxman_isp", "erdos_renyi_connected", "random_geometric_network"]
