"""Graph substrate: networks, cuts, topology zoo, and lower-bound graphs."""

from repro.graphs.network import Network
from repro.graphs.cuts import min_cut_value, all_pairs_min_cut, CutCache
from repro.graphs.topologies import (
    hypercube,
    grid_2d,
    torus_2d,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    random_regular_expander,
    fat_tree,
    two_cliques_bridged,
    dumbbell,
    ring_of_cliques,
    path_of_expanders,
)
from repro.graphs.lower_bound import lower_bound_gadget, lower_bound_family
from repro.graphs.generators import waxman_isp, erdos_renyi_connected, random_geometric_network

__all__ = [
    "Network",
    "min_cut_value",
    "all_pairs_min_cut",
    "CutCache",
    "hypercube",
    "grid_2d",
    "torus_2d",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "random_regular_expander",
    "fat_tree",
    "two_cliques_bridged",
    "dumbbell",
    "ring_of_cliques",
    "path_of_expanders",
    "lower_bound_gadget",
    "lower_bound_family",
    "waxman_isp",
    "erdos_renyi_connected",
    "random_geometric_network",
]
