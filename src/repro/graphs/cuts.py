"""Minimum-cut computations.

The (α + cut_G)-sparse path systems of the paper (Definition 2.1) need the
value ``cut_G(s, t)`` — the minimum number of edges (counting capacity)
whose removal separates ``s`` from ``t``.  This module provides exact
min-cut values via max-flow, an all-pairs helper, and a memoizing
:class:`CutCache` used by the sampling code so repeated queries on the
same network are cheap.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import networkx as nx

from repro.exceptions import GraphError
from repro.graphs.network import Network, Vertex


def min_cut_value(network: Network, source: Vertex, target: Vertex) -> float:
    """Exact value of the minimum (s, t)-cut of ``network``.

    The paper defines ``cut_G(v, v) = 0``; we keep that convention.
    """
    if source == target:
        return 0.0
    if not network.has_vertex(source) or not network.has_vertex(target):
        raise GraphError("both endpoints must be network vertices")
    value = nx.maximum_flow_value(
        network.graph, source, target, capacity="capacity"
    )
    return float(value)


def all_pairs_min_cut(network: Network) -> Dict[Tuple[Vertex, Vertex], float]:
    """Min-cut values for every unordered vertex pair.

    Uses a Gomory–Hu tree so only ``n - 1`` max-flow computations are
    required instead of ``n^2``.
    """
    tree = nx.gomory_hu_tree(network.graph, capacity="capacity")
    cuts: Dict[Tuple[Vertex, Vertex], float] = {}
    for source, target in network.vertex_pairs():
        path = nx.shortest_path(tree, source, target, weight=None)
        value = min(
            tree[u][v]["weight"] for u, v in zip(path, path[1:])
        )
        cuts[(source, target)] = float(value)
        cuts[(target, source)] = float(value)
    return cuts


class CutCache:
    """Memoized min-cut oracle for a fixed network.

    Computes values lazily; ``precompute_all`` switches to the Gomory–Hu
    all-pairs computation which is cheaper when most pairs will be
    queried (as in (α + cut)-sampling over all pairs).
    """

    def __init__(self, network: Network):
        self._network = network
        self._cache: Dict[Tuple[Hashable, Hashable], float] = {}
        self._complete = False

    @property
    def network(self) -> Network:
        return self._network

    def value(self, source: Vertex, target: Vertex) -> float:
        if source == target:
            return 0.0
        key = (source, target)
        if key in self._cache:
            return self._cache[key]
        if self._complete:
            raise GraphError(f"pair {key!r} not found in precomputed cut table")
        value = min_cut_value(self._network, source, target)
        self._cache[key] = value
        self._cache[(target, source)] = value
        return value

    def precompute_all(self) -> None:
        """Populate the cache for every pair using a Gomory–Hu tree."""
        if self._complete:
            return
        self._cache.update(all_pairs_min_cut(self._network))
        self._complete = True

    def __call__(self, source: Vertex, target: Vertex) -> float:
        return self.value(source, target)


__all__ = ["min_cut_value", "all_pairs_min_cut", "CutCache"]
