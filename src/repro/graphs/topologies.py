"""Topology zoo.

Deterministic topologies used throughout the paper's discussion and our
experiments:

* hypercubes (the classical oblivious-routing testbed, [VB81], [KKT91]),
* 2-d grids and tori (the [HKL07] lower-bound topology family),
* expanders (random regular graphs),
* fat-trees (data-centre style),
* clique-pair gadgets (the ``two n-cliques connected by n edges`` example
  of Section 2.1 motivating (α + cut)-sparsity),
* dumbbells, rings of cliques and paths of expanders (topologies where
  congestion-optimal routing has poor dilation — used by the
  completion-time experiments of Section 7).
"""

from __future__ import annotations

import itertools
from typing import Optional

import networkx as nx

from repro.exceptions import GraphError
from repro.graphs.network import Network
from repro.utils.rng import RngLike, ensure_rng


def hypercube(dimension: int) -> Network:
    """The ``dimension``-dimensional Boolean hypercube on 2^dimension vertices.

    Vertices are integers in ``[0, 2^dimension)``; two vertices are
    adjacent when their labels differ in exactly one bit.
    """
    if dimension < 1:
        raise GraphError("hypercube dimension must be at least 1")
    size = 1 << dimension
    graph = nx.Graph()
    graph.add_nodes_from(range(size))
    for vertex in range(size):
        for bit in range(dimension):
            neighbor = vertex ^ (1 << bit)
            if neighbor > vertex:
                graph.add_edge(vertex, neighbor, capacity=1.0)
    return Network(graph, name=f"hypercube-{dimension}")


def grid_2d(rows: int, cols: Optional[int] = None) -> Network:
    """A rows x cols grid graph (no wraparound)."""
    cols = rows if cols is None else cols
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    graph = nx.grid_2d_graph(rows, cols)
    nx.set_edge_attributes(graph, 1.0, "capacity")
    return Network(graph, name=f"grid-{rows}x{cols}")


def torus_2d(rows: int, cols: Optional[int] = None) -> Network:
    """A rows x cols torus (grid with wraparound edges)."""
    cols = rows if cols is None else cols
    if rows < 3 or cols < 3:
        raise GraphError("torus dimensions must be at least 3 to avoid parallel edges")
    graph = nx.grid_2d_graph(rows, cols, periodic=True)
    nx.set_edge_attributes(graph, 1.0, "capacity")
    return Network(graph, name=f"torus-{rows}x{cols}")


def complete_graph(n: int) -> Network:
    """The complete graph K_n."""
    if n < 2:
        raise GraphError("complete graph needs at least 2 vertices")
    graph = nx.complete_graph(n)
    nx.set_edge_attributes(graph, 1.0, "capacity")
    return Network(graph, name=f"clique-{n}")


def cycle_graph(n: int) -> Network:
    """The cycle C_n."""
    if n < 3:
        raise GraphError("cycle needs at least 3 vertices")
    graph = nx.cycle_graph(n)
    nx.set_edge_attributes(graph, 1.0, "capacity")
    return Network(graph, name=f"cycle-{n}")


def path_graph(n: int) -> Network:
    """The path P_n."""
    if n < 2:
        raise GraphError("path needs at least 2 vertices")
    graph = nx.path_graph(n)
    nx.set_edge_attributes(graph, 1.0, "capacity")
    return Network(graph, name=f"path-{n}")


def star_graph(leaves: int) -> Network:
    """A star with ``leaves`` leaf vertices (center is vertex 0)."""
    if leaves < 1:
        raise GraphError("star needs at least one leaf")
    graph = nx.star_graph(leaves)
    nx.set_edge_attributes(graph, 1.0, "capacity")
    return Network(graph, name=f"star-{leaves}")


def random_regular_expander(n: int, degree: int = 4, rng: RngLike = None) -> Network:
    """A random ``degree``-regular graph — an expander with high probability."""
    if n <= degree:
        raise GraphError("need n > degree for a random regular graph")
    if (n * degree) % 2 != 0:
        raise GraphError("n * degree must be even")
    generator = ensure_rng(rng)
    seed = int(generator.integers(0, 2**31 - 1))
    for attempt in range(20):
        graph = nx.random_regular_graph(degree, n, seed=seed + attempt)
        if nx.is_connected(graph):
            nx.set_edge_attributes(graph, 1.0, "capacity")
            return Network(graph, name=f"expander-{n}-d{degree}")
    raise GraphError("failed to generate a connected random regular graph")


def fat_tree(k: int = 4) -> Network:
    """A k-ary fat-tree (k even): standard 3-layer data-centre topology.

    The topology has ``k`` pods, each with ``k/2`` edge and ``k/2``
    aggregation switches, and ``(k/2)^2`` core switches.  Hosts are not
    modelled; traffic terminates at edge switches.
    """
    if k < 2 or k % 2 != 0:
        raise GraphError("fat-tree parameter k must be a positive even integer")
    half = k // 2
    graph = nx.Graph()
    core = [("core", i) for i in range(half * half)]
    for pod in range(k):
        aggs = [("agg", pod, i) for i in range(half)]
        edges = [("edge", pod, i) for i in range(half)]
        for agg in aggs:
            for edge in edges:
                graph.add_edge(agg, edge, capacity=1.0)
        for agg_index, agg in enumerate(aggs):
            for j in range(half):
                core_switch = core[agg_index * half + j]
                graph.add_edge(agg, core_switch, capacity=1.0)
    return Network(graph, name=f"fat-tree-{k}")


def two_cliques_bridged(clique_size: int, bridges: int) -> Network:
    """Two ``clique_size``-cliques connected by ``bridges`` disjoint edges.

    This is the Section 2.1 example showing α-sparsity alone cannot be
    competitive for fractional routings: a single packet between the
    cliques needs ~``bridges`` candidate paths.
    """
    if clique_size < 2 or bridges < 1 or bridges > clique_size:
        raise GraphError("need 2 <= bridges <= clique_size")
    graph = nx.Graph()
    left = [("L", i) for i in range(clique_size)]
    right = [("R", i) for i in range(clique_size)]
    for a, b in itertools.combinations(left, 2):
        graph.add_edge(a, b, capacity=1.0)
    for a, b in itertools.combinations(right, 2):
        graph.add_edge(a, b, capacity=1.0)
    for i in range(bridges):
        graph.add_edge(("L", i), ("R", i), capacity=1.0)
    return Network(graph, name=f"two-cliques-{clique_size}-b{bridges}")


def dumbbell(side_size: int, bar_length: int = 1) -> Network:
    """Two cliques joined by a path of ``bar_length`` edges (single bottleneck)."""
    if side_size < 2 or bar_length < 1:
        raise GraphError("need side_size >= 2 and bar_length >= 1")
    graph = nx.Graph()
    left = [("L", i) for i in range(side_size)]
    right = [("R", i) for i in range(side_size)]
    for a, b in itertools.combinations(left, 2):
        graph.add_edge(a, b, capacity=1.0)
    for a, b in itertools.combinations(right, 2):
        graph.add_edge(a, b, capacity=1.0)
    previous = ("L", 0)
    for i in range(bar_length - 1):
        middle = ("M", i)
        graph.add_edge(previous, middle, capacity=1.0)
        previous = middle
    graph.add_edge(previous, ("R", 0), capacity=1.0)
    return Network(graph, name=f"dumbbell-{side_size}-bar{bar_length}")


def ring_of_cliques(num_cliques: int, clique_size: int) -> Network:
    """``num_cliques`` cliques arranged in a ring, adjacent cliques sharing one edge.

    Congestion-optimal routings may take long detours around the ring, so
    this family separates congestion-only from completion-time objectives
    (Section 7 experiments).
    """
    if num_cliques < 3 or clique_size < 2:
        raise GraphError("need at least 3 cliques of size >= 2")
    graph = nx.Graph()
    for c in range(num_cliques):
        members = [(c, i) for i in range(clique_size)]
        for a, b in itertools.combinations(members, 2):
            graph.add_edge(a, b, capacity=1.0)
    for c in range(num_cliques):
        nxt = (c + 1) % num_cliques
        graph.add_edge((c, 0), (nxt, 1), capacity=1.0)
    return Network(graph, name=f"ring-of-cliques-{num_cliques}x{clique_size}")


def path_of_expanders(num_blocks: int, block_size: int, degree: int = 4, rng: RngLike = None) -> Network:
    """``num_blocks`` expander blocks chained by single bridge edges.

    Long hop distances between far-apart blocks combined with narrow
    bridges create tension between congestion and dilation (Section 7).
    """
    if num_blocks < 2:
        raise GraphError("need at least 2 blocks")
    generator = ensure_rng(rng)
    graph = nx.Graph()
    for block in range(num_blocks):
        expander = random_regular_expander(block_size, degree=degree, rng=generator)
        mapping = {v: (block, v) for v in expander.vertices}
        for u, v in expander.edges:
            graph.add_edge(mapping[u], mapping[v], capacity=1.0)
    for block in range(num_blocks - 1):
        graph.add_edge((block, 0), (block + 1, 1), capacity=1.0)
    return Network(graph, name=f"path-of-expanders-{num_blocks}x{block_size}")


__all__ = [
    "hypercube",
    "grid_2d",
    "torus_2d",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "random_regular_expander",
    "fat_tree",
    "two_cliques_bridged",
    "dumbbell",
    "ring_of_cliques",
    "path_of_expanders",
]
