"""Lower-bound graph constructions from Section 8 of the paper.

Lemma 8.1 builds the gadget ``C(n, k)``: two (n+1)-vertex stars whose
centers are both connected to ``k`` middle vertices.  Every
(α - 1 + cut)-sparse semi-oblivious routing on ``C(n, k)`` with
``k = floor(n^{1/(2α)})`` admits a permutation demand on which it is at
least ``k / α``-competitive.

Lemma 8.2 chains one copy of ``C(n, floor(n^{1/(2α)}))`` per
``α ∈ [floor(log n)]`` with bridge edges into the family graph ``G(n)``,
giving a single graph that is hard for every sparsity simultaneously.

Vertex naming convention for ``C(n, k)``:

* ``("v1",)`` and ``("v2",)`` — the two star centers,
* ``("a", i)`` for ``i in range(n)`` — leaves of the first star (set V1),
* ``("b", i)`` for ``i in range(n)`` — leaves of the second star (set V2),
* ``("m", i)`` for ``i in range(k)`` — the middle vertices (set K).

In ``G(n)`` every vertex is additionally prefixed by its copy index:
``(copy, original_vertex)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.exceptions import GraphError
from repro.graphs.network import Network, Vertex


@dataclass(frozen=True)
class GadgetLayout:
    """Named vertex groups of a ``C(n, k)`` gadget (possibly inside ``G(n)``)."""

    center_left: Vertex
    center_right: Vertex
    left_leaves: Tuple[Vertex, ...]
    right_leaves: Tuple[Vertex, ...]
    middle: Tuple[Vertex, ...]

    @property
    def n(self) -> int:
        return len(self.left_leaves)

    @property
    def k(self) -> int:
        return len(self.middle)


def gadget_size_k(n: int, alpha: int) -> int:
    """The middle-layer width ``k = floor(n^{1/(2α)})`` used by Lemma 8.1."""
    if n < 1 or alpha < 1:
        raise GraphError("need n >= 1 and alpha >= 1")
    return int(math.floor(n ** (1.0 / (2.0 * alpha))))


def lower_bound_gadget(n: int, k: int, prefix: Tuple = ()) -> Tuple[Network, GadgetLayout]:
    """Build ``C(n, k)`` and return the network together with its layout.

    Parameters
    ----------
    n:
        Number of leaves of each star.
    k:
        Number of middle vertices connecting the two star centers.
    prefix:
        Optional tuple prepended to every vertex label (used when
        embedding the gadget into ``G(n)``).
    """
    if n < 1 or k < 1:
        raise GraphError("C(n, k) requires n >= 1 and k >= 1")

    def label(*parts) -> Tuple:
        return prefix + tuple(parts)

    center_left = label("v1")
    center_right = label("v2")
    left_leaves = tuple(label("a", i) for i in range(n))
    right_leaves = tuple(label("b", i) for i in range(n))
    middle = tuple(label("m", i) for i in range(k))

    graph = nx.Graph()
    for leaf in left_leaves:
        graph.add_edge(center_left, leaf, capacity=1.0)
    for leaf in right_leaves:
        graph.add_edge(center_right, leaf, capacity=1.0)
    for mid in middle:
        graph.add_edge(center_left, mid, capacity=1.0)
        graph.add_edge(center_right, mid, capacity=1.0)

    layout = GadgetLayout(
        center_left=center_left,
        center_right=center_right,
        left_leaves=left_leaves,
        right_leaves=right_leaves,
        middle=middle,
    )
    network = Network(graph, name=f"C({n},{k})")
    expected_vertices = 2 * n + 2 + k
    expected_edges = 2 * n + 2 * k
    if network.num_vertices != expected_vertices or network.num_edges != expected_edges:
        raise GraphError("C(n, k) construction produced unexpected sizes")
    return network, layout


def lower_bound_family(n: int) -> Tuple[Network, Dict[int, GadgetLayout]]:
    """Build the family graph ``G(n)`` of Lemma 8.2.

    Returns the network and a map ``alpha -> GadgetLayout`` giving, for
    each sparsity level ``alpha in [floor(log2 n)]``, the layout of its
    dedicated ``C(n, floor(n^{1/(2α)}))`` copy.
    """
    if n < 2:
        raise GraphError("G(n) requires n >= 2")
    max_alpha = int(math.floor(math.log2(n)))
    if max_alpha < 1:
        raise GraphError("G(n) requires log2(n) >= 1")

    graph = nx.Graph()
    layouts: Dict[int, GadgetLayout] = {}
    anchors: List[Vertex] = []
    for alpha in range(1, max_alpha + 1):
        k = max(gadget_size_k(n, alpha), 1)
        copy_network, layout = lower_bound_gadget(n, k, prefix=(alpha,))
        for u, v in copy_network.edges:
            graph.add_edge(u, v, capacity=copy_network.capacity(u, v))
        layouts[alpha] = layout
        anchors.append(layout.center_left)
    for first, second in zip(anchors, anchors[1:]):
        graph.add_edge(first, second, capacity=1.0)
    network = Network(graph, name=f"G({n})")
    return network, layouts


def ascii_render_gadget(layout: GadgetLayout, max_leaves: int = 8) -> str:
    """A small ASCII rendering of a ``C(n, k)`` gadget (Figure 1 style)."""
    left = min(layout.n, max_leaves)
    mid = layout.k
    lines = []
    lines.append(f"C(n={layout.n}, k={layout.k})")
    lines.append(
        "  V1 leaves: "
        + " ".join("o" for _ in range(left))
        + (" ..." if layout.n > max_leaves else "")
    )
    lines.append("       \\ | /")
    lines.append("        v1 ---" + "---".join("K" for _ in range(mid)) + "--- v2")
    lines.append("       / | \\")
    lines.append(
        "  V2 leaves: "
        + " ".join("o" for _ in range(left))
        + (" ..." if layout.n > max_leaves else "")
    )
    return "\n".join(lines)


__all__ = [
    "GadgetLayout",
    "gadget_size_k",
    "lower_bound_gadget",
    "lower_bound_family",
    "ascii_render_gadget",
]
