"""The :class:`Network` abstraction used throughout the library.

The paper works with undirected connected graphs where parallel edges play
the role of capacities (Section 4).  ``Network`` wraps a
:class:`networkx.Graph` with per-edge capacities (a capacity-``c`` edge is
equivalent to ``c`` parallel unit edges), and provides:

* canonical vertex indexing (for LP column layouts),
* canonical undirected edge keys and directed-arc iteration,
* path validation (simple, adjacent, correct endpoints),
* congestion accounting for weighted path collections,
* cached shortest paths and connectivity checks.

Paths are represented everywhere as tuples of vertices
``(v0, v1, ..., vk)`` with ``v0`` the source and ``vk`` the destination.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import GraphError, PathError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]
Path = Tuple[Vertex, ...]


def edge_key(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (order-independent) key for the undirected edge {u, v}."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


def path_edges(path: Sequence[Vertex]) -> List[Edge]:
    """Return the canonical edge keys traversed by ``path`` (in order)."""
    return [edge_key(path[i], path[i + 1]) for i in range(len(path) - 1)]


class Network:
    """An undirected, capacitated, connected communication network.

    Parameters
    ----------
    graph:
        A networkx ``Graph`` or ``MultiGraph``.  Multi-edges are collapsed
        into a single edge whose capacity is the number of parallel edges
        (plus any explicit ``capacity`` attributes).
    name:
        Optional human-readable topology name.
    require_connected:
        When True (default) a :class:`GraphError` is raised for
        disconnected or empty graphs, matching the paper's standing
        assumption of connected graphs.
    """

    def __init__(
        self,
        graph: nx.Graph,
        name: str = "network",
        require_connected: bool = True,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise GraphError("network must have at least one vertex")
        simple = nx.Graph()
        # Node/edge attributes (labels, coordinates, latencies from the
        # ingestion layer) are preserved; only ``capacity`` is interpreted.
        simple.add_nodes_from((node, dict(data)) for node, data in graph.nodes(data=True))
        if isinstance(graph, (nx.MultiGraph, nx.MultiDiGraph)):
            edge_iter: Iterable = graph.edges(keys=False, data=True)
        else:
            edge_iter = graph.edges(data=True)
        for u, v, data in edge_iter:
            if u == v:
                continue  # self-loops carry no traffic
            try:
                capacity = float(data.get("capacity", 1.0))
            except (TypeError, ValueError):
                raise GraphError(
                    f"edge {(u, v)!r} has non-numeric capacity {data.get('capacity')!r}"
                ) from None
            # NaN compares False against every threshold: check finiteness
            # explicitly or it slips through and poisons congestion math.
            if not math.isfinite(capacity) or capacity <= 0:
                raise GraphError(
                    f"edge {(u, v)!r} has non-positive or non-finite capacity {capacity}"
                )
            extra = {key: value for key, value in data.items() if key != "capacity"}
            if simple.has_edge(u, v):
                simple[u][v]["capacity"] += capacity
                for key, value in extra.items():
                    simple[u][v].setdefault(key, value)
            else:
                simple.add_edge(u, v, capacity=capacity, **extra)
        if require_connected and not nx.is_connected(simple):
            raise GraphError("network must be connected")
        self._graph = simple
        self.name = name
        self._vertices: List[Vertex] = list(simple.nodes())
        self._vertex_index: Dict[Vertex, int] = {v: i for i, v in enumerate(self._vertices)}
        self._edges: List[Edge] = [edge_key(u, v) for u, v in simple.edges()]
        self._edges.sort(key=repr)
        self._edge_index: Dict[Edge, int] = {e: i for i, e in enumerate(self._edges)}
        self._capacities: Dict[Edge, float] = {
            edge_key(u, v): float(simple[u][v]["capacity"]) for u, v in simple.edges()
        }

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (capacities stored on edges)."""
        return self._graph

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def vertices(self) -> List[Vertex]:
        """Vertices in canonical (indexing) order."""
        return list(self._vertices)

    @property
    def edges(self) -> List[Edge]:
        """Canonical undirected edge keys in indexing order."""
        return list(self._edges)

    def vertex_index(self, vertex: Vertex) -> int:
        try:
            return self._vertex_index[vertex]
        except KeyError as exc:
            raise GraphError(f"vertex {vertex!r} is not in the network") from exc

    def edge_index(self, u: Vertex, v: Vertex) -> int:
        key = edge_key(u, v)
        try:
            return self._edge_index[key]
        except KeyError as exc:
            raise GraphError(f"edge {(u, v)!r} is not in the network") from exc

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._vertex_index

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return edge_key(u, v) in self._edge_index

    def capacity(self, u: Vertex, v: Vertex) -> float:
        """Capacity of the undirected edge {u, v}."""
        key = edge_key(u, v)
        try:
            return self._capacities[key]
        except KeyError as exc:
            raise GraphError(f"edge {(u, v)!r} is not in the network") from exc

    def capacity_of(self, edge: Edge) -> float:
        return self.capacity(edge[0], edge[1])

    def neighbors(self, vertex: Vertex) -> List[Vertex]:
        if not self.has_vertex(vertex):
            raise GraphError(f"vertex {vertex!r} is not in the network")
        return list(self._graph.neighbors(vertex))

    def degree(self, vertex: Vertex) -> int:
        if not self.has_vertex(vertex):
            raise GraphError(f"vertex {vertex!r} is not in the network")
        return self._graph.degree(vertex)

    def max_degree(self) -> int:
        return max(dict(self._graph.degree()).values())

    def arcs(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate both orientations of every undirected edge."""
        for u, v in self._edges:
            yield (u, v)
            yield (v, u)

    def vertex_pairs(self, ordered: bool = False) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate distinct vertex pairs (unordered by default)."""
        vertices = self._vertices
        for i, u in enumerate(vertices):
            start = 0 if ordered else i + 1
            for j in range(start, len(vertices)):
                v = vertices[j]
                if u == v:
                    continue
                yield (u, v)

    # ------------------------------------------------------------------ #
    # Path helpers
    # ------------------------------------------------------------------ #
    def validate_path(self, path: Sequence[Vertex], source: Vertex = None, target: Vertex = None) -> Path:
        """Validate ``path`` and return it as a canonical tuple.

        The path must have at least one vertex, be simple (no repeated
        vertices), have consecutive vertices adjacent in the network, and
        (when given) match the requested ``source`` and ``target``.
        """
        if len(path) == 0:
            raise PathError("a path must contain at least one vertex")
        canonical: Path = tuple(path)
        if len(set(canonical)) != len(canonical):
            raise PathError(f"path {canonical!r} is not simple")
        for vertex in canonical:
            if not self.has_vertex(vertex):
                raise PathError(f"path vertex {vertex!r} is not in the network")
        for u, v in zip(canonical, canonical[1:]):
            if not self.has_edge(u, v):
                raise PathError(f"path step {(u, v)!r} is not an edge of the network")
        if source is not None and canonical[0] != source:
            raise PathError(f"path starts at {canonical[0]!r}, expected {source!r}")
        if target is not None and canonical[-1] != target:
            raise PathError(f"path ends at {canonical[-1]!r}, expected {target!r}")
        return canonical

    def path_length(self, path: Sequence[Vertex]) -> int:
        """Number of edges (hops) of ``path``."""
        return max(len(path) - 1, 0)

    def shortest_path(self, source: Vertex, target: Vertex, weight: Optional[str] = None) -> Path:
        """A shortest (fewest hops, or by ``weight`` attribute) path as a tuple."""
        if not self.has_vertex(source) or not self.has_vertex(target):
            raise GraphError("both endpoints must be network vertices")
        try:
            nodes = nx.shortest_path(self._graph, source, target, weight=weight)
        except nx.NetworkXNoPath as exc:  # pragma: no cover - connected by construction
            raise GraphError(f"no path between {source!r} and {target!r}") from exc
        return tuple(nodes)

    def distance(self, source: Vertex, target: Vertex) -> int:
        """Hop distance between two vertices."""
        return self.path_length(self.shortest_path(source, target))

    def diameter(self) -> int:
        """Hop diameter of the network."""
        return nx.diameter(self._graph)

    # ------------------------------------------------------------------ #
    # Congestion accounting
    # ------------------------------------------------------------------ #
    def edge_loads(self, weighted_paths: Iterable[Tuple[Sequence[Vertex], float]]) -> Dict[Edge, float]:
        """Aggregate per-edge load of a weighted path collection.

        Parameters
        ----------
        weighted_paths:
            Iterable of ``(path, weight)`` pairs.  Weights may be
            fractional; paths are not re-validated here for speed.
        """
        loads: Dict[Edge, float] = {}
        for path, weight in weighted_paths:
            if weight == 0:
                continue
            for edge in path_edges(path):
                loads[edge] = loads.get(edge, 0.0) + weight
        return loads

    def congestion(self, weighted_paths: Iterable[Tuple[Sequence[Vertex], float]]) -> float:
        """Maximum edge congestion (load divided by capacity) of a path collection."""
        loads = self.edge_loads(weighted_paths)
        worst = 0.0
        for edge, load in loads.items():
            worst = max(worst, load / self._capacities[edge])
        return worst

    # ------------------------------------------------------------------ #
    # Construction helpers and dunder methods
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        capacities: Optional[Mapping[Tuple[Vertex, Vertex], float]] = None,
        name: str = "network",
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> "Network":
        """Build a network from an edge list with optional capacities.

        When ``vertices`` is given it declares the full vertex set: an
        edge endpoint outside it raises :class:`GraphError` (the typed
        diagnostic the ingestion parsers rely on), and declared but
        isolated vertices still fail the connectivity check rather than
        being silently dropped.  Zero or negative entries in
        ``capacities`` raise :class:`GraphError` naming the edge.
        """
        graph = nx.Graph()
        known = None
        if vertices is not None:
            known = list(vertices)
            graph.add_nodes_from(known)
            known = set(known)
        for u, v in edges:
            if known is not None:
                missing = [vertex for vertex in (u, v) if vertex not in known]
                if missing:
                    raise GraphError(
                        f"edge {(u, v)!r} references unknown vertices "
                        f"{sorted(map(repr, missing))}"
                    )
            capacity = 1.0
            if capacities is not None:
                capacity = capacities.get((u, v), capacities.get((v, u), 1.0))
                try:
                    capacity = float(capacity)
                except (TypeError, ValueError):
                    raise GraphError(
                        f"edge {(u, v)!r} has non-numeric capacity {capacity!r}"
                    ) from None
                if not math.isfinite(capacity) or capacity <= 0:
                    raise GraphError(
                        f"edge {(u, v)!r} has non-positive or non-finite capacity {capacity}"
                    )
            if graph.has_edge(u, v):
                graph[u][v]["capacity"] += capacity
            else:
                graph.add_edge(u, v, capacity=capacity)
        return cls(graph, name=name)

    def relabeled(self, mapping: Mapping[Vertex, Vertex], name: Optional[str] = None) -> "Network":
        """Return a copy with vertices relabeled through ``mapping``."""
        relabeled = nx.relabel_nodes(self._graph, dict(mapping), copy=True)
        return Network(relabeled, name=name or self.name)

    def subnetwork(self, vertices: Iterable[Vertex], name: Optional[str] = None) -> "Network":
        """Return the induced subnetwork on ``vertices`` (must stay connected)."""
        vertex_set = set(vertices)
        missing = vertex_set - set(self._vertices)
        if missing:
            raise GraphError(f"vertices {sorted(map(repr, missing))} are not in the network")
        sub = self._graph.subgraph(vertex_set).copy()
        return Network(sub, name=name or f"{self.name}-sub")

    def __contains__(self, vertex: Vertex) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return (
            f"Network(name={self.name!r}, n={self.num_vertices}, m={self.num_edges})"
        )


__all__ = ["Network", "Vertex", "Edge", "Path", "edge_key", "path_edges"]
