"""Demand generators.

The paper's statements quantify over *all* demands; the experiments
evaluate on the structured families that drive the theory:

* random and adversarial permutation demands (the lower-bound class),
* {0, 1}-demands on random pair sets,
* classic hard hypercube patterns (bit reversal, transpose),
* bisection demands (every vertex on one side talks to the other side),
* gravity-model demands (the traffic-engineering workload of SMORE),
* α-special demands (Definition 5.5), built from pair supports.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.demands.demand import Demand, Pair
from repro.exceptions import DemandError
from repro.graphs.network import Network, Vertex
from repro.utils.rng import RngLike, ensure_rng


def permutation_demand(mapping: dict) -> Demand:
    """A permutation demand from an explicit source -> target mapping."""
    pairs = []
    targets_seen = set()
    for source, target in mapping.items():
        if source == target:
            continue
        if target in targets_seen:
            raise DemandError("mapping is not injective; not a permutation demand")
        targets_seen.add(target)
        pairs.append((source, target))
    return Demand.from_pairs(pairs)


def random_permutation_demand(
    network: Network,
    rng: RngLike = None,
    vertices: Optional[Sequence[Vertex]] = None,
) -> Demand:
    """A uniformly random permutation demand over ``vertices`` (default: all)."""
    generator = ensure_rng(rng)
    nodes = list(vertices) if vertices is not None else network.vertices
    shuffled = list(nodes)
    generator.shuffle(shuffled)
    pairs = [(s, t) for s, t in zip(nodes, shuffled) if s != t]
    return Demand.from_pairs(pairs, network=network)


def random_pairs_demand(
    network: Network,
    num_pairs: int,
    value: float = 1.0,
    rng: RngLike = None,
) -> Demand:
    """A demand of ``value`` on ``num_pairs`` distinct random ordered pairs."""
    if num_pairs < 0:
        raise DemandError("num_pairs must be nonnegative")
    generator = ensure_rng(rng)
    nodes = network.vertices
    if len(nodes) < 2:
        raise DemandError("network must have at least two vertices")
    chosen = set()
    max_pairs = len(nodes) * (len(nodes) - 1)
    target_count = min(num_pairs, max_pairs)
    while len(chosen) < target_count:
        i, j = generator.integers(0, len(nodes), size=2)
        if i == j:
            continue
        chosen.add((nodes[int(i)], nodes[int(j)]))
    return Demand.from_pairs(chosen, value=value, network=network)


def all_pairs_demand(network: Network, value: float = 1.0) -> Demand:
    """Demand ``value`` between every ordered pair of distinct vertices."""
    return Demand.from_pairs(network.vertex_pairs(ordered=True), value=value, network=network)


def uniform_demand(network: Network, total: float) -> Demand:
    """A uniform all-pairs demand with total volume ``total``."""
    pairs = list(network.vertex_pairs(ordered=True))
    if not pairs:
        return Demand.empty()
    return Demand.from_pairs(pairs, value=total / len(pairs), network=network)


def gravity_demand(
    network: Network,
    total: float,
    weights: Optional[dict] = None,
    rng: RngLike = None,
) -> Demand:
    """A gravity-model demand: ``d(s, t) ∝ w(s) * w(t)``.

    When ``weights`` is omitted, per-vertex weights are sampled from a
    log-normal distribution, which mimics the heavy-tailed ingress/egress
    volumes of real traffic matrices.
    """
    generator = ensure_rng(rng)
    nodes = network.vertices
    if weights is None:
        raw = generator.lognormal(mean=0.0, sigma=1.0, size=len(nodes))
        weights = {node: float(value) for node, value in zip(nodes, raw)}
    else:
        weights = {node: float(weights.get(node, 0.0)) for node in nodes}
    normalizer = sum(
        weights[s] * weights[t] for s in nodes for t in nodes if s != t
    )
    if normalizer <= 0:
        raise DemandError("gravity weights must have positive pairwise products")
    values = {}
    for s in nodes:
        for t in nodes:
            if s == t:
                continue
            amount = total * weights[s] * weights[t] / normalizer
            if amount > 0:
                values[(s, t)] = amount
    return Demand(values, network=network)


def bit_reversal_demand(network: Network, dimension: int) -> Demand:
    """The bit-reversal permutation on a ``dimension``-dimensional hypercube.

    A classic adversarial pattern for deterministic oblivious routing on
    hypercubes ([KKT91] style): vertex ``x`` sends to the vertex whose
    label is the bit-reversal of ``x``.
    """
    size = 1 << dimension
    pairs = []
    for vertex in range(size):
        reversed_bits = int(format(vertex, f"0{dimension}b")[::-1], 2)
        if reversed_bits != vertex:
            pairs.append((vertex, reversed_bits))
    return Demand.from_pairs(pairs, network=network)


def transpose_demand(network: Network, dimension: int) -> Demand:
    """The transpose permutation on a hypercube with even ``dimension``.

    Vertex ``(x, y)`` (labels split into two halves) sends to ``(y, x)``;
    another classic worst case for single-path deterministic routing.
    """
    if dimension % 2 != 0:
        raise DemandError("transpose demand requires an even hypercube dimension")
    half = dimension // 2
    mask = (1 << half) - 1
    size = 1 << dimension
    pairs = []
    for vertex in range(size):
        low = vertex & mask
        high = vertex >> half
        image = (low << half) | high
        if image != vertex:
            pairs.append((vertex, image))
    return Demand.from_pairs(pairs, network=network)


def bisection_demand(network: Network, rng: RngLike = None) -> Demand:
    """A random perfect matching between two halves of the vertex set."""
    generator = ensure_rng(rng)
    nodes = list(network.vertices)
    generator.shuffle(nodes)
    half = len(nodes) // 2
    left, right = nodes[:half], nodes[half : 2 * half]
    pairs = list(zip(left, right))
    return Demand.from_pairs(pairs, network=network)


def special_demand_from_pairs(
    pairs: Iterable[Pair],
    alpha: int,
    cut_oracle: Callable[[Vertex, Vertex], float],
) -> Demand:
    """The α-special demand (Definition 5.5) supported on ``pairs``."""
    values = {}
    for source, target in pairs:
        if source == target:
            continue
        values[(source, target)] = alpha + cut_oracle(source, target)
    return Demand(values)


def cluster_demand(
    network: Network,
    clusters: Sequence[Sequence[Vertex]],
    intra: float = 0.0,
    inter: float = 1.0,
) -> Demand:
    """Demands organised around vertex clusters.

    Every ordered pair inside a cluster gets ``intra``; every ordered
    pair between different clusters gets ``inter`` (scaled down by the
    number of such pairs so the totals stay comparable).
    """
    values = {}
    for cluster in clusters:
        for s in cluster:
            for t in cluster:
                if s != t and intra > 0:
                    values[(s, t)] = intra
    flat = [v for cluster in clusters for v in cluster]
    for i, cluster_a in enumerate(clusters):
        for j, cluster_b in enumerate(clusters):
            if i == j:
                continue
            for s in cluster_a:
                for t in cluster_b:
                    if inter > 0:
                        values[(s, t)] = inter
    _ = flat
    return Demand(values, network=network)


def demands_for_support(
    support: Iterable[Pair],
    values: Iterable[float],
) -> List[Demand]:
    """One {0,1}-style demand per value: value * indicator(support)."""
    support = list(support)
    return [Demand.from_pairs(support, value=value) for value in values]


__all__ = [
    "permutation_demand",
    "random_permutation_demand",
    "random_pairs_demand",
    "all_pairs_demand",
    "uniform_demand",
    "gravity_demand",
    "bit_reversal_demand",
    "transpose_demand",
    "bisection_demand",
    "special_demand_from_pairs",
    "cluster_demand",
    "demands_for_support",
]
