"""The :class:`Demand` matrix (Definition 2.2 of the paper).

A demand is a function ``d : V x V -> R_{>=0}`` with ``d(v, v) = 0``.
We store it sparsely as a mapping from ordered pairs to positive values.
The class implements the demand taxonomy used by the paper:

* integral demands (all values integers),
* {0, 1}-demands,
* permutation demands (each vertex is the source of at most one unit and
  the destination of at most one unit),
* α-special demands (Definition 5.5: every value is 0 or α + cut(s, t)),

together with the algebra needed by the reductions of Section 5.4
(scaling, addition, splitting, restriction, bucketing).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import DemandError
from repro.graphs.network import Network, Vertex

Pair = Tuple[Vertex, Vertex]

_INTEGRALITY_TOL = 1e-9


class Demand:
    """A sparse demand matrix over ordered vertex pairs.

    Parameters
    ----------
    values:
        Mapping from ``(source, target)`` pairs to nonnegative demand.
        Zero entries are dropped; negative entries and diagonal entries
        with positive demand raise :class:`DemandError`.
    network:
        Optional network against which pair endpoints are validated.
    """

    def __init__(
        self,
        values: Mapping[Pair, float] | Iterable[Tuple[Pair, float]] = (),
        network: Optional[Network] = None,
    ) -> None:
        if isinstance(values, Mapping):
            items = values.items()
        else:
            items = list(values)
        cleaned: Dict[Pair, float] = {}
        for (source, target), amount in items:
            amount = float(amount)
            if amount < 0:
                raise DemandError(f"negative demand {amount} for pair {(source, target)!r}")
            if source == target:
                if amount > 0:
                    raise DemandError(f"demand between identical vertices {source!r}")
                continue
            if network is not None:
                if not network.has_vertex(source) or not network.has_vertex(target):
                    raise DemandError(
                        f"demand pair {(source, target)!r} references vertices outside the network"
                    )
            if amount > 0:
                cleaned[(source, target)] = cleaned.get((source, target), 0.0) + amount
        self._values: Dict[Pair, float] = cleaned

    # ------------------------------------------------------------------ #
    # Basic access
    # ------------------------------------------------------------------ #
    def value(self, source: Vertex, target: Vertex) -> float:
        """``d(source, target)`` (0 for absent pairs)."""
        return self._values.get((source, target), 0.0)

    def __getitem__(self, pair: Pair) -> float:
        return self.value(pair[0], pair[1])

    def pairs(self) -> List[Pair]:
        """The support ``supp(d)`` as a list of ordered pairs."""
        return list(self._values.keys())

    def items(self) -> Iterator[Tuple[Pair, float]]:
        return iter(self._values.items())

    def support_size(self) -> int:
        """``|supp(d)|``."""
        return len(self._values)

    def size(self) -> float:
        """``siz(d) = sum_{s != t} d(s, t)``."""
        return sum(self._values.values())

    def max_value(self) -> float:
        """``max_{s,t} d(s, t)`` (0 for the empty demand)."""
        if not self._values:
            return 0.0
        return max(self._values.values())

    def is_empty(self) -> bool:
        return not self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Demand):
            return NotImplemented
        keys = set(self._values) | set(other._values)
        return all(abs(self.value(*k) - other.value(*k)) <= 1e-12 for k in keys)

    def __hash__(self) -> int:  # Demands are mutated never, only rebuilt.
        return hash(frozenset((k, round(v, 12)) for k, v in self._values.items()))

    def __repr__(self) -> str:
        return f"Demand(pairs={self.support_size()}, size={self.size():.3f})"

    # ------------------------------------------------------------------ #
    # Classification (Definition 2.2 / 5.5)
    # ------------------------------------------------------------------ #
    def is_integral(self) -> bool:
        """True when every demand value is an integer."""
        return all(abs(v - round(v)) <= _INTEGRALITY_TOL for v in self._values.values())

    def is_zero_one(self) -> bool:
        """True when every demand value is exactly 1 (a {0, 1}-demand)."""
        return all(abs(v - 1.0) <= _INTEGRALITY_TOL for v in self._values.values())

    def is_permutation(self) -> bool:
        """True for permutation demands: {0,1}-demand, row/column sums <= 1."""
        if not self.is_zero_one():
            return False
        out_degree: Dict[Vertex, int] = {}
        in_degree: Dict[Vertex, int] = {}
        for source, target in self._values:
            out_degree[source] = out_degree.get(source, 0) + 1
            in_degree[target] = in_degree.get(target, 0) + 1
            if out_degree[source] > 1 or in_degree[target] > 1:
                return False
        return True

    def is_special(self, alpha: int, cut_oracle: Callable[[Vertex, Vertex], float]) -> bool:
        """True for α-special demands: every value equals ``alpha + cut(s, t)``."""
        for (source, target), amount in self._values.items():
            expected = alpha + cut_oracle(source, target)
            if abs(amount - expected) > 1e-6:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Algebra used by the Section 5.4 reductions
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "Demand":
        """The demand ``factor * d``."""
        if factor < 0:
            raise DemandError("scaling factor must be nonnegative")
        return Demand({pair: amount * factor for pair, amount in self._values.items()})

    def __add__(self, other: "Demand") -> "Demand":
        combined = dict(self._values)
        for pair, amount in other._values.items():
            combined[pair] = combined.get(pair, 0.0) + amount
        return Demand(combined)

    def __sub__(self, other: "Demand") -> "Demand":
        combined = dict(self._values)
        for pair, amount in other._values.items():
            remaining = combined.get(pair, 0.0) - amount
            if remaining < -1e-9:
                raise DemandError("subtraction would produce a negative demand")
            if remaining <= 1e-12:
                combined.pop(pair, None)
            else:
                combined[pair] = remaining
        return Demand(combined)

    def restricted(self, pairs: Iterable[Pair]) -> "Demand":
        """The demand restricted to ``pairs`` (other entries zeroed)."""
        wanted = set(pairs)
        return Demand({pair: amount for pair, amount in self._values.items() if pair in wanted})

    def filtered(self, predicate: Callable[[Pair, float], bool]) -> "Demand":
        """Keep only entries on which ``predicate(pair, value)`` is true."""
        return Demand(
            {pair: amount for pair, amount in self._values.items() if predicate(pair, amount)}
        )

    def rounded_up(self) -> "Demand":
        """Ceil every entry to an integer (used for integral comparisons)."""
        return Demand({pair: math.ceil(amount - _INTEGRALITY_TOL) for pair, amount in self._values.items()})

    def split_by_threshold(self, threshold: float) -> Tuple["Demand", "Demand"]:
        """Split into (entries >= threshold, entries < threshold) — Lemma 5.17 style."""
        high = {p: v for p, v in self._values.items() if v >= threshold}
        low = {p: v for p, v in self._values.items() if v < threshold}
        return Demand(high), Demand(low)

    def buckets_by_ratio(
        self,
        denominator: Callable[[Pair], float],
        base: float = 2.0,
    ) -> Dict[int, "Demand"]:
        """Bucket pairs by ``log_base(d(s,t) / denominator(s,t))`` (Lemma 5.9 reduction)."""
        buckets: Dict[int, Dict[Pair, float]] = {}
        for pair, amount in self._values.items():
            denom = denominator(pair)
            if denom <= 0:
                raise DemandError(f"nonpositive denominator for pair {pair!r}")
            ratio = amount / denom
            index = int(math.floor(math.log(ratio, base))) if ratio > 0 else 0
            buckets.setdefault(index, {})[pair] = amount
        return {index: Demand(values) for index, values in buckets.items()}

    def special_cover(
        self,
        alpha: int,
        cut_oracle: Callable[[Vertex, Vertex], float],
    ) -> "Demand":
        """The smallest α-special demand dominating the support of ``d``.

        Used by the special-to-general reduction: every pair in the
        support is raised to ``alpha + cut(s, t)``.
        """
        return Demand(
            {
                (source, target): alpha + cut_oracle(source, target)
                for (source, target) in self._values
            }
        )

    # ------------------------------------------------------------------ #
    # Dense export (the linalg evaluation backend's input format)
    # ------------------------------------------------------------------ #
    def as_vector(self, pair_index: Mapping[Pair, int], size: Optional[int] = None, missing: str = "error"):
        """Dense demand vector over an external pair indexing.

        ``pair_index`` maps ordered pairs to row positions (e.g. a
        :class:`~repro.linalg.CompiledRouting`'s ``pair_index``);
        ``size`` defaults to ``len(pair_index)``.  Pairs with positive
        demand absent from the index raise :class:`DemandError` unless
        ``missing="drop"``.  (The evaluator-side twin,
        ``CompiledRouting.demand_vector``, raises ``RoutingError`` for
        the same condition — it speaks the routing contract, this one
        the demand contract.)
        """
        import numpy as np

        length = len(pair_index) if size is None else int(size)
        vector = np.zeros(length, dtype=float)
        for pair, amount in self._values.items():
            index = pair_index.get(pair)
            if index is None:
                if missing == "drop":
                    continue
                raise DemandError(f"pair {pair!r} is not in the supplied pair index")
            vector[index] += amount
        return vector

    @staticmethod
    def stack(
        demands: Sequence["Demand"],
        pair_index: Mapping[Pair, int],
        size: Optional[int] = None,
        missing: str = "error",
    ):
        """Dense (batch × pair) demand matrix for a sequence of demands.

        The row order follows ``demands``; columns follow
        ``pair_index``.  This is the dense export consumed by the
        batched evaluators; the compiled backend builds the same matrix
        sparsely via ``CompiledRouting.demand_matrix``.

        An empty batch raises :class:`DemandError` — a (0 × pair)
        array would only defer the failure to whichever numpy reduction
        consumes it, with a far less useful message.
        """
        import numpy as np

        demands = list(demands)
        if not demands:
            raise DemandError(
                "cannot stack an empty demand batch; pass at least one demand"
            )
        length = len(pair_index) if size is None else int(size)
        if length < 0:
            raise DemandError(f"demand matrix width must be nonnegative, got {length}")
        matrix = np.zeros((len(demands), length), dtype=float)
        for row, demand in enumerate(demands):
            matrix[row, :] = demand.as_vector(pair_index, size=length, missing=missing)
        return matrix

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[Pair], value: float = 1.0, network: Optional[Network] = None) -> "Demand":
        """A demand assigning ``value`` to every listed pair."""
        return cls({tuple(pair): value for pair in pairs}, network=network)

    @classmethod
    def empty(cls) -> "Demand":
        return cls({})


__all__ = ["Demand", "Pair"]
