"""Demand matrices, demand generators, adversarial demands and traffic matrices."""

from repro.demands.demand import Demand
from repro.demands.generators import (
    permutation_demand,
    random_permutation_demand,
    random_pairs_demand,
    all_pairs_demand,
    gravity_demand,
    uniform_demand,
    bit_reversal_demand,
    transpose_demand,
    bisection_demand,
    special_demand_from_pairs,
    cluster_demand,
)
from repro.demands.traffic_matrix import (
    TrafficMatrixSeries,
    constant_series,
    diurnal_gravity_series,
    gravity_series,
    permutation_series,
)

__all__ = [
    "Demand",
    "permutation_demand",
    "random_permutation_demand",
    "random_pairs_demand",
    "all_pairs_demand",
    "gravity_demand",
    "uniform_demand",
    "bit_reversal_demand",
    "transpose_demand",
    "bisection_demand",
    "special_demand_from_pairs",
    "cluster_demand",
    "TrafficMatrixSeries",
    "diurnal_gravity_series",
    "constant_series",
    "permutation_series",
    "gravity_series",
]
