"""Adversarial demand construction.

Three adversaries of increasing generality:

* :func:`lower_bound_adversary` — the constructive Lemma 8.1 adversary.
  Given any sparse path system on the gadget ``C(n, k)``, it uses the
  double pigeonhole + matching argument from the proof to output a
  permutation demand between star leaves that every routing *on the
  candidate paths* must congest by at least (matching size) / |S'|,
  while the offline integral optimum routes it with congestion 1.
  Fully deterministic: the pigeonhole groups are resolved by the stored
  path-system order, so equal inputs give equal demands.

* :func:`random_search_adversary` — a randomized search over a demand
  family that keeps the demand with the worst measured competitive
  ratio against a *specific* path system.  Used to probe upper-bound
  experiments beyond the structured worst cases.

* :func:`spf_stress_permutation` — a path-system-free stressor for
  scenario grids: among ``num_trials`` random permutations it returns
  the one maximizing single-shortest-path congestion on the bare
  network.  Cheap (no LP), and a meaningful "adversarial" workload for
  *every* scheme because shortest-path hotspots are exactly where
  low-diversity candidate sets hurt.

Contracts
---------

Every randomized routine consumes randomness *only* through its ``rng``
argument (an integer seed, a ``numpy.random.Generator``, or ``None``;
see :mod:`repro.utils.rng`): two calls with identically seeded
generators return identical demands, which is what the scenario-sweep
determinism guarantee builds on.  All congestion figures are
capacity-normalized utilizations — load divided by edge capacity — and
"ratio" always means achieved utilization divided by the optimum for
the same demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.competitive import evaluate_path_system
from repro.core.path_system import PathSystem
from repro.demands.demand import Demand
from repro.exceptions import DemandError
from repro.graphs.lower_bound import GadgetLayout
from repro.graphs.network import Vertex
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class LowerBoundAdversaryResult:
    """Outcome of the Lemma 8.1 adversary.

    Attributes
    ----------
    demand:
        The adversarial permutation demand (between star leaves).
    congestion_lower_bound:
        Every routing supported on the attacked path system must incur at
        least this much congestion on ``demand``.
    optimal_congestion:
        The offline integral optimum for ``demand`` (always 1 when the
        matching is nonempty: route each pair through its own middle
        vertex — there are at least as many middle vertices as pairs).
    bottleneck_vertices:
        The set ``S'`` of middle vertices every candidate path of every
        demanded pair crosses.
    matching:
        The (source leaf, target leaf) matching realizing the demand.
    """

    demand: Demand
    congestion_lower_bound: float
    optimal_congestion: float
    bottleneck_vertices: FrozenSet[Vertex]
    matching: List[Tuple[Vertex, Vertex]]

    @property
    def guaranteed_ratio(self) -> float:
        if self.optimal_congestion <= 0:
            return float("inf")
        return self.congestion_lower_bound / self.optimal_congestion


def _middle_vertices_used(
    system: PathSystem,
    source: Vertex,
    target: Vertex,
    middle: FrozenSet[Vertex],
) -> FrozenSet[Vertex]:
    """The set of middle vertices touched by the candidate paths for (source, target)."""
    used = set()
    for path in system.paths(source, target):
        for vertex in path:
            if vertex in middle:
                used.add(vertex)
    return frozenset(used)


def lower_bound_adversary(
    system: PathSystem,
    layout: GadgetLayout,
    max_pairs: Optional[int] = None,
) -> LowerBoundAdversaryResult:
    """Run the Lemma 8.1 pigeonhole adversary against ``system`` on ``C(n, k)``.

    Parameters
    ----------
    system:
        A path system covering (at least) the left-leaf -> right-leaf
        pairs of the gadget.
    layout:
        The gadget layout (as returned by
        :func:`repro.graphs.lower_bound.lower_bound_gadget`).
    max_pairs:
        Optional cap on the matching size (defaults to ``k``, the number
        of middle vertices, as in the proof).

    The adversary groups pairs by the exact set of middle vertices their
    candidate paths use; the largest group with a common "bottleneck set"
    S' yields a leaf matching all of whose traffic must squeeze through
    S', giving congestion at least ``|matching| / |S'|`` for any routing
    on the candidate paths, while the optimum is 1.
    """
    middle = frozenset(layout.middle)
    if max_pairs is None:
        max_pairs = layout.k

    # f(s, t): the middle vertices used by the candidate paths of (s, t).
    used_sets: Dict[Vertex, Dict[Vertex, FrozenSet[Vertex]]] = {}
    for source in layout.left_leaves:
        per_target: Dict[Vertex, FrozenSet[Vertex]] = {}
        for target in layout.right_leaves:
            if not system.has_pair(source, target):
                continue
            used = _middle_vertices_used(system, source, target, middle)
            if used:
                per_target[target] = used
        if per_target:
            used_sets[source] = per_target

    if not used_sets:
        raise DemandError("path system covers no left-leaf -> right-leaf pair of the gadget")

    # First pigeonhole: per source, the most common bottleneck set f(s).
    best_set_per_source: Dict[Vertex, Tuple[FrozenSet[Vertex], List[Vertex]]] = {}
    for source, per_target in used_sets.items():
        groups: Dict[FrozenSet[Vertex], List[Vertex]] = {}
        for target, used in per_target.items():
            groups.setdefault(used, []).append(target)
        best_set = max(groups, key=lambda key: len(groups[key]))
        best_set_per_source[source] = (best_set, groups[best_set])

    # Second pigeonhole: the most common f(s) across sources.
    source_groups: Dict[FrozenSet[Vertex], List[Vertex]] = {}
    for source, (used, _) in best_set_per_source.items():
        source_groups.setdefault(used, []).append(source)
    bottleneck = max(source_groups, key=lambda key: len(source_groups[key]))
    sources = source_groups[bottleneck]

    # Greedy matching between the selected sources and their candidate targets.
    matching: List[Tuple[Vertex, Vertex]] = []
    taken_targets: set = set()
    for source in sources:
        if len(matching) >= max_pairs:
            break
        _, candidate_targets = best_set_per_source[source]
        for target in candidate_targets:
            if target not in taken_targets:
                taken_targets.add(target)
                matching.append((source, target))
                break

    if not matching:
        raise DemandError("adversary failed to build a nonempty matching")

    demand = Demand.from_pairs(matching)
    bound = len(matching) / max(len(bottleneck), 1)
    # The optimum is 1 whenever the matching is no larger than the middle layer.
    optimal = 1.0 if len(matching) <= layout.k else len(matching) / layout.k
    return LowerBoundAdversaryResult(
        demand=demand,
        congestion_lower_bound=bound,
        optimal_congestion=optimal,
        bottleneck_vertices=bottleneck,
        matching=matching,
    )


def random_search_adversary(
    system: PathSystem,
    demand_factory: Callable[[object], Demand],
    num_trials: int = 10,
    rng: RngLike = None,
) -> Tuple[Demand, float]:
    """Randomized adversarial search: keep the demand with the worst ratio.

    ``demand_factory(rng)`` must return a fresh random demand per call.
    Returns the worst demand found and its measured competitive ratio.
    """
    if num_trials < 1:
        raise DemandError("num_trials must be at least 1")
    generator = ensure_rng(rng)
    worst_demand: Optional[Demand] = None
    worst_ratio = -1.0
    for _ in range(num_trials):
        demand = demand_factory(generator)
        if demand.is_empty():
            continue
        report = evaluate_path_system(system, demand)
        if report.ratio > worst_ratio:
            worst_ratio = report.ratio
            worst_demand = demand
    if worst_demand is None:
        raise DemandError("demand factory produced only empty demands")
    return worst_demand, worst_ratio


def spf_stress_permutation(
    network,
    num_trials: int = 8,
    rng: RngLike = None,
) -> Demand:
    """The worst of ``num_trials`` random permutations under shortest-path routing.

    Each candidate permutation is scored by the congestion of routing
    every pair on one (hop-)shortest path; the highest-scoring demand is
    returned.  No LP is solved and no candidate path system is needed,
    so this is usable as a declarative demand *generator* inside
    scenario grids.  Deterministic given ``rng`` (ties break toward the
    earliest trial).
    """
    if num_trials < 1:
        raise DemandError("num_trials must be at least 1")
    from repro.demands.generators import random_permutation_demand

    generator = ensure_rng(rng)
    worst_demand: Optional[Demand] = None
    worst_congestion = -1.0
    for _ in range(num_trials):
        demand = random_permutation_demand(network, rng=generator)
        if demand.is_empty():
            continue
        weighted = [
            (network.shortest_path(source, target), amount)
            for (source, target), amount in demand.items()
        ]
        congestion = network.congestion(weighted)
        if congestion > worst_congestion:
            worst_congestion = congestion
            worst_demand = demand
    if worst_demand is None:
        raise DemandError("all sampled permutations were empty")
    return worst_demand


__all__ = [
    "LowerBoundAdversaryResult",
    "lower_bound_adversary",
    "random_search_adversary",
    "spf_stress_permutation",
]
