"""Traffic-matrix time series for the traffic-engineering experiments.

The SMORE evaluation replays sequences of traffic matrices against a set
of pre-installed candidate paths, re-optimising only the sending rates at
each snapshot.  Real ISP matrices are proprietary, so we synthesise
series with the qualitative features that matter for the comparison:

* a gravity-model base matrix (heavy-tailed per-node volumes),
* smooth diurnal modulation of the total volume,
* per-snapshot multiplicative jitter,
* occasional "surge" events concentrating extra volume on a few pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.demands.demand import Demand
from repro.demands.generators import gravity_demand
from repro.exceptions import DemandError
from repro.graphs.network import Network
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class TrafficMatrixSeries:
    """An ordered sequence of demand snapshots."""

    snapshots: List[Demand] = field(default_factory=list)
    period_minutes: float = 15.0

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[Demand]:
        return iter(self.snapshots)

    def __getitem__(self, index: int) -> Demand:
        return self.snapshots[index]

    def total_volumes(self) -> List[float]:
        """Total demand volume of each snapshot."""
        return [snapshot.size() for snapshot in self.snapshots]

    def peak(self) -> Demand:
        """The snapshot with the largest total volume."""
        if not self.snapshots:
            raise DemandError("empty traffic matrix series")
        return max(self.snapshots, key=lambda snapshot: snapshot.size())

    def as_matrix(self, pair_index, size=None, missing: str = "error"):
        """Dense (snapshot × pair) demand matrix over an external indexing.

        One row per snapshot, columns following ``pair_index`` — the
        batch input of the compiled evaluation backend
        (:mod:`repro.linalg`): edge loads for the whole series are then
        a single matmul against the compiled pair × edge operator.

        An empty series raises :class:`~repro.exceptions.DemandError`
        (same contract as :meth:`peak`) rather than surfacing a bare
        numpy failure from a zero-row reduction downstream.
        """
        if not self.snapshots:
            raise DemandError("empty traffic matrix series has no matrix form")
        return Demand.stack(self.snapshots, pair_index, size=size, missing=missing)


def diurnal_gravity_series(
    network: Network,
    num_snapshots: int = 24,
    base_total: float = 10.0,
    diurnal_amplitude: float = 0.5,
    jitter: float = 0.1,
    surge_probability: float = 0.1,
    surge_factor: float = 3.0,
    rng: RngLike = None,
    weights: Optional[dict] = None,
) -> TrafficMatrixSeries:
    """Generate a diurnal gravity-model traffic-matrix series.

    Parameters
    ----------
    network:
        The topology whose vertices exchange traffic.
    num_snapshots:
        Number of snapshots (e.g. 96 for a day at 15-minute granularity).
    base_total:
        Mean total volume per snapshot.
    diurnal_amplitude:
        Relative amplitude of the sinusoidal day/night modulation.
    jitter:
        Relative standard deviation of per-pair multiplicative noise.
    surge_probability / surge_factor:
        Probability per snapshot of a surge event that multiplies a few
        random pairs by ``surge_factor``.
    """
    if num_snapshots < 1:
        raise DemandError("need at least one snapshot")
    if not (0 <= diurnal_amplitude < 1):
        raise DemandError("diurnal amplitude must be in [0, 1)")
    generator = ensure_rng(rng)
    base = gravity_demand(network, total=base_total, rng=generator, weights=weights)
    snapshots: List[Demand] = []
    pairs = base.pairs()
    for step in range(num_snapshots):
        phase = 2.0 * math.pi * step / max(num_snapshots, 1)
        scale = 1.0 + diurnal_amplitude * math.sin(phase)
        values = {}
        for pair in pairs:
            noise = max(0.0, 1.0 + jitter * float(generator.normal()))
            values[pair] = base.value(*pair) * scale * noise
        if pairs and generator.random() < surge_probability:
            surge_count = max(1, len(pairs) // 20)
            surge_indices = generator.choice(len(pairs), size=surge_count, replace=False)
            for index in surge_indices:
                pair = pairs[int(index)]
                values[pair] = values.get(pair, 0.0) * surge_factor
        snapshots.append(Demand(values, network=network))
    return TrafficMatrixSeries(snapshots=snapshots)


def constant_series(demand: Demand, num_snapshots: int) -> TrafficMatrixSeries:
    """A series repeating the same demand (useful for calibration tests)."""
    if num_snapshots < 1:
        raise DemandError("need at least one snapshot")
    return TrafficMatrixSeries(snapshots=[demand] * num_snapshots)


def permutation_series(
    network: Network,
    num_snapshots: int,
    rng: RngLike = None,
) -> TrafficMatrixSeries:
    """Independent uniformly random permutation demands, one per snapshot.

    The scenario-grid workload for the paper's worst-case demand class:
    the candidate paths are installed once, while the permutation changes
    every snapshot.  Deterministic given ``rng``.
    """
    if num_snapshots < 1:
        raise DemandError("need at least one snapshot")
    from repro.demands.generators import random_permutation_demand

    generator = ensure_rng(rng)
    snapshots = [random_permutation_demand(network, rng=generator) for _ in range(num_snapshots)]
    return TrafficMatrixSeries(snapshots=snapshots)


def gravity_series(
    network: Network,
    num_snapshots: int,
    total: float = 10.0,
    rng: RngLike = None,
) -> TrafficMatrixSeries:
    """Independent gravity-model draws (fresh vertex weights per snapshot).

    Unlike :func:`diurnal_gravity_series` — which perturbs one base
    matrix — every snapshot here resamples the heavy-tailed per-vertex
    weights, modelling day-scale rather than minute-scale drift.
    """
    if num_snapshots < 1:
        raise DemandError("need at least one snapshot")
    generator = ensure_rng(rng)
    snapshots = [
        gravity_demand(network, total=total, rng=generator) for _ in range(num_snapshots)
    ]
    return TrafficMatrixSeries(snapshots=snapshots)


__all__ = [
    "TrafficMatrixSeries",
    "diurnal_gravity_series",
    "constant_series",
    "permutation_series",
    "gravity_series",
]
