"""``repro bench scale`` — nodes-vs-seconds / nodes-vs-peak-MB curves.

For a ladder of synthetic ISP networks (:func:`repro.synth.generators.isp`)
this target measures the full end-to-end pipeline per compiled backend —
generate → install routes → compile → batched evaluate — and records,
per ladder point, wall time and tracemalloc peak memory for the
memory-bounded *tiled* evaluation path next to the untiled reference
(run only where the untiled operator is small enough to materialize).

The artifact extends the common ``repro-bench/v1`` schema with:

* ``curves`` — per-backend lists of ladder points (``nodes``, ``edges``,
  ``pairs``, ``generate_seconds``, ``install_seconds``,
  ``compile_seconds``, ``evaluate_seconds``, ``mem_peak_mb``,
  ``within_budget``, and — where the untiled reference ran —
  ``untiled_seconds``, ``untiled_mem_peak_mb``, ``max_abs_difference``);
* ``memory_budget_mb`` — the tiling budget every tiled evaluation ran
  under (``within_budget`` gates its peak against it);
* the usual baseline-first ``backends`` block (untiled vs tiled at the
  largest point where both ran) with ``mem_peak_kb`` fields.

CI regenerates the smoke scale on both dependency legs and gates the
committed full-scale ``BENCH_scale.json`` (≥ 1k-node point evaluated
under budget, tiled-vs-untiled agreement ≤ 1e-9).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.graphs.network import Network
from repro.linalg._matrix import HAVE_SCIPY
from repro.linalg.bench import environment_info, register_bench
from repro.linalg.evaluator import build_evaluator
from repro.synth.generators import isp
from repro.utils.rng import ensure_rng
from repro.utils.timing import PeakMemory, Stopwatch, timing_entry

#: Tolerance the tiled path must meet against the untiled reference
#: (float summation order is the only difference).
EQUIVALENCE_TOL = 1e-9

#: Every tiled evaluation in this bench runs under this working-set
#: budget; ``within_budget`` compares the measured peak against it.
MEMORY_BUDGET_MB = 64.0

#: Per-scale ladder: PoP counts (11 vertices per PoP with the default
#: tier widths), demand-batch size, targets sampled per source, and the
#: largest node count at which the *dense* untiled reference operator is
#: still reasonable to materialize for the comparison leg.  ``full``
#: tops out at 2002 vertices — the committed ≥ 1k-node baseline.
_SCALE_CONFIG: Dict[str, Dict[str, Any]] = {
    "smoke": {"pops": [4, 8], "num_demands": 4, "targets": 8, "untiled_max_dense": 10**6},
    "small": {"pops": [8, 16, 32], "num_demands": 8, "targets": 16, "untiled_max_dense": 10**6},
    "full": {"pops": [23, 45, 91, 182], "num_demands": 8, "targets": 32, "untiled_max_dense": 1100},
}


def _sample_pairs(
    network: Network, rng, targets_per_source: int
) -> List[Tuple[Any, Any]]:
    """A demanded-pair set that grows linearly with the node count:
    about ``n / 16`` sources, each sending to ``targets_per_source``
    distinct other vertices."""
    vertices = list(network.vertices)
    n = len(vertices)
    num_sources = max(4, min(n, n // 16))
    sources = rng.choice(n, size=num_sources, replace=False)
    pairs: List[Tuple[Any, Any]] = []
    for source_index in sources:
        others = rng.choice(n - 1, size=min(targets_per_source, n - 1), replace=False)
        for offset in others:
            target_index = int(offset) + (int(offset) >= int(source_index))
            pairs.append((vertices[int(source_index)], vertices[target_index]))
    return sorted(set(pairs))


def _spf_routing(network: Network, pairs: Sequence[Tuple[Any, Any]]) -> Routing:
    """Single shortest path per demanded pair, via one BFS tree per
    distinct source — the demanded-pairs-only install that keeps the
    offline phase linear instead of all-pairs quadratic."""
    import networkx as nx

    by_source: Dict[Any, List[Any]] = {}
    for source, target in pairs:
        by_source.setdefault(source, []).append(target)
    mapping = {}
    for source, targets in by_source.items():
        paths = nx.single_source_shortest_path(network.graph, source)
        for target in targets:
            mapping[(source, target)] = paths[target]
    return Routing.single_path(network, mapping)


def _demand_batch(
    pairs: Sequence[Tuple[Any, Any]], num_demands: int, rng
) -> List[Demand]:
    """``num_demands`` gravity-ish snapshots over one fixed pair set."""
    demands = []
    for _ in range(num_demands):
        amounts = rng.random(len(pairs)) + 0.05
        demands.append(Demand(dict(zip(pairs, amounts))))
    return demands


def _backends() -> List[str]:
    return ["sparse", "dense"] if HAVE_SCIPY else ["dense"]


def bench_scale(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Scale-frontier curves: tiled vs untiled evaluation per backend."""
    config = _SCALE_CONFIG[scale]
    num_demands = int(config["num_demands"])

    curves: Dict[str, List[Dict[str, Any]]] = {name: [] for name in _backends()}
    summary: Dict[str, Dict[str, Any]] = {}
    max_abs_difference = 0.0
    largest: Optional[Network] = None
    pairs_max = 0

    for point_index, pops in enumerate(config["pops"]):
        rng = ensure_rng(
            np.random.default_rng(np.random.SeedSequence([int(seed), 2, int(pops)]))
        )
        with Stopwatch() as generate_watch:
            network = isp(pops, seed=seed * 1000 + pops)
        largest = network
        sample_rng = ensure_rng(
            np.random.default_rng(np.random.SeedSequence([int(seed), 3, int(pops)]))
        )
        pairs = _sample_pairs(network, sample_rng, int(config["targets"]))
        pairs_max = max(pairs_max, len(pairs))
        with Stopwatch() as install_watch:
            routing = _spf_routing(network, pairs)
        demands = _demand_batch(pairs, num_demands, rng)
        is_last = point_index == len(config["pops"]) - 1

        for backend in _backends():
            # Peak memory spans compile + evaluate: the untiled leg's
            # dominant allocation is the operator materialized at
            # compile time, which an evaluate-only window would miss.
            with PeakMemory() as tiled_mem:
                with Stopwatch() as compile_watch:
                    tiled = build_evaluator(
                        routing, backend=backend, memory_budget_mb=MEMORY_BUDGET_MB
                    )
                with Stopwatch() as tiled_watch:
                    tiled_congestions = tiled.congestions(demands)
            mem_peak_mb = tiled_mem.peak_kb / 1024.0
            point: Dict[str, Any] = {
                "nodes": network.num_vertices,
                "edges": network.num_edges,
                "pairs": len(pairs),
                "generate_seconds": generate_watch.elapsed,
                "install_seconds": install_watch.elapsed,
                "compile_seconds": compile_watch.elapsed,
                "evaluate_seconds": tiled_watch.elapsed,
                "mem_peak_mb": mem_peak_mb,
                "within_budget": bool(mem_peak_mb <= MEMORY_BUDGET_MB),
            }

            # The untiled reference materializes the full pair × edge
            # operator — always fine in CSR, only at the smaller ladder
            # points in the dense fallback.
            run_untiled = backend == "sparse" or network.num_vertices <= int(
                config["untiled_max_dense"]
            )
            if run_untiled:
                with PeakMemory() as untiled_mem:
                    untiled = build_evaluator(routing, backend=backend)
                    with Stopwatch() as untiled_watch:
                        untiled_congestions = untiled.congestions(demands)
                difference = float(
                    np.max(np.abs(tiled_congestions - untiled_congestions), initial=0.0)
                )
                point["untiled_seconds"] = untiled_watch.elapsed
                point["untiled_mem_peak_mb"] = untiled_mem.peak_kb / 1024.0
                point["max_abs_difference"] = difference
                max_abs_difference = max(max_abs_difference, difference)
                if is_last or backend not in summary:
                    summary[backend] = {
                        "untiled": timing_entry(
                            untiled_watch.elapsed,
                            count=num_demands,
                            rate_key="demands_per_sec",
                            mem_peak_kb=untiled_mem.peak_kb,
                        ),
                        "tiled": timing_entry(
                            tiled_watch.elapsed,
                            count=num_demands,
                            rate_key="demands_per_sec",
                            mem_peak_kb=tiled_mem.peak_kb,
                            compile_seconds=compile_watch.elapsed,
                        ),
                        "nodes": network.num_vertices,
                    }
            curves[backend].append(point)

    # Baseline-first backends block from the preferred backend's largest
    # point where both legs ran (sparse when available, dense otherwise).
    preferred = summary.get("sparse") or summary["dense"]
    backends_block = {
        "untiled": {"backend": "untiled", **preferred["untiled"]},
        "tiled": {"backend": "tiled", **preferred["tiled"]},
    }

    assert largest is not None
    return {
        "schema": "repro-bench/v1",
        "name": "scale",
        "scale": scale,
        "seed": seed,
        "network": {
            "name": largest.name,
            "n": largest.num_vertices,
            "m": largest.num_edges,
        },
        "workload": {
            "num_networks": len(config["pops"]),
            "node_counts": [point["nodes"] for point in curves[_backends()[0]]],
            "num_demands": num_demands,
            "pairs_max": pairs_max,
        },
        "memory_budget_mb": MEMORY_BUDGET_MB,
        "within_budget": bool(
            all(point["within_budget"] for points in curves.values() for point in points)
        ),
        "curves": curves,
        "backends": backends_block,
        "max_abs_difference": max_abs_difference,
        "environment": environment_info(),
    }


register_bench(
    "scale",
    bench_scale,
    "scale frontier: nodes-vs-seconds/peak-MB curves, tiled vs untiled",
)

__all__ = ["EQUIVALENCE_TOL", "MEMORY_BUDGET_MB", "bench_scale"]
