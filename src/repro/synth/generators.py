"""Seeded ISP-like synthetic topologies at the 1k–10k-node scale.

The evaluation substrates of the earlier layers top out around a few
hundred vertices: :func:`repro.graphs.generators.waxman_isp` samples
every vertex pair in a Python double loop (quadratic in ``n`` with
per-pair interpreter overhead), and the bundled catalog networks are
real but small.  This module generates *large* ISP-shaped networks with
numpy-vectorized wiring:

* :func:`backbone` — a flat Waxman random geometric graph whose edge
  probability is calibrated to a target average degree (the classic
  Waxman ``alpha`` would wire millions of edges at 10k nodes), computed
  in fixed-size row blocks so the distance kernel never materializes an
  ``n × n`` matrix;
* :func:`isp` — a three-tier hierarchy: a Waxman-wired backbone core of
  ``pops`` PoP routers (plus a geographic ring, so the core is
  2-connected like every real ISP), dual-homed aggregation routers per
  PoP, and access routers dual-homed onto the aggregation tier.

Capacities are heavy-tailed Pareto draws scaled per tier (fat scarce
backbone trunks, thin plentiful access links) — the degree/capacity mix
the SMORE evaluation attributes to proprietary ISP topologies.

Determinism: all randomness flows through one ``numpy`` generator; pass
``seed=`` to derive it from ``SeedSequence([seed, ...])`` so the same
call produces bit-identical networks in any process, or ``rng=`` to
consume from a caller-managed stream (the scenario runner's per-topology
seeding).  Invalid parameters raise :class:`~repro.exceptions.GraphError`.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import GraphError
from repro.graphs.network import Network
from repro.obs import trace_span
from repro.utils.rng import RngLike, ensure_rng

#: Diameter of the unit square — the Waxman distance normalizer.
_MAX_DIST = math.sqrt(2.0)

#: Row-block width for the chunked Waxman passes.  Fixed (never derived
#: from the environment) so the draw order — and therefore the sampled
#: graph — is bit-identical everywhere.
_WAXMAN_BLOCK = 256

#: Per-tier capacity scales (backbone trunks, aggregation uplinks,
#: access links) multiplying the Pareto draw.
_TIER_CAPACITY = {"backbone": 100.0, "aggregation": 25.0, "access": 5.0}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise GraphError(message)


def validate_backbone_params(
    n: int,
    avg_degree: float = 4.0,
    beta: float = 0.25,
    capacity_exponent: float = 1.5,
) -> None:
    """Raise :class:`GraphError` unless the backbone parameters are sane."""
    _require(int(n) >= 3, f"backbone needs n >= 3, got {n}")
    _require(avg_degree > 0, f"backbone needs avg_degree > 0, got {avg_degree}")
    _require(beta > 0, f"backbone needs beta > 0, got {beta}")
    _require(
        capacity_exponent > 0,
        f"backbone needs a positive capacity exponent, got {capacity_exponent}",
    )


def validate_isp_params(
    pops: int,
    agg_per_pop: int = 2,
    access_per_pop: int = 8,
    avg_pop_degree: float = 3.0,
    beta: float = 0.25,
    capacity_exponent: float = 1.3,
) -> None:
    """Raise :class:`GraphError` unless the ISP parameters are sane."""
    _require(int(pops) >= 1, f"isp needs pops >= 1, got {pops}")
    _require(int(agg_per_pop) >= 1, f"isp needs agg_per_pop >= 1, got {agg_per_pop}")
    _require(
        int(access_per_pop) >= 0,
        f"isp needs access_per_pop >= 0, got {access_per_pop}",
    )
    _require(avg_pop_degree > 0, f"isp needs avg_pop_degree > 0, got {avg_pop_degree}")
    _require(beta > 0, f"isp needs beta > 0, got {beta}")
    _require(
        capacity_exponent > 0,
        f"isp needs a positive capacity exponent, got {capacity_exponent}",
    )


def isp_node_count(pops: int, agg_per_pop: int = 2, access_per_pop: int = 8) -> int:
    """Total vertices of ``isp(pops, ...)``: one backbone router per PoP
    plus its aggregation and access routers."""
    return int(pops) * (1 + int(agg_per_pop) + int(access_per_pop))


def _derive_rng(seed: Optional[int], rng: RngLike, *stream: int):
    """``seed`` wins over ``rng``: an explicit seed pins the stream so
    ``isp(pops=8, seed=3)`` is one network, whoever builds it."""
    if seed is not None:
        return np.random.default_rng(np.random.SeedSequence([int(seed), *stream]))
    return ensure_rng(rng)


def _waxman_pairs(
    positions: np.ndarray,
    avg_degree: float,
    beta: float,
    rng,
) -> Tuple[np.ndarray, np.ndarray]:
    """Waxman-style geographic wiring calibrated to an average degree.

    Two chunked passes over the upper-triangular distance kernel
    ``exp(-dist / (beta * L))``: the first sums the kernel mass (no
    randomness) to solve for the ``alpha`` that makes the expected mean
    degree — including the degree-2 geographic ring added alongside —
    land near ``avg_degree``; the second draws the edges.  Memory per
    pass is ``O(block * n)``, never ``O(n^2)``.
    """
    n = len(positions)
    scale = beta * _MAX_DIST

    def _kernel_rows(start: int) -> Tuple[np.ndarray, np.ndarray]:
        chunk = positions[start : start + _WAXMAN_BLOCK]
        deltas = chunk[:, None, :] - positions[None, :, :]
        kernel = np.exp(-np.sqrt((deltas * deltas).sum(axis=-1)) / scale)
        # Strict upper triangle in global indices: column > row.
        rows = np.arange(start, start + len(chunk))
        kernel[np.arange(n)[None, :] <= rows[:, None]] = 0.0
        return rows, kernel

    kernel_total = 0.0
    for start in range(0, n, _WAXMAN_BLOCK):
        kernel_total += float(_kernel_rows(start)[1].sum())
    # The geographic ring contributes degree 2 on its own; calibrate the
    # random stage to the remainder so the *total* mean degree lands
    # near avg_degree.
    target_edges = max(0.0, (avg_degree - 2.0) * n / 2.0)
    alpha = min(1.0, target_edges / kernel_total) if kernel_total > 0 else 0.0

    sources = []
    targets = []
    for start in range(0, n, _WAXMAN_BLOCK):
        rows, kernel = _kernel_rows(start)
        draws = rng.random(kernel.shape)
        hit_row, hit_col = np.nonzero(draws < alpha * kernel)
        sources.append(rows[hit_row])
        targets.append(hit_col)
    if not sources:
        empty = np.asarray([], dtype=np.int64)
        return empty, empty
    return np.concatenate(sources), np.concatenate(targets)


def _ring_pairs(positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """A ring over the angular ordering around the square's center —
    guarantees connectivity and minimum degree 2 (matching the
    geographic-ring idiom of :func:`repro.graphs.generators.waxman_isp`)."""
    n = len(positions)
    order = np.argsort(
        np.arctan2(positions[:, 1] - 0.5, positions[:, 0] - 0.5), kind="stable"
    )
    return order, np.roll(order, -1)


def _dedupe_edges(
    sources: np.ndarray, targets: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonicalize (u < v), drop self-loops and duplicates; sorted order."""
    u = np.minimum(sources, targets)
    v = np.maximum(sources, targets)
    keep = u != v
    u, v = u[keep], v[keep]
    unique = np.unique(u.astype(np.int64) * n + v.astype(np.int64))
    return unique // n, unique % n


def _pareto_capacities(rng, size: int, exponent: float, scale: float) -> np.ndarray:
    """Heavy-tailed link capacities: scaled Pareto(exponent) + floor."""
    return scale * (1.0 + rng.pareto(exponent, size=size))


def backbone(
    n: int,
    avg_degree: float = 4.0,
    beta: float = 0.25,
    capacity_exponent: float = 1.5,
    rng: RngLike = None,
    seed: Optional[int] = None,
) -> Network:
    """A flat ``n``-router Waxman backbone with Pareto capacities.

    ``avg_degree`` calibrates the Waxman acceptance probability so the
    expected mean degree stays put as ``n`` grows (the fixed-``alpha``
    textbook form densifies quadratically).  A geographic ring keeps the
    graph connected and 2-regular at minimum.
    """
    n = int(n)
    validate_backbone_params(
        n, avg_degree=avg_degree, beta=beta, capacity_exponent=capacity_exponent
    )
    generator = _derive_rng(seed, rng, 0, n)
    with trace_span("synth.generate", kind="backbone", nodes=n) as span:
        positions = generator.random((n, 2))
        wax_u, wax_v = _waxman_pairs(positions, avg_degree, beta, generator)
        ring_u, ring_v = _ring_pairs(positions)
        u, v = _dedupe_edges(
            np.concatenate([wax_u, ring_u]), np.concatenate([wax_v, ring_v]), n
        )
        capacities = _pareto_capacities(
            generator, len(u), capacity_exponent, _TIER_CAPACITY["backbone"]
        )
        span.add("edges", len(u))
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(
            (int(a), int(b), {"capacity": float(c)}) for a, b, c in zip(u, v, capacities)
        )
        return Network(graph, name=f"backbone-{n}")


def isp(
    pops: int,
    agg_per_pop: int = 2,
    access_per_pop: int = 8,
    avg_pop_degree: float = 3.0,
    beta: float = 0.25,
    capacity_exponent: float = 1.3,
    rng: RngLike = None,
    seed: Optional[int] = None,
) -> Network:
    """A three-tier PoP/backbone/access ISP topology.

    Structure (``isp_node_count(pops, agg_per_pop, access_per_pop)``
    vertices total):

    * one backbone router per PoP, Waxman-wired (``avg_pop_degree``) plus
      a geographic ring — the 2-connected long-haul core;
    * ``agg_per_pop`` aggregation routers per PoP, each dual-homed onto
      its own PoP's backbone router and the ring-adjacent PoP's;
    * ``access_per_pop`` access routers per PoP, each dual-homed onto
      two aggregation routers of its PoP (one when ``agg_per_pop == 1``).

    Vertex labels are consecutive integers: backbone routers first
    (``0 .. pops-1``), then the aggregation tier, then access.
    """
    pops = int(pops)
    agg_per_pop = int(agg_per_pop)
    access_per_pop = int(access_per_pop)
    validate_isp_params(
        pops,
        agg_per_pop=agg_per_pop,
        access_per_pop=access_per_pop,
        avg_pop_degree=avg_pop_degree,
        beta=beta,
        capacity_exponent=capacity_exponent,
    )
    n = isp_node_count(pops, agg_per_pop, access_per_pop)
    generator = _derive_rng(seed, rng, 1, pops, agg_per_pop, access_per_pop)
    with trace_span("synth.generate", kind="isp", nodes=n, pops=pops) as span:
        positions = generator.random((pops, 2))
        tiers = []  # (sources, targets, tier-name) per wiring stage

        if pops >= 2:
            wax_u, wax_v = _waxman_pairs(positions, avg_pop_degree, beta, generator)
            ring_u, ring_v = _ring_pairs(positions)
            core_u, core_v = _dedupe_edges(
                np.concatenate([wax_u, ring_u]),
                np.concatenate([wax_v, ring_v]),
                pops,
            )
            tiers.append((core_u, core_v, "backbone"))

        pop_ids = np.arange(pops)
        # Ring-order successor of each PoP: the second home of its
        # aggregation routers (falls back to the only PoP when pops == 1).
        order, successor = _ring_pairs(positions)
        next_pop = np.empty(pops, dtype=np.int64)
        next_pop[order] = successor
        agg_base = pops
        agg_ids = agg_base + np.arange(pops * agg_per_pop)
        agg_pop = np.repeat(pop_ids, agg_per_pop)
        tiers.append((agg_ids, agg_pop, "aggregation"))
        if pops >= 2:
            tiers.append((agg_ids, next_pop[agg_pop], "aggregation"))

        if access_per_pop:
            access_base = pops + pops * agg_per_pop
            access_ids = access_base + np.arange(pops * access_per_pop)
            access_slot = np.tile(np.arange(access_per_pop), pops)
            access_pop = np.repeat(pop_ids, access_per_pop)
            # Round-robin over the PoP's aggregation routers; the second
            # home is the next one over (distinct iff agg_per_pop > 1).
            first_agg = agg_base + access_pop * agg_per_pop + access_slot % agg_per_pop
            tiers.append((access_ids, first_agg, "access"))
            if agg_per_pop > 1:
                second_agg = (
                    agg_base + access_pop * agg_per_pop + (access_slot + 1) % agg_per_pop
                )
                tiers.append((access_ids, second_agg, "access"))

        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        num_edges = 0
        for sources, targets, tier in tiers:
            capacities = _pareto_capacities(
                generator, len(sources), capacity_exponent, _TIER_CAPACITY[tier]
            )
            graph.add_edges_from(
                (int(a), int(b), {"capacity": float(c), "tier": tier})
                for a, b, c in zip(sources, targets, capacities)
            )
            num_edges = graph.number_of_edges()
        span.add("edges", num_edges)
        per_pop = 1 + agg_per_pop + access_per_pop
        return Network(graph, name=f"isp-{pops}x{per_pop}")


__all__ = [
    "backbone",
    "isp",
    "isp_node_count",
    "validate_backbone_params",
    "validate_isp_params",
]
