"""Scenario-axis registration for the scale layer.

Imported lazily by :mod:`repro.scenarios.spec` (see
``_EXTENSION_AXIS_MODULES``); importing it registers the synthetic
large-scale topology kinds:

* ``isp`` — three-tier PoP/backbone/access hierarchy, e.g.
  ``isp(pops=16)`` or ``isp(16, access_per_pop=4, seed=3)``.  A bare
  positional integer is the PoP count;
* ``backbone`` — flat calibrated-Waxman backbone, e.g.
  ``backbone(2000)`` (the positional integer is the node count).

Both kinds consume the per-topology generator the runner derives from
the suite seed, so sweep artifacts stay bit-identical for any worker
count; an explicit ``seed=`` parameter pins the network independently
of the suite seed instead.  Parameter validation runs at *spec-parse*
time through the generators' own validators — a non-positive PoP count
or capacity exponent raises :class:`~repro.exceptions.GraphError`
before any runner or worker starts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.graphs.network import Network
from repro.scenarios.spec import ScenarioError, register_topology_kind
from repro.synth.generators import (
    backbone,
    isp,
    validate_backbone_params,
    validate_isp_params,
)

_ISP_PARAMS = {
    "pops",
    "agg_per_pop",
    "access_per_pop",
    "avg_pop_degree",
    "beta",
    "capacity_exponent",
    "seed",
}
_BACKBONE_PARAMS = {"avg_degree", "beta", "capacity_exponent", "seed"}


def _reject_unknown(kind: str, params: Dict[str, Any], known: set) -> None:
    extra = sorted(set(params) - known)
    if extra:
        raise ScenarioError(
            f"unknown {kind} topology parameters {extra}; accepted: {sorted(known)}"
        )


def _isp_arguments(size: Optional[int], params: Dict[str, Any]) -> Dict[str, Any]:
    arguments = dict(params)
    if size is not None:
        if "pops" in arguments:
            raise ScenarioError(
                "isp topology got both a positional size and pops=; use one"
            )
        arguments["pops"] = size
    if "pops" not in arguments:
        raise ScenarioError("isp topology needs a PoP count, e.g. isp(pops=16)")
    return arguments


def _validate_isp(size: Optional[int], params: Dict[str, Any]) -> None:
    _reject_unknown("isp", params, _ISP_PARAMS)
    arguments = _isp_arguments(size, params)
    arguments.pop("seed", None)
    validate_isp_params(**arguments)


def _build_isp(size: Optional[int], params: Dict[str, Any], rng) -> Network:
    return isp(rng=rng, **_isp_arguments(size, params))


def _validate_backbone(size: Optional[int], params: Dict[str, Any]) -> None:
    _reject_unknown("backbone", params, _BACKBONE_PARAMS)
    if size is None:
        raise ScenarioError("backbone topology needs a node count, e.g. backbone(2000)")
    arguments = dict(params)
    arguments.pop("seed", None)
    validate_backbone_params(size, **arguments)


def _build_backbone(size: Optional[int], params: Dict[str, Any], rng) -> Network:
    return backbone(size, rng=rng, **params)


# overwrite=True keeps registration idempotent: if this module's import
# fails partway once, the spec layer retries it on the next axis use.
register_topology_kind(
    "isp",
    _build_isp,
    "synthetic 3-tier PoP/backbone/access ISP: isp(pops=16)",
    validate=_validate_isp,
    overwrite=True,
)
register_topology_kind(
    "backbone",
    _build_backbone,
    "synthetic calibrated-Waxman backbone: backbone(2000)",
    validate=_validate_backbone,
    overwrite=True,
)
