"""Scale-frontier synthetic topologies (the ``repro.synth`` layer).

Seeded ISP-like generators at the 1k–10k-node scale — the substrates
for memory-bounded tiled evaluation (:mod:`repro.linalg.tiled`):

* :func:`~repro.synth.generators.isp` — three-tier PoP/backbone/access
  hierarchy with heavy-tailed Pareto capacities;
* :func:`~repro.synth.generators.backbone` — flat calibrated-Waxman
  geographic backbone.

Registered as scenario topology kinds (``isp(pops=16)``,
``backbone(2000)``) via :mod:`repro.synth.scenario_axes` and as the
``scale`` bench target via :mod:`repro.synth.bench`; both hook in
lazily through the spec/bench registries, so importing this package
never pulls the scenario or bench layers eagerly.
"""

from repro.synth.generators import (
    backbone,
    isp,
    isp_node_count,
    validate_backbone_params,
    validate_isp_params,
)

__all__ = [
    "backbone",
    "isp",
    "isp_node_count",
    "validate_backbone_params",
    "validate_isp_params",
]
