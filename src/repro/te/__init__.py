"""Traffic-engineering simulation (the SMORE consequence of Section 1.1)."""

from repro.te.simulation import TrafficEngineeringSimulator, SchemeResult, SimulationReport
from repro.te.metrics import max_link_utilization, utilization_percentiles, throughput_at_capacity
from repro.te.failures import (
    FailureReport,
    FailureSweepSummary,
    evaluate_failure,
    failure_coverage,
    failure_sweep,
    surviving_system,
)

__all__ = [
    "TrafficEngineeringSimulator",
    "SchemeResult",
    "SimulationReport",
    "max_link_utilization",
    "utilization_percentiles",
    "throughput_at_capacity",
    "FailureReport",
    "FailureSweepSummary",
    "evaluate_failure",
    "failure_coverage",
    "failure_sweep",
    "surviving_system",
]
