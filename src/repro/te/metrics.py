"""Traffic-engineering metrics.

The SMORE evaluation reports maximum link utilization (equivalently, the
congestion of the routed traffic matrix), utilization percentiles, and
the admissible throughput scale (how much the matrix can be scaled before
some link saturates).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.graphs.network import Vertex


def max_link_utilization(routing: Routing, demand: Demand) -> float:
    """Maximum link utilization = congestion of the routed demand."""
    return routing.congestion(demand)


def utilization_percentiles(
    routing: Routing,
    demand: Demand,
    percentiles: Sequence[float] = (50.0, 90.0, 99.0, 100.0),
) -> Dict[float, float]:
    """Utilization percentiles across links (links with zero load included)."""
    congestions = routing.edge_congestions(demand)
    values = [congestions.get(edge, 0.0) for edge in routing.network.edges]
    if not values:
        return {p: 0.0 for p in percentiles}
    array = np.asarray(values, dtype=float)
    return {p: float(np.percentile(array, p)) for p in percentiles}


def throughput_at_capacity(routing: Routing, demand: Demand) -> float:
    """The largest factor by which ``demand`` can be scaled before saturation.

    With max utilization ``u`` under the given (fractional, linear)
    routing, the demand can be scaled by ``1 / u`` before some link
    reaches 100% utilization.  Returns ``inf`` for zero utilization.
    """
    utilization = max_link_utilization(routing, demand)
    if utilization <= 0:
        return float("inf")
    return 1.0 / utilization


__all__ = ["max_link_utilization", "utilization_percentiles", "throughput_at_capacity"]
