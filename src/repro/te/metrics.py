"""Traffic-engineering metrics.

The SMORE evaluation reports maximum link utilization (equivalently, the
congestion of the routed traffic matrix), utilization percentiles, and
the admissible throughput scale (how much the matrix can be scaled before
some link saturates).

All functions route through the routing's shared evaluation backend
(:meth:`Routing.evaluator`), so computing several metrics for the same
(routing, demand) pair walks the paths once.  ``backend`` selects the
evaluator (``"dict"`` reference loops, ``"sparse"``/``"dense"`` compiled
linear algebra, ``"auto"``); functions that reduce an edge-load array
also accept the precomputed array/mapping directly instead of
recomputing it from the routing.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.graphs.network import Vertex

Edge = Tuple[Vertex, Vertex]


def max_link_utilization(routing: Routing, demand: Demand, backend: str = "dict") -> float:
    """Maximum link utilization = congestion of the routed demand."""
    return routing.evaluator(backend).congestion(demand)


def _utilization_array(
    routing: Routing,
    edge_congestions: Union[Mapping[Edge, float], np.ndarray, Sequence[float]],
) -> np.ndarray:
    """Per-edge utilizations over *all* network edges (zero-load included)."""
    if isinstance(edge_congestions, Mapping):
        return np.asarray(
            [edge_congestions.get(edge, 0.0) for edge in routing.network.edges], dtype=float
        )
    array = np.asarray(edge_congestions, dtype=float)
    if array.shape != (routing.network.num_edges,):
        raise ValueError(
            f"edge utilization array has shape {array.shape}, "
            f"expected ({routing.network.num_edges},)"
        )
    return array


def utilization_percentiles(
    routing: Routing,
    demand: Optional[Demand] = None,
    percentiles: Sequence[float] = (50.0, 90.0, 99.0, 100.0),
    edge_congestions: Optional[Union[Mapping[Edge, float], np.ndarray]] = None,
    backend: str = "dict",
) -> Dict[float, float]:
    """Utilization percentiles across links (links with zero load included).

    Pass ``edge_congestions`` — either the dict returned by
    :meth:`Routing.edge_congestions` or a per-edge array in network
    edge-index order — to reuse an evaluation already in hand; otherwise
    ``demand`` is evaluated through the selected backend.
    """
    if edge_congestions is None:
        if demand is None:
            raise ValueError("need either a demand or a precomputed edge_congestions")
        edge_congestions = routing.evaluator(backend).edge_congestions(demand)
    values = _utilization_array(routing, edge_congestions)
    if not values.size:
        return {p: 0.0 for p in percentiles}
    return {p: float(np.percentile(values, p)) for p in percentiles}


def throughput_at_capacity(
    routing: Routing,
    demand: Optional[Demand] = None,
    utilization: Optional[float] = None,
    backend: str = "dict",
) -> float:
    """The largest factor by which ``demand`` can be scaled before saturation.

    With max utilization ``u`` under the given (fractional, linear)
    routing, the demand can be scaled by ``1 / u`` before some link
    reaches 100% utilization.  Returns ``inf`` for zero utilization.
    Pass ``utilization`` to reuse a congestion figure already computed.
    """
    if utilization is None:
        if demand is None:
            raise ValueError("need either a demand or a precomputed utilization")
        utilization = max_link_utilization(routing, demand, backend=backend)
    if utilization <= 0:
        return float("inf")
    return 1.0 / utilization


def batch_link_utilizations(
    routing: Routing,
    demands: Sequence[Demand],
    backend: str = "dict",
) -> np.ndarray:
    """Max link utilization per demand over one shared evaluation.

    Like every metric in this module the default backend is ``dict``
    (bit-exact vs the reference loops); pass ``backend="auto"`` or
    ``"sparse"`` to evaluate the whole batch as a single sparse matmul —
    the fast path for scenario grids and traffic-matrix series.
    """
    return routing.evaluator(backend).congestions(demands)


def batch_edge_loads(
    routing: Routing,
    demands: Sequence[Demand],
    backend: str = "dict",
) -> np.ndarray:
    """(batch × edge) raw edge-load array (network edge-index order).

    Defaults to the bit-exact ``dict`` backend; opt into ``"auto"`` /
    ``"sparse"`` for the single-matmul fast path.
    """
    return routing.evaluator(backend).edge_load_matrix(demands)


__all__ = [
    "max_link_utilization",
    "utilization_percentiles",
    "throughput_at_capacity",
    "batch_link_utilizations",
    "batch_edge_loads",
]
