"""Link-failure robustness of candidate path systems.

One of the practical reasons SMORE samples *diverse* paths from an
oblivious routing (rather than, say, k shortest paths) is robustness: when
a link fails, the rates can be shifted onto the surviving candidate paths
without touching forwarding tables.  This module quantifies that:

* :func:`surviving_system` — drop every candidate path using a failed link,
* :func:`failure_coverage` — fraction of demanded pairs that still have at
  least one candidate path after the failure,
* :func:`evaluate_failure` / :func:`failure_sweep` — re-optimize rates on
  the surviving paths and compare against the optimum of the failed
  network, over single-link failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.path_system import PathSystem
from repro.core.rate_adaptation import optimal_rates
from repro.demands.demand import Demand
from repro.exceptions import GraphError
from repro.graphs.network import Network, Vertex, edge_key
from repro.mcf.lp import min_congestion_lp

Edge = Tuple[Vertex, Vertex]


def surviving_system(system: PathSystem, failed_edge: Edge) -> PathSystem:
    """The candidate path system after removing paths through ``failed_edge``."""
    return system.without_edge(*failed_edge)


def failure_coverage(system: PathSystem, demand: Demand, failed_edge: Edge) -> float:
    """Fraction of demanded pairs still covered after ``failed_edge`` fails."""
    pairs = demand.pairs()
    if not pairs:
        return 1.0
    survivors = surviving_system(system, failed_edge)
    covered = sum(1 for pair in pairs if survivors.paths(*pair))
    return covered / len(pairs)


def failed_network(network: Network, failed_edge: Edge) -> Optional[Network]:
    """The network with ``failed_edge`` removed, or ``None`` if it disconnects."""
    graph = network.graph.copy()
    u, v = failed_edge
    if not graph.has_edge(u, v):
        raise GraphError(f"edge {failed_edge!r} is not in the network")
    graph.remove_edge(u, v)
    if not nx.is_connected(graph):
        return None
    return Network(graph, name=f"{network.name}-minus-{failed_edge}")


@dataclass
class FailureReport:
    """Outcome of a single-link failure against a candidate path system."""

    failed_edge: Edge
    coverage: float
    achieved_congestion: Optional[float]
    optimal_congestion: Optional[float]
    disconnects_network: bool = False

    @property
    def ratio(self) -> Optional[float]:
        if self.achieved_congestion is None or self.optimal_congestion is None:
            return None
        if self.optimal_congestion <= 0:
            return 1.0 if self.achieved_congestion <= 0 else float("inf")
        return self.achieved_congestion / self.optimal_congestion


def evaluate_failure(
    system: PathSystem,
    demand: Demand,
    failed_edge: Edge,
) -> FailureReport:
    """Re-optimize rates on the surviving candidate paths after one link failure.

    The comparison baseline is the offline optimum *on the failed network*
    (the fair comparator: the failure affects everyone).  When the failure
    disconnects the network, or some demanded pair loses all of its
    candidate paths, the corresponding congestion is reported as ``None``
    and only coverage is meaningful.
    """
    failed_edge = edge_key(*failed_edge)
    coverage = failure_coverage(system, demand, failed_edge)
    remaining = failed_network(system.network, failed_edge)
    if remaining is None:
        return FailureReport(
            failed_edge=failed_edge,
            coverage=coverage,
            achieved_congestion=None,
            optimal_congestion=None,
            disconnects_network=True,
        )
    optimum = min_congestion_lp(remaining, demand).congestion
    survivors = surviving_system(system, failed_edge)
    if not survivors.covers(demand.pairs()):
        return FailureReport(
            failed_edge=failed_edge,
            coverage=coverage,
            achieved_congestion=None,
            optimal_congestion=optimum,
        )
    achieved = optimal_rates(survivors, demand).congestion
    return FailureReport(
        failed_edge=failed_edge,
        coverage=coverage,
        achieved_congestion=achieved,
        optimal_congestion=optimum,
    )


@dataclass
class FailureSweepSummary:
    """Aggregate of single-link-failure reports."""

    reports: List[FailureReport] = field(default_factory=list)

    @property
    def num_failures(self) -> int:
        return len(self.reports)

    def mean_coverage(self) -> float:
        if not self.reports:
            return 1.0
        return sum(report.coverage for report in self.reports) / len(self.reports)

    def full_coverage_fraction(self) -> float:
        """Fraction of failures after which every demanded pair is still covered."""
        if not self.reports:
            return 1.0
        return sum(1 for report in self.reports if report.coverage >= 1.0) / len(self.reports)

    def worst_ratio(self) -> Optional[float]:
        ratios = [report.ratio for report in self.reports if report.ratio is not None]
        return max(ratios) if ratios else None

    def mean_ratio(self) -> Optional[float]:
        ratios = [report.ratio for report in self.reports if report.ratio is not None]
        return sum(ratios) / len(ratios) if ratios else None


def failure_sweep(
    system: PathSystem,
    demand: Demand,
    edges: Optional[Iterable[Edge]] = None,
) -> FailureSweepSummary:
    """Evaluate every (or the given) single-link failure against ``system``."""
    if edges is None:
        edges = system.network.edges
    summary = FailureSweepSummary()
    for edge in edges:
        summary.reports.append(evaluate_failure(system, demand, edge))
    return summary


__all__ = [
    "surviving_system",
    "failure_coverage",
    "failed_network",
    "FailureReport",
    "FailureSweepSummary",
    "evaluate_failure",
    "failure_sweep",
]
