"""Link-failure models and robustness evaluation of candidate path systems.

One of the practical reasons SMORE samples *diverse* paths from an
oblivious routing (rather than, say, k shortest paths) is robustness: when
links fail, the rates can be shifted onto the surviving candidate paths
without touching forwarding tables.  This module provides both the
single-failure sweep used by experiment E12 and the generalized failure
*processes* the scenario-sweep subsystem (:mod:`repro.scenarios`) draws
from.

Contracts
---------

**Failure events.**  A :class:`FailureEvent` is a set of removed edges
plus a per-edge capacity-scale map (partial degradation).  Events are
value objects: JSON round-trippable via ``to_dict``/``from_dict`` and
independent of the network object they were sampled on.

**Failure processes.**  A :class:`FailureProcess` turns randomness into
events: ``process.sample(network, rng)`` consumes the passed generator
*only* (no global numpy state), so two calls with generators seeded
identically yield identical events — this is what makes scenario cells
reproducible across serial and multiprocessing execution.  Processes are
declarative (``kind`` + parameters) and JSON round-trippable.

**Units.**  All congestion figures in this module are *utilizations*:
edge load divided by edge capacity, so a value of 1.0 means the most
loaded link runs exactly at capacity.  Ratios divide an achieved
utilization by the optimal utilization **on the failed network** — the
fair comparator, since the failure affects the offline optimum too.

Evaluation helpers:

* :func:`surviving_system` — drop every candidate path using a failed link,
* :func:`apply_failure` / :func:`rebase_system` — build the degraded
  network for an event and re-anchor a path system onto it,
* :func:`rebased_evaluator` — the compiled-backend counterpart for
  fixed-ratio routings: mask failed paths and rescale capacities on the
  compiled arrays (:mod:`repro.linalg`) instead of recompiling,
* :func:`failure_coverage` — fraction of demanded pairs that still have at
  least one candidate path after the failure,
* :func:`evaluate_failure` / :func:`failure_sweep` — re-optimize rates on
  the surviving paths over all single-link failures (E12),
* :func:`evaluate_failure_event` — the multi-edge, capacity-aware
  generalization: the standalone one-system counterpart of the scenario
  runner's per-scheme evaluation (the runner inlines the same
  rebase-and-re-optimize steps so it can share one degraded-network
  optimum across all schemes of a cell).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.core.path_system import PathSystem
from repro.core.rate_adaptation import optimal_rates
from repro.demands.demand import Demand
from repro.exceptions import GraphError, ReproError
from repro.graphs.network import Network, Vertex, edge_key
from repro.mcf.lp import min_congestion_lp
from repro.utils.rng import RngLike, ensure_rng

Edge = Tuple[Vertex, Vertex]


def surviving_system(system: PathSystem, failed_edge: Edge) -> PathSystem:
    """The candidate path system after removing paths through ``failed_edge``."""
    return system.without_edge(*failed_edge)


def failure_coverage(system: PathSystem, demand: Demand, failed_edge: Edge) -> float:
    """Fraction of demanded pairs still covered after ``failed_edge`` fails."""
    pairs = demand.pairs()
    if not pairs:
        return 1.0
    survivors = surviving_system(system, failed_edge)
    covered = sum(1 for pair in pairs if survivors.paths(*pair))
    return covered / len(pairs)


def failed_network(network: Network, failed_edge: Edge) -> Optional[Network]:
    """The network with ``failed_edge`` removed, or ``None`` if it disconnects."""
    graph = network.graph.copy()
    u, v = failed_edge
    if not graph.has_edge(u, v):
        raise GraphError(f"edge {failed_edge!r} is not in the network")
    graph.remove_edge(u, v)
    if not nx.is_connected(graph):
        return None
    return Network(graph, name=f"{network.name}-minus-{failed_edge}")


@dataclass
class FailureReport:
    """Outcome of a single-link failure against a candidate path system."""

    failed_edge: Edge
    coverage: float
    achieved_congestion: Optional[float]
    optimal_congestion: Optional[float]
    disconnects_network: bool = False

    @property
    def ratio(self) -> Optional[float]:
        if self.achieved_congestion is None or self.optimal_congestion is None:
            return None
        if self.optimal_congestion <= 0:
            return 1.0 if self.achieved_congestion <= 0 else float("inf")
        return self.achieved_congestion / self.optimal_congestion


def evaluate_failure(
    system: PathSystem,
    demand: Demand,
    failed_edge: Edge,
) -> FailureReport:
    """Re-optimize rates on the surviving candidate paths after one link failure.

    The comparison baseline is the offline optimum *on the failed network*
    (the fair comparator: the failure affects everyone).  When the failure
    disconnects the network, or some demanded pair loses all of its
    candidate paths, the corresponding congestion is reported as ``None``
    and only coverage is meaningful.
    """
    failed_edge = edge_key(*failed_edge)
    coverage = failure_coverage(system, demand, failed_edge)
    remaining = failed_network(system.network, failed_edge)
    if remaining is None:
        return FailureReport(
            failed_edge=failed_edge,
            coverage=coverage,
            achieved_congestion=None,
            optimal_congestion=None,
            disconnects_network=True,
        )
    optimum = min_congestion_lp(remaining, demand).congestion
    survivors = surviving_system(system, failed_edge)
    if not survivors.covers(demand.pairs()):
        return FailureReport(
            failed_edge=failed_edge,
            coverage=coverage,
            achieved_congestion=None,
            optimal_congestion=optimum,
        )
    achieved = optimal_rates(survivors, demand).congestion
    return FailureReport(
        failed_edge=failed_edge,
        coverage=coverage,
        achieved_congestion=achieved,
        optimal_congestion=optimum,
    )


@dataclass
class FailureSweepSummary:
    """Aggregate of single-link-failure reports."""

    reports: List[FailureReport] = field(default_factory=list)

    @property
    def num_failures(self) -> int:
        return len(self.reports)

    def mean_coverage(self) -> float:
        if not self.reports:
            return 1.0
        return sum(report.coverage for report in self.reports) / len(self.reports)

    def full_coverage_fraction(self) -> float:
        """Fraction of failures after which every demanded pair is still covered."""
        if not self.reports:
            return 1.0
        return sum(1 for report in self.reports if report.coverage >= 1.0) / len(self.reports)

    def worst_ratio(self) -> Optional[float]:
        ratios = [report.ratio for report in self.reports if report.ratio is not None]
        return max(ratios) if ratios else None

    def mean_ratio(self) -> Optional[float]:
        ratios = [report.ratio for report in self.reports if report.ratio is not None]
        return sum(ratios) / len(ratios) if ratios else None


def failure_sweep(
    system: PathSystem,
    demand: Demand,
    edges: Optional[Iterable[Edge]] = None,
) -> FailureSweepSummary:
    """Evaluate every (or the given) single-link failure against ``system``."""
    if edges is None:
        edges = system.network.edges
    summary = FailureSweepSummary()
    for edge in edges:
        summary.reports.append(evaluate_failure(system, demand, edge))
    return summary


# --------------------------------------------------------------------- #
# Generalized failure events and processes (scenario-sweep substrate)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FailureEvent:
    """A correlated failure: removed edges plus partial capacity degradation.

    ``failed_edges`` are removed outright; ``capacity_scale`` maps
    surviving edges to a multiplicative capacity factor in ``(0, 1]``.
    The empty event (no removals, no scaling) represents a healthy
    network and is treated specially by :func:`apply_failure`.
    """

    failed_edges: Tuple[Edge, ...] = ()
    capacity_scale: Tuple[Tuple[Edge, float], ...] = ()
    label: str = "none"

    def is_null(self) -> bool:
        return not self.failed_edges and not self.capacity_scale

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "failed_edges": [list(edge) for edge in self.failed_edges],
            "capacity_scale": [[list(edge), scale] for edge, scale in self.capacity_scale],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FailureEvent":
        return cls(
            failed_edges=tuple(_edge_from_json(edge) for edge in payload.get("failed_edges", ())),
            capacity_scale=tuple(
                (_edge_from_json(edge), float(scale))
                for edge, scale in payload.get("capacity_scale", ())
            ),
            label=str(payload.get("label", "none")),
        )


def _vertex_from_json(value: Any) -> Any:
    """Undo JSON's tuple->list conversion for composite vertex labels.

    Vertices are hashable (tuples like ``("core", 3)`` on fat-trees,
    ``(0, 1)`` on tori), never lists, so every list in a serialized edge
    is a tuple that went through JSON.
    """
    if isinstance(value, list):
        return tuple(_vertex_from_json(item) for item in value)
    return value


def _edge_from_json(edge: Any) -> Edge:
    u, v = edge
    return (_vertex_from_json(u), _vertex_from_json(v))


def apply_failure(network: Network, event: FailureEvent) -> Optional[Network]:
    """The degraded network after ``event``, or ``None`` if it disconnects.

    Removed edges must exist in ``network`` (:class:`GraphError`
    otherwise); capacity scales apply only to surviving edges.  A null
    event returns ``network`` itself (no copy), so the healthy path stays
    allocation-free.
    """
    if event.is_null():
        return network
    graph = network.graph.copy()
    for u, v in event.failed_edges:
        if not graph.has_edge(u, v):
            raise GraphError(f"failure event removes edge {(u, v)!r} not in the network")
        graph.remove_edge(u, v)
    if not nx.is_connected(graph):
        return None
    for (u, v), scale in event.capacity_scale:
        if not (0.0 < scale <= 1.0):
            raise GraphError(f"capacity scale for edge {(u, v)!r} must be in (0, 1], got {scale}")
        if graph.has_edge(u, v):
            graph[u][v]["capacity"] *= scale
    return Network(graph, name=f"{network.name}-{event.label}")


def rebase_system(system: PathSystem, degraded: Network) -> PathSystem:
    """Re-anchor ``system`` onto ``degraded``, dropping broken paths.

    A candidate path survives iff every edge it uses still exists in the
    degraded network; surviving paths are revalidated against (and
    therefore priced by the capacities of) ``degraded``.
    """
    rebased = PathSystem(degraded)
    for (source, target), paths in system.items():
        kept = [
            path
            for path in paths
            if all(degraded.has_edge(u, v) for u, v in zip(path, path[1:]))
        ]
        if kept:
            rebased.add_paths(source, target, kept)
    return rebased


class FailureProcess:
    """Declarative random failure model: ``sample(network, rng) -> FailureEvent``.

    Subclasses must consume randomness only through the generator passed
    to :meth:`sample` and must key every random choice off the network's
    canonical vertex/edge order, so equal seeds give equal events in any
    execution mode.
    """

    kind: str = "none"

    def sample(self, network: Network, rng: RngLike = None) -> FailureEvent:
        raise NotImplementedError

    def params(self) -> Dict[str, Any]:
        return {}

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **self.params()}

    def describe(self) -> str:
        rendered = ", ".join(f"{key}={value}" for key, value in sorted(self.params().items()))
        return f"{self.kind}({rendered})" if rendered else self.kind

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"


class NoFailure(FailureProcess):
    """The healthy-network baseline: always samples the null event."""

    kind = "none"

    def sample(self, network: Network, rng: RngLike = None) -> FailureEvent:
        return FailureEvent(label="none")


class KEdgeFailureProcess(FailureProcess):
    """``k`` independent uniform link failures (sampled without replacement)."""

    kind = "k-edge"

    def __init__(self, k: int = 1) -> None:
        if k < 1:
            raise ReproError("k-edge failure process needs k >= 1")
        self.k = int(k)

    def params(self) -> Dict[str, Any]:
        return {"k": self.k}

    def sample(self, network: Network, rng: RngLike = None) -> FailureEvent:
        generator = ensure_rng(rng)
        edges = network.edges  # canonical order
        count = min(self.k, len(edges))
        chosen = generator.choice(len(edges), size=count, replace=False)
        failed = tuple(edges[int(index)] for index in sorted(chosen))
        return FailureEvent(failed_edges=failed, label=f"k-edge(k={count})")


class RegionalFailureProcess(FailureProcess):
    """SRLG-style correlated failure: every link inside a random hop-ball fails.

    A center vertex is drawn uniformly; all edges whose *both* endpoints
    lie within hop distance ``radius`` of the center share the fate (they
    model a shared conduit / region outage).  ``radius=1`` fails the
    links among the center and its neighbors.
    """

    kind = "regional"

    def __init__(self, radius: int = 1) -> None:
        if radius < 0:
            raise ReproError("regional failure radius must be nonnegative")
        self.radius = int(radius)

    def params(self) -> Dict[str, Any]:
        return {"radius": self.radius}

    def sample(self, network: Network, rng: RngLike = None) -> FailureEvent:
        generator = ensure_rng(rng)
        vertices = network.vertices  # canonical order
        center = vertices[int(generator.integers(0, len(vertices)))]
        lengths = nx.single_source_shortest_path_length(
            network.graph, center, cutoff=self.radius
        )
        ball = set(lengths)
        failed = tuple(
            edge for edge in network.edges if edge[0] in ball and edge[1] in ball
        )
        return FailureEvent(failed_edges=failed, label=f"regional(r={self.radius})")


class CapacityDegradationProcess(FailureProcess):
    """Partial degradation: a random fraction of links keep only ``factor`` capacity.

    No link is removed, so candidate paths all survive; only the rate
    re-optimization (and the failed-network optimum) see the thinner
    links.  Models brown-outs / FEC rate-downs rather than fiber cuts.
    """

    kind = "degrade"

    def __init__(self, fraction: float = 0.25, factor: float = 0.5) -> None:
        if not (0.0 < fraction <= 1.0):
            raise ReproError("degradation fraction must be in (0, 1]")
        if not (0.0 < factor <= 1.0):
            raise ReproError("degradation factor must be in (0, 1]")
        self.fraction = float(fraction)
        self.factor = float(factor)

    def params(self) -> Dict[str, Any]:
        return {"fraction": self.fraction, "factor": self.factor}

    def sample(self, network: Network, rng: RngLike = None) -> FailureEvent:
        generator = ensure_rng(rng)
        edges = network.edges
        count = max(1, int(round(self.fraction * len(edges))))
        count = min(count, len(edges))
        chosen = generator.choice(len(edges), size=count, replace=False)
        scaled = tuple((edges[int(index)], self.factor) for index in sorted(chosen))
        return FailureEvent(
            capacity_scale=scaled,
            label=f"degrade(f={self.fraction:g}, x={self.factor:g})",
        )


_FAILURE_PROCESSES: Dict[str, type] = {
    NoFailure.kind: NoFailure,
    KEdgeFailureProcess.kind: KEdgeFailureProcess,
    RegionalFailureProcess.kind: RegionalFailureProcess,
    CapacityDegradationProcess.kind: CapacityDegradationProcess,
}

_FAILURE_ALIASES = {"srlg": "regional", "healthy": "none", "link": "k-edge"}


def available_failure_processes() -> List[str]:
    """Canonical kinds of the registered failure processes."""
    return sorted(_FAILURE_PROCESSES)


def build_failure_process(kind: str, **params: Any) -> FailureProcess:
    """Instantiate a failure process from its declarative ``kind`` + params."""
    canonical = _FAILURE_ALIASES.get(kind, kind)
    if canonical not in _FAILURE_PROCESSES:
        raise ReproError(
            f"unknown failure process {kind!r}; available: {available_failure_processes()}"
        )
    try:
        return _FAILURE_PROCESSES[canonical](**params)
    except TypeError as error:
        raise ReproError(f"bad parameters for failure process {kind!r}: {error}") from error


@dataclass
class FailureEventReport:
    """Outcome of one multi-edge failure event against a candidate path system.

    ``coverage`` is the fraction of demanded pairs that still have at
    least one surviving candidate path; congestion figures are ``None``
    when the event disconnects the network or some demanded pair loses
    every candidate path.
    """

    event: FailureEvent
    coverage: float
    achieved_congestion: Optional[float]
    optimal_congestion: Optional[float]
    disconnects_network: bool = False

    @property
    def ratio(self) -> Optional[float]:
        if self.achieved_congestion is None or self.optimal_congestion is None:
            return None
        if self.optimal_congestion <= 0:
            return 1.0 if self.achieved_congestion <= 0 else float("inf")
        return self.achieved_congestion / self.optimal_congestion


def evaluate_failure_event(
    system: PathSystem,
    demand: Demand,
    event: FailureEvent,
) -> FailureEventReport:
    """Re-optimize rates on the paths surviving ``event`` (multi-edge aware).

    The generalization of :func:`evaluate_failure`: removed edges break
    candidate paths, capacity scales thin the surviving links, and the
    comparison baseline is the optimum on the degraded network.
    """
    degraded = apply_failure(system.network, event)
    if degraded is None:
        pairs = demand.pairs()
        survivors = rebase_without_network(system, event)
        coverage = (
            sum(1 for pair in pairs if survivors.get(pair)) / len(pairs) if pairs else 1.0
        )
        return FailureEventReport(
            event=event,
            coverage=coverage,
            achieved_congestion=None,
            optimal_congestion=None,
            disconnects_network=True,
        )
    survivors = rebase_system(system, degraded)
    pairs = demand.pairs()
    coverage = (
        sum(1 for pair in pairs if survivors.paths(*pair)) / len(pairs) if pairs else 1.0
    )
    optimum = min_congestion_lp(degraded, demand).congestion
    if pairs and not survivors.covers(pairs):
        return FailureEventReport(
            event=event,
            coverage=coverage,
            achieved_congestion=None,
            optimal_congestion=optimum,
        )
    achieved = optimal_rates(survivors, demand).congestion if pairs else 0.0
    return FailureEventReport(
        event=event,
        coverage=coverage,
        achieved_congestion=achieved,
        optimal_congestion=optimum,
    )


def rebased_evaluator(routing, event: FailureEvent, backend: str = "sparse"):
    """The compiled evaluator for ``routing`` after ``event`` — no recompile.

    The incremental counterpart of :func:`rebase_system` for *routings*
    (fixed splitting ratios) instead of path systems: the compiled form
    masks the paths crossing removed edges, renormalizes each pair's
    surviving probabilities, and rescales the capacity vector, sharing
    the incidence matrix with the healthy compile and memoizing per
    event.  Demands touching a pair that lost every path evaluate to
    infinite congestion; ``evaluator.coverage(demand)`` reports the
    surviving fraction.  See :mod:`repro.linalg`.
    """
    return routing.evaluator(backend).rebased(event)


def rebase_without_network(
    system: PathSystem, event: FailureEvent
) -> Dict[Tuple[Vertex, Vertex], List]:
    """Surviving paths per pair as a plain dict (works even when disconnected)."""
    banned = {edge_key(u, v) for u, v in event.failed_edges}
    survivors: Dict[Tuple[Vertex, Vertex], List] = {}
    for pair, paths in system.items():
        kept = [
            path
            for path in paths
            if all(edge_key(u, v) not in banned for u, v in zip(path, path[1:]))
        ]
        survivors[pair] = kept
    return survivors


__all__ = [
    "surviving_system",
    "failure_coverage",
    "failed_network",
    "FailureReport",
    "FailureSweepSummary",
    "evaluate_failure",
    "failure_sweep",
    "FailureEvent",
    "FailureEventReport",
    "FailureProcess",
    "NoFailure",
    "KEdgeFailureProcess",
    "RegionalFailureProcess",
    "CapacityDegradationProcess",
    "available_failure_processes",
    "build_failure_process",
    "apply_failure",
    "rebase_system",
    "rebased_evaluator",
    "evaluate_failure_event",
]
