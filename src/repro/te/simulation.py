"""SMORE-style traffic-engineering simulation.

The semi-oblivious TE loop ([KYY+18], the motivating application of the
paper): candidate paths are installed *once* (updating forwarding tables
is slow), and only the sending rates are re-optimized per traffic-matrix
snapshot (rates can be pushed every few seconds).  The simulator replays
a traffic-matrix series against several schemes and reports, per
snapshot, the maximum link utilization normalized by the per-snapshot
optimal MCF:

* ``semi-oblivious (alpha=k)`` — the paper's construction: α paths
  sampled from an oblivious routing, rates re-optimized per snapshot,
* ``oblivious`` — the base oblivious routing with *fixed* splitting
  ratios (no adaptation),
* ``ksp`` — k-shortest-path candidate sets with adaptive rates (the
  classical TE baseline),
* ``spf`` — single shortest path (no adaptation, no diversity),
* ``optimal`` — the per-snapshot MCF optimum (ratio 1 by definition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.path_system import PathSystem
from repro.core.rate_adaptation import optimal_rates
from repro.core.routing import Routing
from repro.core.sampling import alpha_sample
from repro.demands.demand import Demand
from repro.demands.traffic_matrix import TrafficMatrixSeries
from repro.exceptions import SolverError
from repro.graphs.network import Network
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.oblivious.racke import RaeckeTreeRouting
from repro.oblivious.shortest_path import KShortestPathRouting, ShortestPathRouting
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class SchemeResult:
    """Per-scheme outcome of a TE simulation.

    ``utilization_ratios`` holds, per snapshot, the scheme's maximum link
    utilization divided by the per-snapshot optimum (>= 1).
    """

    scheme: str
    utilization_ratios: List[float] = field(default_factory=list)
    max_utilizations: List[float] = field(default_factory=list)

    def worst_ratio(self) -> float:
        return max(self.utilization_ratios, default=float("nan"))

    def mean_ratio(self) -> float:
        finite = [r for r in self.utilization_ratios if np.isfinite(r)]
        return float(np.mean(finite)) if finite else float("nan")

    def percentile_ratio(self, percentile: float) -> float:
        finite = [r for r in self.utilization_ratios if np.isfinite(r)]
        return float(np.percentile(finite, percentile)) if finite else float("nan")


@dataclass
class SimulationReport:
    """Full TE simulation output: one :class:`SchemeResult` per scheme."""

    network_name: str
    num_snapshots: int
    results: Dict[str, SchemeResult] = field(default_factory=dict)

    def ranking(self) -> List[str]:
        """Schemes ordered from best to worst mean utilization ratio."""
        return sorted(self.results, key=lambda scheme: self.results[scheme].mean_ratio())


class TrafficEngineeringSimulator:
    """Replays traffic-matrix series against semi-oblivious and baseline schemes.

    Parameters
    ----------
    network:
        The topology.
    alpha:
        Number of sampled candidate paths per pair for the semi-oblivious
        scheme (SMORE uses 4).
    oblivious:
        The oblivious routing to sample from (defaults to the Räcke-style
        tree routing).
    ksp_k:
        Number of paths for the k-shortest-path baseline.
    rng:
        Randomness source for sampling.
    """

    def __init__(
        self,
        network: Network,
        alpha: int = 4,
        oblivious: Optional[ObliviousRoutingBuilder] = None,
        ksp_k: int = 4,
        rng: RngLike = None,
    ) -> None:
        self._network = network
        self._alpha = alpha
        self._rng = ensure_rng(rng)
        self._oblivious = oblivious if oblivious is not None else RaeckeTreeRouting(network, rng=self._rng)
        self._ksp_k = ksp_k
        self._semi_oblivious_system: Optional[PathSystem] = None
        self._ksp_system: Optional[PathSystem] = None
        self._oblivious_routing: Optional[Routing] = None
        self._spf_routing: Optional[Routing] = None

    # ------------------------------------------------------------------ #
    # Offline phase: install candidate paths once.
    # ------------------------------------------------------------------ #
    def install_paths(self, pairs: Optional[Sequence] = None) -> None:
        """Install candidate paths for every scheme (the slow, offline step)."""
        if pairs is None:
            pairs = list(self._network.vertex_pairs(ordered=True))
        self._semi_oblivious_system = alpha_sample(
            self._oblivious, self._alpha, pairs=pairs, rng=self._rng
        )
        ksp_builder = KShortestPathRouting(self._network, k=self._ksp_k)
        ksp_system = PathSystem(self._network)
        for source, target in pairs:
            if source == target:
                continue
            ksp_system.add_paths(source, target, ksp_builder.pair_distribution(source, target).keys())
        self._ksp_system = ksp_system
        self._oblivious_routing = self._oblivious.routing(pairs=pairs)
        spf_builder = ShortestPathRouting(self._network)
        self._spf_routing = spf_builder.routing(pairs=pairs)

    def _require_installed(self) -> None:
        if self._semi_oblivious_system is None:
            raise SolverError("call install_paths() before simulating")

    @property
    def semi_oblivious_system(self) -> PathSystem:
        self._require_installed()
        return self._semi_oblivious_system  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Online phase: per-snapshot rate adaptation.
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        series: TrafficMatrixSeries,
        schemes: Sequence[str] = ("semi-oblivious", "oblivious", "ksp", "spf"),
        rate_method: str = "lp",
    ) -> SimulationReport:
        """Replay ``series`` and report per-scheme utilization ratios."""
        self._require_installed()
        report = SimulationReport(network_name=self._network.name, num_snapshots=len(series))
        for scheme in schemes:
            report.results[scheme] = SchemeResult(scheme=scheme)

        for snapshot in series:
            if snapshot.is_empty():
                continue
            optimum = min_congestion_lp(self._network, snapshot).congestion
            for scheme in schemes:
                utilization = self._run_scheme(scheme, snapshot, rate_method)
                ratio = utilization / optimum if optimum > 0 else (1.0 if utilization <= 0 else float("inf"))
                report.results[scheme].utilization_ratios.append(ratio)
                report.results[scheme].max_utilizations.append(utilization)
        return report

    def _run_scheme(self, scheme: str, snapshot: Demand, rate_method: str) -> float:
        if scheme == "semi-oblivious":
            return optimal_rates(self._semi_oblivious_system, snapshot, method=rate_method).congestion
        if scheme == "ksp":
            return optimal_rates(self._ksp_system, snapshot, method=rate_method).congestion
        if scheme == "oblivious":
            return self._oblivious_routing.congestion(snapshot)
        if scheme == "spf":
            return self._spf_routing.congestion(snapshot)
        if scheme == "optimal":
            return min_congestion_lp(self._network, snapshot).congestion
        raise SolverError(f"unknown TE scheme {scheme!r}")


__all__ = ["TrafficEngineeringSimulator", "SchemeResult", "SimulationReport"]
