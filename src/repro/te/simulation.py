"""SMORE-style traffic-engineering simulation.

The semi-oblivious TE loop ([KYY+18], the motivating application of the
paper): candidate paths are installed *once* (updating forwarding tables
is slow), and only the sending rates are re-optimized per traffic-matrix
snapshot (rates can be pushed every few seconds).  The simulator replays
a traffic-matrix series against several schemes and reports, per
snapshot, the maximum link utilization normalized by the per-snapshot
optimal MCF.

Since the engine redesign, :class:`TrafficEngineeringSimulator` is a
thin compatibility shell over :class:`~repro.engine.engine.RoutingEngine`:
every scheme — the defaults below and any user-supplied spec — is built
through the scheme registry (:mod:`repro.engine.registry`), and the
per-snapshot optimum is solved at most once and shared across schemes.

Default schemes:

* ``semi-oblivious`` — the paper's construction: α paths sampled from
  an oblivious routing, rates re-optimized per snapshot,
* ``oblivious`` — the base oblivious routing with *fixed* splitting
  ratios (no adaptation),
* ``ksp`` — k-shortest-path candidate sets with adaptive rates (the
  classical TE baseline),
* ``spf`` — single shortest path (no adaptation, no diversity),
* ``optimal`` — the per-snapshot MCF optimum (ratio 1 by definition).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.path_system import PathSystem
from repro.demands.traffic_matrix import TrafficMatrixSeries
from repro.engine.engine import RoutingEngine, SchemeResult, SimulationReport, SpecLike
from repro.exceptions import SolverError
from repro.graphs.network import Network
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.oblivious.racke import RaeckeTreeRouting
from repro.utils.rng import RngLike, ensure_rng


class TrafficEngineeringSimulator:
    """Replays traffic-matrix series against semi-oblivious and baseline schemes.

    Parameters
    ----------
    network:
        The topology.
    alpha:
        Number of sampled candidate paths per pair for the semi-oblivious
        scheme (SMORE uses 4).
    oblivious:
        The oblivious routing to sample from (defaults to the Räcke-style
        tree routing).  Shared between the ``semi-oblivious`` and
        ``oblivious`` schemes, per-pair distribution cache included.
    ksp_k:
        Number of paths for the k-shortest-path baseline.
    rng:
        Randomness source for sampling.
    schemes:
        Optional override of the default scheme set: a mapping
        ``label -> scheme spec`` (registry strings, dicts, or ready
        routers).  When given, ``alpha``/``ksp_k`` are ignored.
    """

    def __init__(
        self,
        network: Network,
        alpha: int = 4,
        oblivious: Optional[ObliviousRoutingBuilder] = None,
        ksp_k: int = 4,
        rng: RngLike = None,
        schemes: Optional[Mapping[str, SpecLike]] = None,
    ) -> None:
        self._network = network
        self._rng = ensure_rng(rng)
        self._oblivious = oblivious
        if schemes is None:
            if self._oblivious is None:
                self._oblivious = RaeckeTreeRouting(network, rng=self._rng)
            schemes = {
                "semi-oblivious": {
                    "scheme": "semi-oblivious",
                    "oblivious": self._oblivious,
                    "alpha": alpha,
                },
                "oblivious": {"scheme": "oblivious", "oblivious": self._oblivious},
                "ksp": f"ksp(k={ksp_k})",
                "spf": "spf",
                "optimal": "optimal",
            }
        self._engine = RoutingEngine(network, schemes, rng=self._rng)
        self._installed = False

    @property
    def engine(self) -> RoutingEngine:
        """The underlying batch engine (shared caches, registry routers)."""
        return self._engine

    # ------------------------------------------------------------------ #
    # Offline phase: install candidate paths once.
    # ------------------------------------------------------------------ #
    def install_paths(self, pairs: Optional[Sequence] = None) -> None:
        """Install candidate paths for every scheme (the slow, offline step)."""
        self._engine.install(pairs=pairs)
        self._installed = True

    def _require_installed(self) -> None:
        if not self._installed:
            raise SolverError("call install_paths() before simulating")

    @property
    def semi_oblivious_system(self) -> PathSystem:
        self._require_installed()
        router = self._engine["semi-oblivious"]
        system = getattr(router, "system", None)
        if system is None:
            raise SolverError("the 'semi-oblivious' scheme does not expose a path system")
        return system

    # ------------------------------------------------------------------ #
    # Online phase: per-snapshot rate adaptation.
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        series: TrafficMatrixSeries,
        schemes: Sequence[str] = ("semi-oblivious", "oblivious", "ksp", "spf"),
        rate_method: str = "lp",
    ) -> SimulationReport:
        """Replay ``series`` and report per-scheme utilization ratios."""
        self._require_installed()
        unknown = [scheme for scheme in schemes if scheme not in self._engine]
        if unknown:
            raise SolverError(
                f"unknown TE scheme(s) {unknown!r}; available: {self._engine.labels()}"
            )
        for label in schemes:
            router = self._engine[label]
            if hasattr(router, "method"):
                router.method = rate_method
        return self._engine.evaluate_matrix_series(series, labels=list(schemes))


__all__ = ["TrafficEngineeringSimulator", "SchemeResult", "SimulationReport"]
