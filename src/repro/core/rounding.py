"""Randomized rounding of fractional routings (Lemma 6.3).

For an integral demand ``d`` and a fractional routing ``R``, sample, for
every pair, ``d(s, t)`` paths independently from ``R(s, t)`` and give
each sampled path weight equal to its sample count.  The rounding lemma
guarantees that some outcome satisfies

    cong(R', d) <= 2 * cong(R, d) + 3 ln m,

and the proof is via Chernoff bounds on negatively-associated indicator
sums, so the bound also holds with constant probability per trial.  The
helper below retries until the bound is met (it almost always is on the
first attempt) so callers receive a *certified* integral routing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import DemandError, SolverError
from repro.graphs.network import Network, Path, Vertex
from repro.utils.rng import RngLike, ensure_rng


def rounding_bound(fractional_congestion: float, num_edges: int) -> float:
    """The Lemma 6.3 guarantee: ``2 * cong + 3 ln m``."""
    return 2.0 * fractional_congestion + 3.0 * math.log(max(num_edges, 2))


@dataclass
class RoundingResult:
    """An integral routing produced by randomized rounding.

    Attributes
    ----------
    routing:
        The integral routing (weights ``d(s,t) * P[R'(s,t)=p]`` are integers).
    congestion:
        Its congestion on the rounded demand.
    bound:
        The Lemma 6.3 guarantee it was certified against.
    attempts:
        Number of sampling attempts used.
    """

    routing: Routing
    congestion: float
    bound: float
    attempts: int


def randomized_rounding(
    routing: Routing,
    demand: Demand,
    rng: RngLike = None,
    max_attempts: int = 50,
    require_bound: bool = True,
) -> RoundingResult:
    """Round ``routing`` to an integral routing of the integral demand ``demand``.

    Parameters
    ----------
    routing:
        A fractional routing covering the demand's support.
    demand:
        An integral demand (values are rounded to the nearest integer).
    rng:
        Randomness source.
    max_attempts:
        Number of independent sampling attempts before giving up on the
        certified bound.
    require_bound:
        When True (default) the sampling is retried until the Lemma 6.3
        bound holds; when False the best attempt is returned regardless.
    """
    if not demand.is_integral():
        raise DemandError("randomized rounding requires an integral demand")
    generator = ensure_rng(rng)
    network = routing.network
    fractional_congestion = routing.congestion(demand)
    bound = rounding_bound(fractional_congestion, network.num_edges)

    best: Optional[Tuple[float, Routing]] = None
    for attempt in range(1, max_attempts + 1):
        distributions: Dict[Tuple[Vertex, Vertex], Dict[Path, float]] = {}
        for (source, target), amount in demand.items():
            units = int(round(amount))
            if units <= 0:
                continue
            pair_distribution = routing.distribution(source, target)
            paths = list(pair_distribution.keys())
            probabilities = [pair_distribution[path] for path in paths]
            counts: Dict[Path, int] = {}
            indices = generator.choice(len(paths), size=units, replace=True, p=probabilities)
            for index in indices:
                path = paths[int(index)]
                counts[path] = counts.get(path, 0) + 1
            distributions[(source, target)] = {
                path: count / units for path, count in counts.items()
            }
        integral_routing = Routing(network, distributions)
        congestion = integral_routing.congestion(demand)
        if best is None or congestion < best[0]:
            best = (congestion, integral_routing)
        if congestion <= bound + 1e-9:
            return RoundingResult(
                routing=integral_routing,
                congestion=congestion,
                bound=bound,
                attempts=attempt,
            )
    assert best is not None
    if require_bound:
        raise SolverError(
            f"randomized rounding failed to meet the bound {bound:.3f} after "
            f"{max_attempts} attempts (best congestion {best[0]:.3f})"
        )
    return RoundingResult(routing=best[1], congestion=best[0], bound=bound, attempts=max_attempts)


__all__ = ["randomized_rounding", "rounding_bound", "RoundingResult"]
