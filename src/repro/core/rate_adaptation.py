"""Demand-adaptive rate optimization on a fixed candidate path system.

This is "Stage 4" of the semi-oblivious pipeline (Section 2.1): the
candidate paths are already installed; when the demand arrives, the
sending rates along the candidate paths are chosen to minimize the
maximum edge congestion, using all global information.

Two engines are provided:

* ``method="lp"`` — the exact path LP (default, exact optimum),
* ``method="greedy"`` — the iterative load-balancing heuristic
  (LP-free, used for very large instances and as a cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.path_system import PathSystem
from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import SolverError
from repro.graphs.network import Vertex
from repro.mcf.path_lp import greedy_rates, min_congestion_on_paths


@dataclass
class RateAdaptationResult:
    """Outcome of adapting rates on a path system for one demand.

    Attributes
    ----------
    congestion:
        ``cong_R(P, d)`` achieved by the chosen rates.
    routing:
        The routing realizing it (``None`` only for empty demands).
    edge_congestions:
        Per-edge congestion under the chosen rates.
    method:
        Which engine produced the result (``"lp"`` or ``"greedy"``).
    """

    congestion: float
    routing: Optional[Routing]
    edge_congestions: Dict[Tuple[Vertex, Vertex], float]
    method: str


def optimal_rates(
    system: PathSystem,
    demand: Demand,
    method: str = "lp",
    greedy_iterations: int = 200,
) -> RateAdaptationResult:
    """Choose sending rates over ``system`` minimizing congestion for ``demand``.

    Parameters
    ----------
    system:
        The pre-installed candidate paths.
    demand:
        The revealed demand matrix.
    method:
        ``"lp"`` for the exact path LP (default) or ``"greedy"`` for the
        iterative heuristic.
    greedy_iterations:
        Iteration budget for the greedy engine.
    """
    if method == "lp":
        result = min_congestion_on_paths(system, demand, return_routing=True)
    elif method == "greedy":
        result = greedy_rates(system, demand, iterations=greedy_iterations)
    else:
        raise SolverError(f"unknown rate adaptation method {method!r}")
    return RateAdaptationResult(
        congestion=result.congestion,
        routing=result.routing,
        edge_congestions=result.edge_congestions,
        method=method,
    )


__all__ = ["optimal_rates", "RateAdaptationResult"]
