"""Core contribution: sparse semi-oblivious routing by sampling few paths.

The public entry points are:

* :class:`~repro.core.path_system.PathSystem` — a set of candidate paths
  per vertex pair (Definition 2.1),
* :class:`~repro.core.routing.Routing` — a distribution over paths per
  pair with congestion/dilation accounting (Section 4),
* :func:`~repro.core.sampling.alpha_sample` and
  :func:`~repro.core.sampling.alpha_plus_cut_sample` — Definition 5.2,
* :class:`~repro.core.semi_oblivious.SemiObliviousRouting` — sample once,
  adapt rates per demand (the paper's main object),
* :func:`~repro.core.rounding.randomized_rounding` — Lemma 6.3,
* :func:`~repro.core.competitive.competitive_ratio` — Stage 5 evaluation,
* :mod:`~repro.core.completion_time` — the Section 7 extension.
"""

from repro.core.path_system import PathSystem
from repro.core.routing import Routing
from repro.core.sampling import alpha_sample, alpha_plus_cut_sample, deterministic_top_paths
from repro.core.semi_oblivious import SemiObliviousRouting
from repro.core.rate_adaptation import optimal_rates, RateAdaptationResult
from repro.core.rounding import randomized_rounding, rounding_bound
from repro.core.integral_routing import integral_congestion, IntegralRoutingResult
from repro.core.weak_routing import WeakRoutingProcess, WeakRoutingOutcome
from repro.core.competitive import (
    competitive_ratio,
    routing_congestion,
    CompetitiveReport,
    evaluate_path_system,
)
from repro.core.completion_time import (
    completion_time,
    completion_time_competitive_ratio,
    MultiScaleHopSample,
)

__all__ = [
    "PathSystem",
    "Routing",
    "alpha_sample",
    "alpha_plus_cut_sample",
    "deterministic_top_paths",
    "SemiObliviousRouting",
    "optimal_rates",
    "RateAdaptationResult",
    "randomized_rounding",
    "rounding_bound",
    "integral_congestion",
    "IntegralRoutingResult",
    "WeakRoutingProcess",
    "WeakRoutingOutcome",
    "competitive_ratio",
    "routing_congestion",
    "CompetitiveReport",
    "evaluate_path_system",
    "completion_time",
    "completion_time_competitive_ratio",
    "MultiScaleHopSample",
]
