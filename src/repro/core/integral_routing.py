"""Integral semi-oblivious routing (Definition 6.1).

``cong_Z(P, d)`` is the minimum congestion over routings on the candidate
path system that send each unit of the integral demand along a single
path.  Computing it exactly is NP-hard, so this module provides the two
standard practical attacks, both of which the paper's Section 6 pipeline
uses implicitly:

* :func:`integral_routing_by_rounding` — solve the fractional path LP and
  apply the Lemma 6.3 randomized rounding (the paper's reduction), then
* :func:`local_search_improve` — greedy single-unit moves: repeatedly
  re-route one unit from its current path to the candidate path that
  minimizes the resulting maximum congestion, until no move improves.

The combination gives a certified upper bound on ``cong_Z(P, d)`` that is
within the Lemma 6.3 guarantee of the fractional optimum and usually much
closer; :func:`integral_congestion` wraps the full pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.path_system import PathSystem
from repro.core.rounding import randomized_rounding, rounding_bound
from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import DemandError, InfeasibleError
from repro.graphs.network import Network, Path, Vertex, path_edges
from repro.mcf.path_lp import min_congestion_on_paths
from repro.utils.rng import RngLike, ensure_rng

Assignment = Dict[Tuple[Tuple[Vertex, Vertex], int], Path]


@dataclass
class IntegralRoutingResult:
    """An integral routing of an integral demand on a candidate path system.

    Attributes
    ----------
    congestion:
        Maximum edge congestion of the assignment.
    assignment:
        Mapping ``((source, target), unit_index) -> path``.
    routing:
        The same assignment expressed as a :class:`Routing` (weights are
        unit counts divided by the pair's demand).
    fractional_congestion:
        The fractional optimum ``cong_R(P, d)`` (lower bound).
    certified_bound:
        The Lemma 6.3 guarantee ``2 * fractional + 3 ln m`` the result is
        certified against.
    local_search_moves:
        Number of improving single-unit moves applied.
    """

    congestion: float
    assignment: Assignment
    routing: Routing
    fractional_congestion: float
    certified_bound: float
    local_search_moves: int


def _assignment_from_routing(routing: Routing, demand: Demand) -> Assignment:
    """Expand an integral routing into per-unit path assignments."""
    assignment: Assignment = {}
    for pair, amount in demand.items():
        units = int(round(amount))
        if units <= 0:
            continue
        distribution = routing.distribution(*pair)
        unit_index = 0
        for path, probability in distribution.items():
            count = int(round(probability * units))
            for _ in range(count):
                if unit_index >= units:
                    break
                assignment[(pair, unit_index)] = path
                unit_index += 1
        # Numerical safety: assign any leftover units to the heaviest path.
        heaviest = max(distribution, key=distribution.get)
        while unit_index < units:
            assignment[(pair, unit_index)] = heaviest
            unit_index += 1
    return assignment


def _routing_from_assignment(network: Network, assignment: Assignment, demand: Demand) -> Routing:
    per_pair: Dict[Tuple[Vertex, Vertex], Dict[Path, int]] = {}
    for (pair, _), path in assignment.items():
        per_pair.setdefault(pair, {})[path] = per_pair.setdefault(pair, {}).get(path, 0) + 1
    distributions = {}
    for pair, counts in per_pair.items():
        total = sum(counts.values())
        distributions[pair] = {path: count / total for path, count in counts.items()}
    _ = demand
    return Routing(network, distributions)


def _edge_loads(network: Network, assignment: Assignment) -> Dict[Tuple[Vertex, Vertex], float]:
    loads: Dict[Tuple[Vertex, Vertex], float] = {}
    for path in assignment.values():
        for edge in path_edges(path):
            loads[edge] = loads.get(edge, 0.0) + 1.0
    return loads


def _congestion(network: Network, loads: Dict[Tuple[Vertex, Vertex], float]) -> float:
    worst = 0.0
    for edge, load in loads.items():
        worst = max(worst, load / network.capacity_of(edge))
    return worst


def integral_routing_by_rounding(
    system: PathSystem,
    demand: Demand,
    rng: RngLike = None,
) -> Tuple[Assignment, float, float]:
    """Fractional path LP + Lemma 6.3 rounding, returned as a unit assignment.

    Returns ``(assignment, congestion, fractional_optimum)``.
    """
    if not demand.is_integral():
        raise DemandError("integral routing requires an integral demand")
    fractional = min_congestion_on_paths(system, demand, return_routing=True)
    if fractional.routing is None:
        return {}, 0.0, 0.0
    rounded = randomized_rounding(fractional.routing, demand, rng=ensure_rng(rng))
    assignment = _assignment_from_routing(rounded.routing, demand)
    loads = _edge_loads(system.network, assignment)
    return assignment, _congestion(system.network, loads), fractional.congestion


def local_search_improve(
    system: PathSystem,
    assignment: Assignment,
    max_passes: int = 20,
) -> Tuple[Assignment, float, int]:
    """Greedy single-unit re-routing until no move lowers the max congestion.

    Each pass iterates over all assigned units; a unit is moved to the
    candidate path minimizing the resulting maximum congestion (over the
    edges it touches) if that strictly improves the situation for the
    currently most congested edge it uses.

    Returns ``(assignment, congestion, number_of_moves)``.
    """
    network = system.network
    assignment = dict(assignment)
    loads = _edge_loads(network, assignment)
    moves = 0

    def edge_congestion(edge) -> float:
        return loads.get(edge, 0.0) / network.capacity_of(edge)

    for _ in range(max_passes):
        improved = False
        for key, current_path in list(assignment.items()):
            pair, _ = key
            candidates = system.paths(*pair)
            if len(candidates) < 2:
                continue
            current_worst = max(edge_congestion(edge) for edge in path_edges(current_path))
            best_path = current_path
            best_worst = current_worst
            for candidate in candidates:
                if candidate == current_path:
                    continue
                # Worst congestion along the candidate after moving the unit there
                # (remove from current path first).
                worst = 0.0
                current_edges = set(path_edges(current_path))
                for edge in path_edges(candidate):
                    load = loads.get(edge, 0.0)
                    if edge in current_edges:
                        load -= 1.0
                    worst = max(worst, (load + 1.0) / network.capacity_of(edge))
                if worst < best_worst - 1e-12:
                    best_worst = worst
                    best_path = candidate
            if best_path is not current_path and best_path != current_path:
                for edge in path_edges(current_path):
                    loads[edge] = loads.get(edge, 0.0) - 1.0
                for edge in path_edges(best_path):
                    loads[edge] = loads.get(edge, 0.0) + 1.0
                assignment[key] = best_path
                moves += 1
                improved = True
        if not improved:
            break
    return assignment, _congestion(network, loads), moves


def integral_congestion(
    system: PathSystem,
    demand: Demand,
    rng: RngLike = None,
    local_search: bool = True,
) -> IntegralRoutingResult:
    """Full pipeline: fractional LP -> rounding -> optional local search.

    Raises
    ------
    DemandError
        If the demand is not integral.
    InfeasibleError
        If some demanded pair has no candidate path.
    """
    if not demand.is_integral():
        raise DemandError("integral routing requires an integral demand")
    for pair in demand.pairs():
        if not system.paths(*pair):
            raise InfeasibleError(f"no candidate path for pair {pair!r}")
    if demand.is_empty():
        empty_routing = Routing(system.network, {})
        return IntegralRoutingResult(
            congestion=0.0,
            assignment={},
            routing=empty_routing,
            fractional_congestion=0.0,
            certified_bound=rounding_bound(0.0, system.network.num_edges),
            local_search_moves=0,
        )
    assignment, congestion, fractional = integral_routing_by_rounding(system, demand, rng=rng)
    moves = 0
    if local_search:
        assignment, congestion, moves = local_search_improve(system, assignment)
    routing = _routing_from_assignment(system.network, assignment, demand)
    return IntegralRoutingResult(
        congestion=congestion,
        assignment=assignment,
        routing=routing,
        fractional_congestion=fractional,
        certified_bound=rounding_bound(fractional, system.network.num_edges),
        local_search_moves=moves,
    )


__all__ = [
    "IntegralRoutingResult",
    "integral_congestion",
    "integral_routing_by_rounding",
    "local_search_improve",
]
