"""Completion-time (congestion + dilation) semi-oblivious routing (Section 7).

The completion-time objective is ``cong(R, d) + dil(R, d)``: by the
classic packet-scheduling reductions, the time until the last packet
arrives is Θ(congestion + dilation).  Optimizing congestion alone can be
arbitrarily bad for completion time, so Section 7 samples from
*hop-constrained* oblivious routings at geometrically growing hop scales
``h_1 = 1, h_{i+1} = ceil(h_i * log n)`` and takes the union of the
per-scale samples as the candidate system.

This module provides:

* :func:`completion_time` — the objective itself,
* :class:`MultiScaleHopSample` — the Lemma 2.8/2.9 construction
  (one α-sample per hop scale, unioned),
* :func:`best_completion_time_on_system` — adaptive rate + scale
  selection on a candidate system for a revealed demand,
* :func:`completion_time_competitive_ratio` — comparison against a
  baseline routing (the paper compares against any routing R; we use the
  congestion-optimal MCF routing and the best hop-restricted LP optimum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.path_system import PathSystem
from repro.core.rate_adaptation import optimal_rates
from repro.core.routing import Routing
from repro.core.sampling import alpha_sample
from repro.demands.demand import Demand
from repro.exceptions import InfeasibleError, RoutingError
from repro.graphs.network import Network, Path, Vertex
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.hop_constrained import HopConstrainedRouting
from repro.utils.rng import RngLike, ensure_rng


def completion_time(congestion: float, dilation: float) -> float:
    """The completion-time objective ``congestion + dilation``."""
    return congestion + dilation


def routing_completion_time(routing: Routing, demand: Demand) -> float:
    """``cong(R, d) + dil(R, d)`` for a concrete routing."""
    return completion_time(routing.congestion(demand), routing.dilation(demand))


def hop_scales(network: Network, base: Optional[float] = None) -> List[int]:
    """The geometric hop scales ``h_1 = 1, h_{i+1} = ceil(h_i * base)`` up to the diameter.

    ``base`` defaults to ``log2 n`` as in Lemma 2.8.
    """
    n = max(network.num_vertices, 4)
    if base is None:
        base = max(math.log2(n), 2.0)
    diameter = network.diameter()
    scales = [1]
    while scales[-1] < diameter:
        nxt = int(math.ceil(scales[-1] * base))
        if nxt <= scales[-1]:
            nxt = scales[-1] + 1
        scales.append(nxt)
    return scales


@dataclass
class MultiScaleHopSample:
    """The Section 7 candidate system: a union of per-hop-scale α-samples.

    Attributes
    ----------
    system:
        The unioned candidate path system.
    per_scale_systems:
        The individual per-scale systems (useful for scale-restricted
        rate adaptation).
    scales:
        The hop scales used.
    alpha:
        Per-scale sampling parameter.
    """

    system: PathSystem
    per_scale_systems: Dict[int, PathSystem]
    scales: List[int]
    alpha: int

    @classmethod
    def build(
        cls,
        network: Network,
        alpha: int,
        pairs: Optional[Sequence[Tuple[Vertex, Vertex]]] = None,
        scales: Optional[Sequence[int]] = None,
        hop_stretch: float = 2.0,
        rng: RngLike = None,
    ) -> "MultiScaleHopSample":
        """Build the multi-scale sample (Lemma 2.8 construction).

        For each hop scale ``h`` a hop-constrained oblivious routing is
        built and α paths per pair are sampled from it; pairs whose
        distance exceeds the scale's hop limit are simply skipped at that
        scale (they are covered by larger scales).
        """
        if alpha < 1:
            raise RoutingError("alpha must be at least 1")
        generator = ensure_rng(rng)
        if scales is None:
            scales = hop_scales(network)
        if pairs is None:
            pairs = list(network.vertex_pairs(ordered=True))
        union = PathSystem(network)
        per_scale: Dict[int, PathSystem] = {}
        for scale in scales:
            builder = HopConstrainedRouting(
                network, hop_bound=scale, hop_stretch=hop_stretch, rng=generator
            )
            reachable_pairs = []
            for source, target in pairs:
                if network.distance(source, target) <= builder.hop_limit:
                    reachable_pairs.append((source, target))
            if not reachable_pairs:
                per_scale[scale] = PathSystem(network)
                continue
            sampled = alpha_sample(builder, alpha, pairs=reachable_pairs, rng=generator)
            per_scale[scale] = sampled
            union = union.merge(sampled)
        return cls(system=union, per_scale_systems=per_scale, scales=list(scales), alpha=alpha)

    def sparsity(self) -> int:
        return self.system.sparsity()


@dataclass
class CompletionTimeResult:
    """Best completion time achievable on a candidate system for one demand."""

    completion_time: float
    congestion: float
    dilation: float
    routing: Optional[Routing]
    scale: Optional[int] = None


def best_completion_time_on_system(
    sample: "MultiScaleHopSample | PathSystem",
    demand: Demand,
    method: str = "lp",
) -> CompletionTimeResult:
    """Pick the hop scale (if any) and rates minimizing congestion + dilation.

    For a :class:`MultiScaleHopSample` each scale is tried separately
    (paths at a small scale guarantee small dilation) and the best total
    is returned; for a plain :class:`PathSystem` rates are optimized once
    on the full system.
    """
    if isinstance(sample, MultiScaleHopSample):
        best: Optional[CompletionTimeResult] = None
        for scale, system in sample.per_scale_systems.items():
            if not system.covers(demand.pairs()):
                continue
            adaptation = optimal_rates(system, demand, method=method)
            if adaptation.routing is None:
                continue
            dilation = adaptation.routing.dilation(demand)
            total = completion_time(adaptation.congestion, dilation)
            if best is None or total < best.completion_time:
                best = CompletionTimeResult(
                    completion_time=total,
                    congestion=adaptation.congestion,
                    dilation=dilation,
                    routing=adaptation.routing,
                    scale=scale,
                )
        if best is None:
            # Fall back to the union system.
            return best_completion_time_on_system(sample.system, demand, method=method)
        return best

    system = sample
    adaptation = optimal_rates(system, demand, method=method)
    dilation = adaptation.routing.dilation(demand) if adaptation.routing else 0
    return CompletionTimeResult(
        completion_time=completion_time(adaptation.congestion, dilation),
        congestion=adaptation.congestion,
        dilation=dilation,
        routing=adaptation.routing,
        scale=None,
    )


def completion_time_competitive_ratio(
    sample: "MultiScaleHopSample | PathSystem",
    demand: Demand,
    baseline_routing: Optional[Routing] = None,
    method: str = "lp",
) -> Tuple[float, CompletionTimeResult, float]:
    """Completion-time competitiveness of ``sample`` on ``demand``.

    The baseline defaults to the congestion-optimal offline routing
    (which is a valid comparator routing R in Definition 7.2 — the
    guarantee must hold against *every* routing, so any fixed baseline
    only yields a lower estimate of the true worst-case ratio).

    Returns ``(ratio, achieved_result, baseline_completion_time)``.
    """
    network = sample.system.network if isinstance(sample, MultiScaleHopSample) else sample.network
    if baseline_routing is None:
        lp = min_congestion_lp(network, demand, return_routing=True)
        baseline_routing = lp.routing
    if baseline_routing is None:
        raise InfeasibleError("no baseline routing available for an empty demand")
    baseline_total = routing_completion_time(baseline_routing, demand)
    achieved = best_completion_time_on_system(sample, demand, method=method)
    if baseline_total <= 0:
        ratio = 1.0 if achieved.completion_time <= 0 else float("inf")
    else:
        ratio = achieved.completion_time / baseline_total
    return ratio, achieved, baseline_total


__all__ = [
    "completion_time",
    "routing_completion_time",
    "hop_scales",
    "MultiScaleHopSample",
    "CompletionTimeResult",
    "best_completion_time_on_system",
    "completion_time_competitive_ratio",
]
