"""The hand-wired pipeline object: :class:`SemiObliviousRouting`.

Semi-oblivious routing in one line (Section 1.1): *sample a few paths
from any competitive oblivious routing, then adapt the sending rates to
the demand*.  This class packages the whole pipeline:

1. choose an oblivious routing source (Räcke-style by default, Valiant
   on hypercubes, electrical, ...),
2. draw an α-sample or (α + cut)-sample as the candidate path system,
3. for every revealed demand, optimize the rates on the candidate paths
   (fractional) and optionally round them to an integral routing,
4. report congestion / completion time / competitive ratios.

Most code should construct schemes through the registry instead, which
returns a :class:`~repro.engine.adapters.SemiObliviousRouter` adapter
satisfying the uniform :class:`~repro.engine.router.Router` protocol::

    from repro import build_router, topologies

    net = topologies.hypercube(6)
    router = build_router("semi-oblivious(racke, alpha=4)", net, rng=0)
    router.install()
    result = router.route(demand)              # RouteResult (LP-optimal rates)

This class remains the explicit, low-level form of the same pipeline —
useful when you already hold a :class:`PathSystem` or need the rounding
and competitive-report helpers directly::

    router = SemiObliviousRouting.sample(
        net, alpha=4, oblivious=RaeckeTreeRouting(net, rng=0), rng=0
    )
    result = router.route(demand)              # fractional, LP-optimal rates
    integral = router.route_integral(demand)   # Lemma 6.3 rounding on top
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.competitive import CompetitiveReport, evaluate_path_system
from repro.core.path_system import PathSystem
from repro.core.rate_adaptation import RateAdaptationResult, optimal_rates
from repro.core.rounding import RoundingResult, randomized_rounding
from repro.core.routing import Routing
from repro.core.sampling import alpha_plus_cut_sample, alpha_sample
from repro.demands.demand import Demand
from repro.exceptions import RoutingError
from repro.graphs.cuts import CutCache
from repro.graphs.network import Network, Vertex
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.utils.rng import RngLike, ensure_rng

Pair = Tuple[Vertex, Vertex]


class SemiObliviousRouting:
    """A sampled candidate path system together with its rate-adaptation logic.

    Instances are usually created through :meth:`sample` (α-sample) or
    :meth:`sample_with_cut` ((α + cut)-sample); an existing
    :class:`PathSystem` can also be wrapped directly.
    """

    def __init__(self, system: PathSystem, alpha: Optional[int] = None, source_name: str = "custom"):
        self._system = system
        self._alpha = alpha
        self._source_name = source_name

    # ------------------------------------------------------------------ #
    # Constructors (Definition 5.2)
    # ------------------------------------------------------------------ #
    @classmethod
    def sample(
        cls,
        network: Network,
        alpha: int,
        oblivious: "Routing | ObliviousRoutingBuilder",
        pairs: Optional[Iterable[Pair]] = None,
        rng: RngLike = None,
    ) -> "SemiObliviousRouting":
        """Draw an α-sample of ``oblivious`` over ``pairs`` (default: all pairs)."""
        if oblivious.network is not network and set(oblivious.network.vertices) != set(
            network.vertices
        ):
            raise RoutingError("oblivious routing and network do not match")
        system = alpha_sample(oblivious, alpha, pairs=pairs, rng=rng)
        name = getattr(oblivious, "name", type(oblivious).__name__)
        return cls(system, alpha=alpha, source_name=f"alpha-sample({name})")

    @classmethod
    def sample_with_cut(
        cls,
        network: Network,
        alpha: int,
        oblivious: "Routing | ObliviousRoutingBuilder",
        pairs: Optional[Iterable[Pair]] = None,
        cut_cache: Optional[CutCache] = None,
        rng: RngLike = None,
    ) -> "SemiObliviousRouting":
        """Draw an (α + cut_G)-sample of ``oblivious``."""
        cut_oracle = cut_cache if cut_cache is not None else CutCache(network)
        system = alpha_plus_cut_sample(oblivious, alpha, cut_oracle=cut_oracle, pairs=pairs, rng=rng)
        name = getattr(oblivious, "name", type(oblivious).__name__)
        return cls(system, alpha=alpha, source_name=f"alpha-plus-cut-sample({name})")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def system(self) -> PathSystem:
        """The installed candidate path system."""
        return self._system

    @property
    def network(self) -> Network:
        return self._system.network

    @property
    def alpha(self) -> Optional[int]:
        """The sampling parameter used (``None`` for wrapped systems)."""
        return self._alpha

    @property
    def source_name(self) -> str:
        """Which oblivious routing the paths were sampled from."""
        return self._source_name

    def sparsity(self) -> int:
        """Actual sparsity (max candidate paths per pair, duplicates merged)."""
        return self._system.sparsity()

    # ------------------------------------------------------------------ #
    # Routing a demand
    # ------------------------------------------------------------------ #
    def route(self, demand: Demand, method: str = "lp") -> RateAdaptationResult:
        """Optimally split ``demand`` over the candidate paths (fractional)."""
        return optimal_rates(self._system, demand, method=method)

    def route_integral(
        self,
        demand: Demand,
        method: str = "lp",
        rng: RngLike = None,
        require_bound: bool = True,
    ) -> RoundingResult:
        """Fractional rate adaptation followed by Lemma 6.3 randomized rounding."""
        adaptation = self.route(demand, method=method)
        if adaptation.routing is None:
            raise RoutingError("cannot round an empty routing")
        return randomized_rounding(
            adaptation.routing,
            demand.rounded_up(),
            rng=ensure_rng(rng),
            require_bound=require_bound,
        )

    def congestion(self, demand: Demand, method: str = "lp") -> float:
        """``cong_R(P, d)`` for this system."""
        return self.route(demand, method=method).congestion

    def evaluate(self, demand: Demand, optimal_congestion: Optional[float] = None) -> CompetitiveReport:
        """Competitive report against the offline optimum for ``demand``."""
        return evaluate_path_system(
            self._system,
            demand,
            scheme=self._source_name,
            optimal_congestion=optimal_congestion,
        )

    def __repr__(self) -> str:
        return (
            f"SemiObliviousRouting(source={self._source_name!r}, alpha={self._alpha}, "
            f"sparsity={self.sparsity()}, pairs={len(self._system)})"
        )


__all__ = ["SemiObliviousRouting"]
