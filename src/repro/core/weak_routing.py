"""The weak-routing dynamic process of Lemma 5.6.

The heart of the paper's analysis is a deletion process: pretend to route
the *entire* special demand over *all* sampled candidate paths at once;
scan the edges in a fixed order; whenever the current edge's congestion
exceeds the allowance ``gamma``, delete every surviving candidate path
through it.  Lemma 5.10 shows the surviving weights route a sub-demand
with congestion at most ``gamma``, and Lemma 5.6 shows that with
exponentially small failure probability at least half of the demand
survives (a *weakly-competitive* routing, Definition 5.4).

This module implements the process faithfully (it is an algorithm, not
just a proof device) so the concentration behaviour can be measured
(experiment E5), and also exposes the repeated-halving reduction of
Lemma 5.8 that turns weak routings into full routings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.path_system import PathSystem
from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import RoutingError
from repro.graphs.network import Network, Path, Vertex, path_edges


@dataclass
class WeakRoutingOutcome:
    """Outcome of one run of the Lemma 5.6 deletion process.

    Attributes
    ----------
    routed_demand:
        The sub-demand ``d'`` that survives with congestion <= gamma.
    routing:
        A routing of ``routed_demand`` on the surviving candidate paths.
    routed_fraction:
        ``siz(d') / siz(d)`` — Lemma 5.6 wants this to be >= 1/2.
    gamma:
        The congestion allowance used.
    deleted_edges:
        Edges that were over-congested and triggered deletions, in
        processing order, with the amount of weight deleted at each.
    succeeded:
        True when at least half the demand survived.
    """

    routed_demand: Demand
    routing: Optional[Routing]
    routed_fraction: float
    gamma: float
    deleted_edges: List[Tuple[Tuple[Vertex, Vertex], float]] = field(default_factory=list)
    succeeded: bool = False


class WeakRoutingProcess:
    """The fixed-edge-order deletion process from the proof of Lemma 5.6.

    Parameters
    ----------
    system:
        The sampled candidate path system ``P``.
    edge_order:
        Optional explicit edge processing order (defaults to the
        network's canonical edge order — any order independent of the
        sample and the demand is valid for the analysis).
    """

    def __init__(self, system: PathSystem, edge_order: Optional[List[Tuple[Vertex, Vertex]]] = None):
        self._system = system
        self._network = system.network
        self._edge_order = list(edge_order) if edge_order is not None else list(self._network.edges)

    @property
    def system(self) -> PathSystem:
        return self._system

    def run(self, demand: Demand, gamma: float) -> WeakRoutingOutcome:
        """Run the deletion process for ``demand`` with congestion allowance ``gamma``.

        Initial weights follow the proof: the (s, t)-demand is divided
        evenly over the pair's candidate paths (for special demands this
        gives weight equal to the sample multiplicity; we use the
        demand/|P(s,t)| split which routes the same totals).
        """
        if gamma <= 0:
            raise RoutingError("gamma must be positive")
        weights: Dict[Tuple[Tuple[Vertex, Vertex], Path], float] = {}
        for pair, amount in demand.items():
            if amount <= 0:
                continue
            paths = self._system.paths(*pair)
            if not paths:
                # No candidate path: this pair's demand is lost immediately.
                continue
            share = amount / len(paths)
            for path in paths:
                weights[(pair, path)] = share

        capacities = {edge: self._network.capacity_of(edge) for edge in self._network.edges}
        deleted_edges: List[Tuple[Tuple[Vertex, Vertex], float]] = []

        for edge in self._edge_order:
            congestion = 0.0
            crossing: List[Tuple[Tuple[Vertex, Vertex], Path]] = []
            for key, weight in weights.items():
                if weight <= 0:
                    continue
                _, path = key
                if edge in path_edges(path):
                    congestion += weight
                    crossing.append(key)
            congestion /= capacities[edge]
            if congestion > gamma:
                removed = 0.0
                for key in crossing:
                    removed += weights[key]
                    weights[key] = 0.0
                deleted_edges.append((edge, removed))

        routed_values: Dict[Tuple[Vertex, Vertex], float] = {}
        distributions: Dict[Tuple[Vertex, Vertex], Dict[Path, float]] = {}
        for (pair, path), weight in weights.items():
            if weight <= 0:
                continue
            routed_values[pair] = routed_values.get(pair, 0.0) + weight
            distributions.setdefault(pair, {})[path] = weight
        routed_demand = Demand(routed_values)
        routing = None
        if distributions:
            normalized = {
                pair: {path: w / sum(bucket.values()) for path, w in bucket.items()}
                for pair, bucket in distributions.items()
            }
            routing = Routing(self._network, normalized)

        total = demand.size()
        routed_fraction = routed_demand.size() / total if total > 0 else 1.0
        return WeakRoutingOutcome(
            routed_demand=routed_demand,
            routing=routing,
            routed_fraction=routed_fraction,
            gamma=gamma,
            deleted_edges=deleted_edges,
            succeeded=routed_fraction >= 0.5,
        )

    # ------------------------------------------------------------------ #
    # Lemma 5.8: weak -> strong by repeated halving
    # ------------------------------------------------------------------ #
    def route_by_halving(
        self,
        demand: Demand,
        gamma: float,
        max_rounds: Optional[int] = None,
    ) -> Tuple[Demand, List[WeakRoutingOutcome]]:
        """Repeatedly route >= 1/4 of the remaining demand (Lemma 5.8 reduction).

        Returns the total routed demand and the per-round outcomes; the
        number of rounds is O(log of demand size), and the combined
        congestion is at most ``gamma * rounds``.
        """
        if max_rounds is None:
            max_rounds = 2 * int(math.ceil(math.log2(max(self._network.num_edges, 2)))) + 4
        remaining = demand
        outcomes: List[WeakRoutingOutcome] = []
        routed_total = Demand.empty()
        for _ in range(max_rounds):
            if remaining.is_empty() or remaining.size() <= demand.size() / max(self._network.num_edges, 2):
                break
            outcome = self.run(remaining, gamma)
            outcomes.append(outcome)
            if outcome.routed_demand.is_empty():
                break
            # Keep pairs where at least a quarter of the remaining demand was routed
            # in full (the d'' of the Lemma 5.8 proof), drop them from the remainder.
            fully_routed_pairs = [
                pair
                for pair in remaining.pairs()
                if outcome.routed_demand.value(*pair) >= 0.25 * remaining.value(*pair)
            ]
            if not fully_routed_pairs:
                break
            routed_chunk = remaining.restricted(fully_routed_pairs)
            routed_total = routed_total + routed_chunk
            remaining = remaining - routed_chunk
        return routed_total, outcomes


__all__ = ["WeakRoutingProcess", "WeakRoutingOutcome"]
