"""Sampling candidate paths from an oblivious routing (Definition 5.2).

The paper's construction is exactly this simple: for every vertex pair,
draw α (or α + cut_G(s, t)) independent samples from the oblivious
routing's path distribution and install the sampled paths as the
candidate set.  Duplicates are kept as a single stored path (a path
system is a set per pair), which only makes the system sparser.

Builders may expose a ``sample_path(source, target, rng)`` method (the
Valiant and Räcke builders do) to sample without materializing the full
distribution; otherwise the materialized distribution is sampled.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.path_system import PathSystem
from repro.core.routing import Routing
from repro.exceptions import RoutingError
from repro.graphs.cuts import CutCache
from repro.graphs.network import Network, Path, Vertex
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.utils.rng import RngLike, ensure_rng

Pair = Tuple[Vertex, Vertex]


def _sample_from_distribution(
    distribution: Dict[Path, float],
    count: int,
    rng: np.random.Generator,
) -> List[Path]:
    paths = list(distribution.keys())
    probabilities = np.array([distribution[path] for path in paths], dtype=float)
    probabilities = probabilities / probabilities.sum()
    indices = rng.choice(len(paths), size=count, replace=True, p=probabilities)
    return [paths[int(index)] for index in indices]


def _network_of(source_of_paths) -> Network:
    """Return the network of a Routing/builder, rejecting anything else."""
    if isinstance(source_of_paths, (Routing, ObliviousRoutingBuilder)):
        return source_of_paths.network
    raise RoutingError(
        "paths must be sampled from a Routing or an ObliviousRoutingBuilder"
    )


def _sample_paths(
    source_of_paths,
    source: Vertex,
    target: Vertex,
    count: int,
    rng: np.random.Generator,
) -> List[Path]:
    """Draw ``count`` paths for a pair from a Routing or a builder."""
    if isinstance(source_of_paths, Routing):
        return _sample_from_distribution(
            source_of_paths.distribution(source, target), count, rng
        )
    if isinstance(source_of_paths, ObliviousRoutingBuilder):
        sampler = getattr(source_of_paths, "sample_path", None)
        if callable(sampler):
            return [sampler(source, target, rng=rng) for _ in range(count)]
        return _sample_from_distribution(
            source_of_paths.pair_distribution(source, target), count, rng
        )
    raise RoutingError(
        "paths must be sampled from a Routing or an ObliviousRoutingBuilder"
    )


def alpha_sample(
    oblivious: "Routing | ObliviousRoutingBuilder",
    alpha: int,
    pairs: Optional[Iterable[Pair]] = None,
    rng: RngLike = None,
) -> PathSystem:
    """An α-sample of an oblivious routing (Definition 5.2).

    Parameters
    ----------
    oblivious:
        The oblivious routing to sample from — a materialized
        :class:`Routing` or an :class:`ObliviousRoutingBuilder`.
    alpha:
        Number of independent samples per pair.
    pairs:
        Pairs to cover (default: every ordered pair of the network).
    rng:
        Randomness (seed, generator or None).
    """
    if alpha < 1:
        raise RoutingError("alpha must be at least 1")
    generator = ensure_rng(rng)
    network = _network_of(oblivious)
    if pairs is None:
        pairs = list(network.vertex_pairs(ordered=True))
    system = PathSystem(network)
    for source, target in pairs:
        if source == target:
            continue
        for path in _sample_paths(oblivious, source, target, alpha, generator):
            system.add_path(source, target, path)
    return system


def alpha_plus_cut_sample(
    oblivious: "Routing | ObliviousRoutingBuilder",
    alpha: int,
    cut_oracle: Optional[Callable[[Vertex, Vertex], float]] = None,
    pairs: Optional[Iterable[Pair]] = None,
    rng: RngLike = None,
) -> PathSystem:
    """An (α + cut_G)-sample of an oblivious routing (Definition 5.2).

    For each pair, ``alpha + cut_G(s, t)`` paths are sampled with
    replacement.  ``cut_oracle`` defaults to a cached exact min-cut
    oracle on the network.
    """
    if alpha < 0:
        raise RoutingError("alpha must be nonnegative")
    generator = ensure_rng(rng)
    network = _network_of(oblivious)
    if cut_oracle is None:
        cut_oracle = CutCache(network)
    if pairs is None:
        pairs = list(network.vertex_pairs(ordered=True))
    system = PathSystem(network)
    for source, target in pairs:
        if source == target:
            continue
        count = alpha + int(round(cut_oracle(source, target)))
        count = max(count, 1)
        for path in _sample_paths(oblivious, source, target, count, generator):
            system.add_path(source, target, path)
    return system


def deterministic_top_paths(
    oblivious: "Routing | ObliviousRoutingBuilder",
    alpha: int,
    pairs: Optional[Iterable[Pair]] = None,
) -> PathSystem:
    """The *deterministic* variant: keep the α most probable paths per pair.

    The paper's Section 1.1 "deterministic routing" consequence notes
    that derandomizing the selection is possible; taking the heaviest α
    support paths of the oblivious routing is the natural deterministic
    selection rule and is what this helper implements (useful as an
    ablation against the randomized sample).
    """
    if alpha < 1:
        raise RoutingError("alpha must be at least 1")
    network = oblivious.network
    if pairs is None:
        pairs = list(network.vertex_pairs(ordered=True))
    system = PathSystem(network)
    for source, target in pairs:
        if source == target:
            continue
        if isinstance(oblivious, Routing):
            distribution = oblivious.distribution(source, target)
        else:
            distribution = oblivious.pair_distribution(source, target)
        ranked = sorted(distribution.items(), key=lambda item: (-item[1], item[0]))
        for path, _ in ranked[:alpha]:
            system.add_path(source, target, path)
    return system


def support_system(oblivious: "Routing | ObliviousRoutingBuilder", pairs: Optional[Iterable[Pair]] = None) -> PathSystem:
    """The full support of the oblivious routing as a path system (no sampling)."""
    network = oblivious.network
    if pairs is None:
        pairs = list(network.vertex_pairs(ordered=True))
    system = PathSystem(network)
    for source, target in pairs:
        if source == target:
            continue
        if isinstance(oblivious, Routing):
            distribution = oblivious.distribution(source, target)
        else:
            distribution = oblivious.pair_distribution(source, target)
        system.add_paths(source, target, distribution.keys())
    return system


__all__ = [
    "alpha_sample",
    "alpha_plus_cut_sample",
    "deterministic_top_paths",
    "support_system",
]
