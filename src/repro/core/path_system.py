"""Path systems (Definition 2.1).

A path system ``P = {P(s, t)}`` assigns to every ordered vertex pair a
finite set of simple (s, t)-paths.  Semi-oblivious routing *is* a path
system: the candidate paths are fixed obliviously, only the rates over
them adapt to the demand.

``PathSystem`` stores paths canonically (tuples of vertices), validates
them against the network, and exposes the sparsity measures used by the
paper: plain α-sparsity and (α + cut_G)-sparsity.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import PathError, RoutingError
from repro.graphs.network import Network, Path, Vertex

Pair = Tuple[Vertex, Vertex]


class PathSystem:
    """A collection of candidate simple paths per ordered vertex pair.

    Parameters
    ----------
    network:
        The underlying network; every stored path is validated against it.
    paths:
        Optional initial mapping ``(s, t) -> iterable of paths``.
    """

    def __init__(
        self,
        network: Network,
        paths: Optional[Mapping[Pair, Iterable[Sequence[Vertex]]]] = None,
    ) -> None:
        self._network = network
        self._paths: Dict[Pair, List[Path]] = {}
        if paths:
            for (source, target), candidates in paths.items():
                for path in candidates:
                    self.add_path(source, target, path)

    @property
    def network(self) -> Network:
        return self._network

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_path(self, source: Vertex, target: Vertex, path: Sequence[Vertex]) -> bool:
        """Add ``path`` to ``P(source, target)``; returns False if already present."""
        if source == target:
            raise PathError("path systems do not store paths from a vertex to itself")
        canonical = self._network.validate_path(path, source=source, target=target)
        bucket = self._paths.setdefault((source, target), [])
        if canonical in bucket:
            return False
        bucket.append(canonical)
        return True

    def add_paths(self, source: Vertex, target: Vertex, paths: Iterable[Sequence[Vertex]]) -> int:
        """Add several paths; returns the number of new paths added."""
        added = 0
        for path in paths:
            if self.add_path(source, target, path):
                added += 1
        return added

    def merge(self, other: "PathSystem") -> "PathSystem":
        """Union of two path systems over the same network (Section 7 uses this)."""
        if other._network is not self._network and other._network.name != self._network.name:
            # Allow equal-topology merges built from distinct Network objects.
            if set(other._network.vertices) != set(self._network.vertices):
                raise RoutingError("cannot merge path systems over different networks")
        merged = PathSystem(self._network)
        for (source, target), paths in self._paths.items():
            merged.add_paths(source, target, paths)
        for (source, target), paths in other._paths.items():
            merged.add_paths(source, target, paths)
        return merged

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def paths(self, source: Vertex, target: Vertex) -> List[Path]:
        """The candidate paths ``P(source, target)`` (empty list when none)."""
        return list(self._paths.get((source, target), []))

    def pairs(self) -> List[Pair]:
        """All pairs with at least one candidate path."""
        return list(self._paths.keys())

    def has_pair(self, source: Vertex, target: Vertex) -> bool:
        return (source, target) in self._paths

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._paths

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def num_paths(self) -> int:
        """Total number of stored paths across all pairs."""
        return sum(len(paths) for paths in self._paths.values())

    def items(self) -> Iterator[Tuple[Pair, List[Path]]]:
        for pair, paths in self._paths.items():
            yield pair, list(paths)

    # ------------------------------------------------------------------ #
    # Sparsity (Definition 2.1)
    # ------------------------------------------------------------------ #
    def sparsity(self) -> int:
        """``max_{s,t} |P(s, t)|`` — the plain sparsity α."""
        if not self._paths:
            return 0
        return max(len(paths) for paths in self._paths.values())

    def is_alpha_sparse(self, alpha: int) -> bool:
        """True when every pair has at most ``alpha`` candidate paths."""
        return self.sparsity() <= alpha

    def is_alpha_plus_cut_sparse(
        self,
        alpha: int,
        cut_oracle: Callable[[Vertex, Vertex], float],
    ) -> bool:
        """True when ``|P(s, t)| <= alpha + cut_G(s, t)`` for every pair."""
        for (source, target), paths in self._paths.items():
            if len(paths) > alpha + cut_oracle(source, target) + 1e-9:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #
    def max_hops(self) -> int:
        """The longest candidate path (dilation upper bound of the system)."""
        longest = 0
        for paths in self._paths.values():
            for path in paths:
                longest = max(longest, len(path) - 1)
        return longest

    def restricted_to_pairs(self, pairs: Iterable[Pair]) -> "PathSystem":
        """A new path system containing only the requested pairs."""
        wanted = set(pairs)
        restricted = PathSystem(self._network)
        for pair, paths in self._paths.items():
            if pair in wanted:
                restricted.add_paths(pair[0], pair[1], paths)
        return restricted

    def without_edge(self, u: Vertex, v: Vertex) -> "PathSystem":
        """A new path system dropping every candidate path through edge {u, v}.

        This is the elementary step of the Lemma 5.6 deletion process.
        """
        from repro.graphs.network import edge_key, path_edges

        banned = edge_key(u, v)
        filtered = PathSystem(self._network)
        for (source, target), paths in self._paths.items():
            kept = [path for path in paths if banned not in path_edges(path)]
            if kept:
                filtered.add_paths(source, target, kept)
        return filtered

    def covers(self, pairs: Iterable[Pair]) -> bool:
        """True when every listed pair has at least one candidate path."""
        return all(pair in self._paths and self._paths[pair] for pair in pairs)

    def __repr__(self) -> str:
        return (
            f"PathSystem(pairs={len(self._paths)}, paths={self.num_paths()}, "
            f"sparsity={self.sparsity()})"
        )


__all__ = ["PathSystem", "Pair"]
