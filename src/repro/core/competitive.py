"""Competitive-ratio evaluation (Stage 5 of the semi-oblivious pipeline).

Given a path system (or an oblivious routing) and a demand, compare the
achieved congestion against the offline optimum ``opt_{G,R}(d)`` computed
by the exact MCF LP.  The helpers here power every experiment table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.path_system import PathSystem
from repro.core.rate_adaptation import optimal_rates
from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import SolverError
from repro.graphs.network import Network
from repro.mcf.lp import min_congestion_lp

_OPT_FLOOR = 1e-12


@dataclass
class CompetitiveReport:
    """Competitiveness of one scheme on one demand.

    Attributes
    ----------
    achieved_congestion:
        Congestion achieved by the evaluated scheme.
    optimal_congestion:
        Offline optimal congestion ``opt_{G,R}(d)``.
    ratio:
        ``achieved / optimal`` (``inf`` when the optimum is 0 but the
        achieved congestion is positive; 1 when both are 0).
    demand_size:
        ``siz(d)`` for context.
    scheme:
        Label of the evaluated scheme.
    """

    achieved_congestion: float
    optimal_congestion: float
    ratio: float
    demand_size: float
    scheme: str = ""


def _ratio(achieved: float, optimal: float) -> float:
    if optimal <= _OPT_FLOOR:
        return 1.0 if achieved <= _OPT_FLOOR else float("inf")
    return achieved / optimal


def routing_congestion(routing: Routing, demand: Demand) -> float:
    """``cong(R, d)`` — thin wrapper kept for API symmetry."""
    return routing.congestion(demand)


def competitive_ratio(
    achieved_congestion: float,
    network: Network,
    demand: Demand,
    optimal_congestion: Optional[float] = None,
) -> float:
    """Ratio of an achieved congestion to the offline optimum for ``demand``."""
    if optimal_congestion is None:
        optimal_congestion = min_congestion_lp(network, demand).congestion
    return _ratio(achieved_congestion, optimal_congestion)


def evaluate_path_system(
    system: PathSystem,
    demand: Demand,
    scheme: str = "semi-oblivious",
    optimal_congestion: Optional[float] = None,
    method: str = "lp",
) -> CompetitiveReport:
    """Adapt rates on ``system`` for ``demand`` and compare to the offline optimum."""
    network = system.network
    if optimal_congestion is None:
        optimal_congestion = min_congestion_lp(network, demand).congestion
    adaptation = optimal_rates(system, demand, method=method)
    return CompetitiveReport(
        achieved_congestion=adaptation.congestion,
        optimal_congestion=optimal_congestion,
        ratio=_ratio(adaptation.congestion, optimal_congestion),
        demand_size=demand.size(),
        scheme=scheme,
    )


def evaluate_oblivious_routing(
    routing: Routing,
    demand: Demand,
    scheme: str = "oblivious",
    optimal_congestion: Optional[float] = None,
) -> CompetitiveReport:
    """Evaluate an oblivious routing (no rate adaptation) against the optimum."""
    network = routing.network
    if optimal_congestion is None:
        optimal_congestion = min_congestion_lp(network, demand).congestion
    achieved = routing.congestion(demand)
    return CompetitiveReport(
        achieved_congestion=achieved,
        optimal_congestion=optimal_congestion,
        ratio=_ratio(achieved, optimal_congestion),
        demand_size=demand.size(),
        scheme=scheme,
    )


@dataclass
class WorstCaseReport:
    """Worst observed competitive ratio over a demand collection."""

    worst_ratio: float
    mean_ratio: float
    reports: List[CompetitiveReport] = field(default_factory=list)

    @property
    def num_demands(self) -> int:
        return len(self.reports)


def worst_case_over_demands(
    system: PathSystem,
    demands: Sequence[Demand],
    scheme: str = "semi-oblivious",
    method: str = "lp",
) -> WorstCaseReport:
    """Evaluate ``system`` over many demands and aggregate the ratios."""
    if not demands:
        raise SolverError("need at least one demand to evaluate")
    reports = [
        evaluate_path_system(system, demand, scheme=scheme, method=method)
        for demand in demands
    ]
    finite = [report.ratio for report in reports if report.ratio != float("inf")]
    worst = max((report.ratio for report in reports), default=float("inf"))
    mean = sum(finite) / len(finite) if finite else float("inf")
    return WorstCaseReport(worst_ratio=worst, mean_ratio=mean, reports=reports)


__all__ = [
    "CompetitiveReport",
    "WorstCaseReport",
    "competitive_ratio",
    "routing_congestion",
    "evaluate_path_system",
    "evaluate_oblivious_routing",
    "worst_case_over_demands",
]
