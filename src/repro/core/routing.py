"""Routings: distributions over paths per vertex pair (Section 4).

A routing ``R = {R(s, t)}`` assigns to every covered pair a probability
distribution over simple (s, t)-paths.  Routing a demand ``d`` puts
weight ``d(s, t) * P[R(s, t) = p]`` on each path ``p``, and the paper's
quality measures follow:

* ``cong(R, d, e)`` — congestion of edge ``e`` (we divide by edge
  capacity so a capacity-``c`` edge behaves like ``c`` parallel edges),
* ``cong(R, d)`` — maximum edge congestion,
* ``dil(R, d)`` — maximum hop length of a used path,
* supports, integrality on a demand, and convex combination of routings
  (the demand-sum Lemma 5.15).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.path_system import PathSystem
from repro.demands.demand import Demand
from repro.exceptions import RoutingError
from repro.graphs.network import Network, Path, Vertex, path_edges

Pair = Tuple[Vertex, Vertex]

_PROBABILITY_TOL = 1e-6


class Routing:
    """A collection of path distributions, one per covered vertex pair.

    Parameters
    ----------
    network:
        The underlying network.
    distributions:
        Mapping ``(s, t) -> {path: probability}``.  Each distribution is
        validated (paths simple and valid, probabilities nonnegative and
        summing to 1 up to a small tolerance, after which they are
        renormalized exactly).
    """

    def __init__(
        self,
        network: Network,
        distributions: Optional[Mapping[Pair, Mapping[Sequence[Vertex], float]]] = None,
    ) -> None:
        self._network = network
        self._distributions: Dict[Pair, Dict[Path, float]] = {}
        self._evaluators: Dict[str, object] = {}
        #: Bumped on every mutation; evaluators snapshot it to detect
        #: staleness (standalone instances outlive the cache clear below).
        self._version = 0
        if distributions:
            for (source, target), distribution in distributions.items():
                self.set_distribution(source, target, distribution)

    @property
    def network(self) -> Network:
        return self._network

    def __getstate__(self):
        # Evaluator caches hold compiled operators (potentially large
        # scipy/numpy matrices); they are rebuildable from the
        # distributions, so pickles ship lean and receivers either
        # recompile lazily or re-seed via :meth:`attach_evaluator`
        # (shared-memory sweep workers do the latter).
        state = self.__dict__.copy()
        state["_evaluators"] = {}
        return state

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def set_distribution(
        self,
        source: Vertex,
        target: Vertex,
        distribution: Mapping[Sequence[Vertex], float],
    ) -> None:
        """Set ``R(source, target)`` to ``distribution`` (validated, normalized)."""
        if source == target:
            raise RoutingError("routings do not cover pairs with identical endpoints")
        cleaned: Dict[Path, float] = {}
        for path, probability in distribution.items():
            probability = float(probability)
            if probability < -1e-12:
                raise RoutingError(f"negative probability {probability} for path {path!r}")
            if probability <= 0:
                continue
            canonical = self._network.validate_path(path, source=source, target=target)
            cleaned[canonical] = cleaned.get(canonical, 0.0) + probability
        if not cleaned:
            raise RoutingError(f"distribution for pair {(source, target)!r} is empty")
        total = sum(cleaned.values())
        if abs(total - 1.0) > _PROBABILITY_TOL:
            raise RoutingError(
                f"probabilities for pair {(source, target)!r} sum to {total}, expected 1"
            )
        self._distributions[(source, target)] = {
            path: probability / total for path, probability in cleaned.items()
        }
        self._version += 1
        self._evaluators.clear()  # compiled/memoized state is now stale

    @classmethod
    def single_path(cls, network: Network, paths: Mapping[Pair, Sequence[Vertex]]) -> "Routing":
        """A deterministic routing using exactly one path per pair."""
        return cls(network, {pair: {tuple(path): 1.0} for pair, path in paths.items()})

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def distribution(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        """The distribution ``R(source, target)``."""
        try:
            return dict(self._distributions[(source, target)])
        except KeyError as exc:
            raise RoutingError(f"routing does not cover pair {(source, target)!r}") from exc

    def covers(self, source: Vertex, target: Vertex) -> bool:
        return (source, target) in self._distributions

    def pairs(self) -> List[Pair]:
        return list(self._distributions.keys())

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._distributions)

    def __len__(self) -> int:
        return len(self._distributions)

    def support(self, source: Vertex, target: Vertex) -> List[Path]:
        """``supp(R(source, target))`` — paths with positive probability."""
        return list(self.distribution(source, target).keys())

    def support_system(self) -> PathSystem:
        """``supp(R)`` as a :class:`PathSystem`."""
        system = PathSystem(self._network)
        for (source, target), distribution in self._distributions.items():
            system.add_paths(source, target, distribution.keys())
        return system

    def support_sparsity(self) -> int:
        """Maximum support size over pairs (the α of an α-sparse oblivious routing)."""
        if not self._distributions:
            return 0
        return max(len(d) for d in self._distributions.values())

    # ------------------------------------------------------------------ #
    # Routing a demand
    # ------------------------------------------------------------------ #
    def weighted_paths(self, demand: Demand) -> List[Tuple[Path, float]]:
        """The weighted path collection obtained by routing ``demand``."""
        weighted: List[Tuple[Path, float]] = []
        for (source, target), amount in demand.items():
            if amount <= 0:
                continue
            distribution = self.distribution(source, target)
            for path, probability in distribution.items():
                weighted.append((path, amount * probability))
        return weighted

    def evaluator(self, backend: str = "dict", tile_pairs=None, memory_budget_mb=None):
        """The cached evaluation backend for this routing.

        ``backend`` is ``"dict"`` (reference loops with a shared
        per-demand memo), ``"sparse"`` (compiled scipy-CSR matmuls, with
        a dense numpy fallback), ``"dense"`` (pure numpy), or ``"auto"``
        (the fastest compiled form available).  Evaluators are cached
        per backend and invalidated when a distribution changes, so a
        (routing, demand) pair is evaluated once however many metrics
        ask for it.  See :mod:`repro.linalg`.

        ``tile_pairs`` / ``memory_budget_mb`` request memory-bounded
        tiled evaluation on the compiled backends (cached separately per
        knob combination; see :mod:`repro.linalg.tiled`).
        """
        if backend != "dict":
            # "auto"/"sparse"/"dense" can resolve to the same compiled
            # form; cache under the resolved name to compile only once.
            from repro.linalg._matrix import resolve_representation

            backend = resolve_representation(backend)
        key = (
            backend
            if tile_pairs is None and memory_budget_mb is None
            else (backend, tile_pairs, memory_budget_mb)
        )
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            from repro.linalg.evaluator import build_evaluator

            evaluator = build_evaluator(
                self, backend, tile_pairs=tile_pairs, memory_budget_mb=memory_budget_mb
            )
            self._evaluators[key] = evaluator
        return evaluator

    def attach_evaluator(self, backend: str, evaluator: object) -> None:
        """Seed the evaluator cache for ``backend`` with a prebuilt instance.

        The shared-memory sweep executor compiles operators once in the
        parent and rebuilds evaluators in workers from zero-copy array
        views; attaching them here makes :meth:`evaluator` (and every
        metric built on it) hit the prebuilt form instead of recompiling.
        ``backend`` must already be resolved (``"sparse"``/``"dense"``/
        ``"dict"``), matching the cache keys :meth:`evaluator` uses.  The
        attachment is invalidated by mutation exactly like a cached
        compile.
        """
        self._evaluators[backend] = evaluator

    def edge_congestions(self, demand: Demand) -> Dict[Tuple[Vertex, Vertex], float]:
        """Per-edge congestion ``cong(R, d, e)`` (load / capacity)."""
        return self.evaluator().edge_congestions(demand)

    def congestion(self, demand: Demand) -> float:
        """``cong(R, d)`` — the maximum edge congestion."""
        return self.evaluator().congestion(demand)

    def dilation(self, demand: Demand) -> int:
        """``dil(R, d)`` — maximum hop length among paths used for ``demand``."""
        return self.evaluator().dilation(demand)

    def max_dilation(self) -> int:
        """Maximum hop length over all paths in the routing's support."""
        longest = 0
        for distribution in self._distributions.values():
            for path in distribution:
                longest = max(longest, len(path) - 1)
        return longest

    def is_integral_on(self, demand: Demand, tolerance: float = 1e-6) -> bool:
        """True when ``d(s, t) * P[R(s, t) = p]`` is an integer for every path."""
        for (source, target), amount in demand.items():
            if not self.covers(source, target):
                return False
            for probability in self.distribution(source, target).values():
                weight = amount * probability
                if abs(weight - round(weight)) > tolerance:
                    return False
        return True

    def is_supported_on(self, system: PathSystem) -> bool:
        """True when every support path belongs to ``system`` (Section 4)."""
        for (source, target), distribution in self._distributions.items():
            allowed = set(system.paths(source, target))
            if any(path not in allowed for path in distribution):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Algebra (Lemma 5.15)
    # ------------------------------------------------------------------ #
    @staticmethod
    def demand_weighted_mix(
        routings: Sequence["Routing"],
        demands: Sequence[Demand],
    ) -> "Routing":
        """The Lemma 5.15 combination of routings for a sum of demands.

        For each pair, the path probabilities are mixed with weights
        proportional to the demands: the resulting routing routes
        ``d = d_1 + ... + d_k`` with congestion at most the sum of the
        individual congestions.
        """
        if not routings or len(routings) != len(demands):
            raise RoutingError("need equally many routings and demands (at least one)")
        network = routings[0].network
        combined: Dict[Pair, Dict[Path, float]] = {}
        totals: Dict[Pair, float] = {}
        for routing, demand in zip(routings, demands):
            for (source, target), amount in demand.items():
                if amount <= 0:
                    continue
                distribution = routing.distribution(source, target)
                bucket = combined.setdefault((source, target), {})
                for path, probability in distribution.items():
                    bucket[path] = bucket.get(path, 0.0) + amount * probability
                totals[(source, target)] = totals.get((source, target), 0.0) + amount
        final: Dict[Pair, Dict[Path, float]] = {}
        for pair, bucket in combined.items():
            total = totals[pair]
            final[pair] = {path: weight / total for path, weight in bucket.items()}
        # Keep coverage for pairs present in some routing but absent from all demands.
        for routing in routings:
            for pair in routing.pairs():
                if pair not in final:
                    final[pair] = routing.distribution(*pair)
        return Routing(network, final)

    def restricted_to_system(self, system: PathSystem) -> "Routing":
        """Drop support paths outside ``system`` and renormalize (per pair).

        Raises :class:`RoutingError` when a covered pair loses all of its
        paths.
        """
        restricted: Dict[Pair, Dict[Path, float]] = {}
        for (source, target), distribution in self._distributions.items():
            allowed = set(system.paths(source, target))
            kept = {path: prob for path, prob in distribution.items() if path in allowed}
            if not kept:
                raise RoutingError(
                    f"restriction removes every path for pair {(source, target)!r}"
                )
            total = sum(kept.values())
            restricted[(source, target)] = {path: prob / total for path, prob in kept.items()}
        return Routing(self._network, restricted)

    def __repr__(self) -> str:
        return f"Routing(pairs={len(self._distributions)}, support_sparsity={self.support_sparsity()})"


def path_usage_counts(routing: Routing, demand: Demand) -> Dict[Tuple[Vertex, Vertex], float]:
    """Total traffic crossing each edge when ``routing`` carries ``demand``.

    Unlike :meth:`Routing.edge_congestions` this returns raw loads, not
    capacity-normalized congestion; useful for utilization reporting.
    Shares the routing's memoized evaluation, so calling it alongside
    :meth:`Routing.congestion` does not redo the path walk.
    """
    return routing.evaluator().edge_loads(demand)


__all__ = ["Routing", "path_usage_counts", "Pair"]
