"""The streaming replay loop: one compiled operator, many timesteps.

:func:`run_stream` plays a demand stream through one routing scheme
under one rerouting policy:

* the policy produces a routing (step 0, on schedule, or forced when a
  demand shift escapes the routing's coverage),
* each routing is compiled **once** into a
  :class:`~repro.linalg.CompiledRouting` and evaluated *incrementally*
  across the steps it stays installed — per-step cost is proportional
  to the stream's delta, not to the demand size,
* per-step congestion flows into a :class:`RollingStreamStats`
  streaming reduction; optionally each step is also normalized against
  the per-step optimal MCF congestion for the time-averaged competitive
  ratio.

:func:`run_stream_comparison` replays the *same* materialized update
sequence under several policies and ranks them — the policy-comparison
report behind ``repro stream run --policy a --policy b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.demands.demand import Demand
from repro.engine.router import congestion_ratio
from repro.exceptions import RoutingError, StreamError
from repro.graphs.network import Network
from repro.linalg._matrix import resolve_representation
from repro.linalg.compiled import CompiledRouting
from repro.obs import NO_OP_SPAN, trace_span
from repro.utils.serialization import dumps as _json_dumps

from repro.stream.incremental import IncrementalStreamEvaluator
from repro.stream.metrics import RollingStreamStats
from repro.stream.policies import PolicyContext, StreamPolicy, build_policy
from repro.stream.sources import DemandStream, StreamUpdate


@dataclass
class StreamRunResult:
    """Outcome of one (stream, scheme, policy) replay."""

    stream: str
    scheme: str
    policy: str
    backend: str
    num_steps: int
    summary: Dict[str, Any] = field(default_factory=dict)
    records: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self, include_steps: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "stream": self.stream,
            "scheme": self.scheme,
            "policy": self.policy,
            "backend": self.backend,
            "num_steps": self.num_steps,
            "summary": dict(self.summary),
        }
        if include_steps:
            payload["steps"] = [dict(record) for record in self.records]
        return payload

    def to_json(self, indent: Optional[int] = 2, include_steps: bool = True) -> str:
        """JSON rendering (NaN/inf become null per strict JSON)."""
        return _json_dumps(self.to_dict(include_steps=include_steps), indent=indent)


@dataclass
class StreamComparison:
    """Several policies replayed over one identical update sequence."""

    network_name: str
    stream: str
    scheme: str
    backend: str
    num_steps: int
    results: Dict[str, StreamRunResult] = field(default_factory=dict)

    def ranking(self) -> List[str]:
        """Policies from best to worst cumulative congestion."""
        return sorted(
            self.results,
            key=lambda name: self.results[name].summary.get(
                "cumulative_congestion", float("inf")
            ),
        )

    def to_dict(self, include_steps: bool = True) -> Dict[str, Any]:
        return {
            "network": self.network_name,
            "stream": self.stream,
            "scheme": self.scheme,
            "backend": self.backend,
            "num_steps": self.num_steps,
            "policies": {
                name: result.to_dict(include_steps=include_steps)
                for name, result in self.results.items()
            },
            "ranking": self.ranking(),
        }

    def to_json(self, indent: Optional[int] = 2, include_steps: bool = True) -> str:
        return _json_dumps(self.to_dict(include_steps=include_steps), indent=indent)

    def render(self) -> str:
        """Plain-text policy table, best cumulative congestion first."""
        header = (
            f"{'policy':26s} {'cum.cong':>10s} {'mean':>8s} {'peak':>8s} "
            f"{'>thr':>6s} {'solves':>7s} {'ratio':>7s}"
        )
        lines = [
            f"{self.network_name}: {self.stream} x {self.scheme}, "
            f"{self.num_steps} steps [{self.backend}]",
            header,
            "-" * len(header),
        ]
        for name in self.ranking():
            summary = self.results[name].summary
            ratio = summary.get("mean_ratio")
            lines.append(
                f"{name:26s} {summary['cumulative_congestion']:10.3f} "
                f"{summary['mean_congestion']:8.3f} {summary['peak_congestion']:8.3f} "
                f"{summary['time_above_threshold']:6.2f} "
                f"{summary['num_resolves']:7d} "
                + (f"{ratio:7.3f}" if ratio is not None and np.isfinite(ratio) else f"{'-':>7s}")
            )
        return "\n".join(lines)


def _materialize(stream: Union[DemandStream, Sequence[StreamUpdate]]) -> List[StreamUpdate]:
    if isinstance(stream, (list, tuple)):
        updates = list(stream)
    else:
        updates = list(stream.updates())
    if not updates:
        raise StreamError("cannot replay an empty demand stream")
    return updates


def _stream_label(stream: Union[DemandStream, Sequence[StreamUpdate]], num_steps: int) -> str:
    describe = getattr(stream, "describe", None)
    if callable(describe):
        return describe()
    return f"updates[{num_steps} steps]"


def run_stream(
    network: Network,
    stream: Union[DemandStream, Sequence[StreamUpdate]],
    router: Any,
    policy: Union[str, StreamPolicy] = "static",
    backend: str = "auto",
    window: int = 16,
    threshold: float = 1.0,
    optimal: Optional[Callable[[Demand], float]] = None,
    optimal_routing: Optional[Callable[[Demand], Any]] = None,
    record_steps: bool = True,
    on_step: Optional[Callable[[int, IncrementalStreamEvaluator, RollingStreamStats], Any]] = None,
    track_loads: bool = False,
    churn_buckets: Optional[int] = None,
) -> StreamRunResult:
    """Replay ``stream`` through ``router`` under one rerouting policy.

    Parameters
    ----------
    network:
        The topology (must be the one ``router`` was installed on).
    stream:
        A :class:`~repro.stream.sources.DemandStream` or an already
        materialized update list (the comparison runner passes the same
        list to every policy).
    router:
        The installed base scheme; ``static``/``semi-oblivious``
        policies route through it.
    policy:
        Policy spec string or ready :class:`StreamPolicy`.
    backend:
        Compiled representation for evaluation — ``"auto"``,
        ``"sparse"`` or ``"dense"``.  The reference ``"dict"`` backend
        has no incremental form and is rejected.
    window / threshold:
        Rolling-window length and overload threshold for the streaming
        statistics.
    optimal:
        Optional ``demand -> optimal congestion`` solver; when given,
        each step also records its competitive ratio and the summary
        gains ``mean_ratio`` / ``worst_ratio`` (the time-averaged
        competitive ratio vs the per-step optimum).
    optimal_routing:
        Optional ``demand -> Routing`` MCF solver for the
        ``periodic``/``threshold`` policies.  Defaults to the exact LP
        when available.
    record_steps:
        Keep per-step records on the result (disable for long streams
        where only the summary matters).
    on_step:
        Optional ``(step, evaluator, stats)`` hook called after every
        absorbed step — the attachment point for online controllers
        such as :class:`~repro.telemetry.WindowedOdmeEstimator`.
    track_loads:
        Retain the raw per-edge load vectors in the rolling window
        (see :meth:`RollingStreamStats.windowed_mean_loads`); required
        by windowed demand estimation.
    churn_buckets:
        When set, quantize every resolved routing into a ``1/k`` ECMP
        forwarding table (:func:`repro.forwarding.quantize_routing`)
        and charge each re-solve its *forwarding-table churn* — the
        number of (pair, node) next-hop sets that changed versus the
        previously installed table (the first table counts in full).
        Resolve steps gain a ``forwarding_churn`` record field and the
        summary gains ``forwarding_churn`` / ``forwarding_rules`` /
        ``churn_buckets`` keys; the default ``None`` leaves records and
        artifacts bit-identical to previous releases.
    """
    if backend == "dict":
        raise StreamError(
            "streaming evaluation requires a compiled backend "
            "('auto', 'sparse' or 'dense'); the dict reference loops have no "
            "incremental form"
        )
    representation = resolve_representation(backend)
    updates = _materialize(stream)

    if optimal_routing is None:
        # Only install the LP-backed default when an LP can actually run:
        # on numpy-only installs the context keeps ``optimal_routing=None``
        # and MCF policies fail fast with the typed StreamError instead of
        # a deep SolverError out of repro.mcf.lp.
        from repro.linalg._matrix import HAVE_SCIPY

        if HAVE_SCIPY:
            def optimal_routing(demand: Demand):  # noqa: F811 - deliberate default
                from repro.mcf.lp import min_congestion_lp

                return min_congestion_lp(network, demand, return_routing=True).routing

    policy = build_policy(policy)
    policy.bind(PolicyContext(network, router, optimal_routing=optimal_routing))
    stats = RollingStreamStats(window=window, threshold=threshold, track_loads=track_loads)

    evaluator: Optional[IncrementalStreamEvaluator] = None
    last_congestion: Optional[float] = None
    forced_resolves = 0
    records: List[Dict[str, Any]] = []
    ratios: List[float] = []

    if churn_buckets is not None:
        # Imported on demand: the forwarding layer sits above the stream
        # runner (same lazy pattern as the registry's realized scheme).
        from repro.forwarding.quantize import forwarding_churn, quantize_routing
    previous_table = None
    churn_total = 0
    step_churn: Optional[int] = None

    # Per-step spans would dominate short steps, so tracing aggregates
    # steps into one ``stream.interval`` span per installed routing
    # (opened at each re-solve, closed at the next one); the interval's
    # ``steps`` counter says how many deltas it absorbed.
    replay_span = trace_span("stream.replay", policy=policy.name, steps=len(updates))
    interval = NO_OP_SPAN
    segment = 0
    with replay_span:
        for update in updates:
            demand = update.demand
            resolved = False
            forced = False
            if evaluator is None or policy.should_resolve(update.step, demand, last_congestion):
                interval.__exit__(None, None, None)
                interval = NO_OP_SPAN
                with trace_span("stream.resolve", step=update.step):
                    routing = policy.resolve(update.step, demand)
                    evaluator = IncrementalStreamEvaluator(
                        CompiledRouting.from_routing(routing, representation=representation)
                    )
                evaluator.set_demand(demand, delta=None)
                resolved = True
            else:
                try:
                    evaluator.set_demand(demand, delta=update.delta)
                except RoutingError:
                    # The stream shifted outside the routing's coverage: a
                    # real controller re-optimizes rather than blackholing
                    # the new flows.  Forced re-solves are reported
                    # separately from scheduled ones.
                    interval.__exit__(None, None, None)
                    interval = NO_OP_SPAN
                    with trace_span("stream.resolve", step=update.step, forced=True):
                        routing = policy.resolve(update.step, demand)
                        evaluator = IncrementalStreamEvaluator(
                            CompiledRouting.from_routing(routing, representation=representation)
                        )
                    evaluator.set_demand(demand, delta=None)
                    resolved = True
                    forced = True
                    forced_resolves += 1
            if resolved:
                if churn_buckets is not None:
                    with trace_span("forwarding.churn", step=update.step) as churn_span:
                        table = quantize_routing(routing, buckets=churn_buckets)
                        step_churn = forwarding_churn(previous_table, table)
                        churn_span.add("changed", step_churn)
                    previous_table = table
                    churn_total += step_churn
                interval = trace_span("stream.interval", segment=segment)
                segment += 1
                interval.__enter__()
            interval.add("steps", 1)
            congestion = evaluator.congestion()
            record = stats.observe(
                congestion,
                evaluator.utilizations(),
                loads=evaluator.loads if track_loads else None,
            )
            record["resolved"] = resolved
            if forced:
                record["forced"] = True
            if resolved and churn_buckets is not None:
                record["forwarding_churn"] = step_churn
            if optimal is not None:
                optimum = float(optimal(demand))
                ratio = congestion_ratio(congestion, optimum)
                record["optimal_congestion"] = optimum
                record["ratio"] = ratio
                ratios.append(ratio)
            if record_steps:
                records.append(record)
            if on_step is not None:
                on_step(update.step, evaluator, stats)
            last_congestion = congestion
        interval.__exit__(None, None, None)
        replay_span.add("resolves", policy.num_resolves)
        replay_span.add("forced_resolves", forced_resolves)

    summary = stats.summary()
    summary["num_resolves"] = policy.num_resolves
    summary["forced_resolves"] = forced_resolves
    if churn_buckets is not None:
        summary["churn_buckets"] = int(churn_buckets)
        summary["forwarding_churn"] = churn_total
        summary["forwarding_rules"] = (
            previous_table.num_rules() if previous_table is not None else 0
        )
    finite = [ratio for ratio in ratios if np.isfinite(ratio)]
    summary["mean_ratio"] = float(np.mean(finite)) if finite else None
    summary["worst_ratio"] = float(np.max(finite)) if finite else None
    return StreamRunResult(
        stream=_stream_label(stream, len(updates)),
        scheme=getattr(router, "name", str(router)),
        policy=policy.name,
        backend=representation,
        num_steps=len(updates),
        summary=summary,
        records=records,
    )


def run_stream_comparison(
    network: Network,
    stream: Union[DemandStream, Sequence[StreamUpdate]],
    router: Any,
    policies: Sequence[Union[str, StreamPolicy]] = ("static",),
    backend: str = "auto",
    window: int = 16,
    threshold: float = 1.0,
    optimal: Optional[Callable[[Demand], float]] = None,
    optimal_routing: Optional[Callable[[Demand], Any]] = None,
    record_steps: bool = True,
    track_loads: bool = False,
    churn_buckets: Optional[int] = None,
) -> StreamComparison:
    """Replay one stream under several policies; identical traffic per policy.

    The stream is materialized once so every policy sees bit-identical
    updates, then each policy runs through :func:`run_stream`.  Policy
    labels must be unique.
    """
    if not policies:
        raise StreamError("need at least one rerouting policy to compare")
    # Label collisions fail fast, before any stream is replayed: two
    # specs may normalize to one name ("periodic(8)" == "periodic(k=8)").
    built = [build_policy(spec) for spec in policies]
    names = [policy.name for policy in built]
    if len(set(names)) != len(names):
        duplicate = next(name for name in names if names.count(name) > 1)
        raise StreamError(f"duplicate policy label {duplicate!r} in comparison")
    if backend == "dict":
        # Same contract as run_stream: reject loudly rather than coerce
        # (RoutingEngine.run_stream is the coercing convenience layer).
        raise StreamError(
            "streaming evaluation requires a compiled backend "
            "('auto', 'sparse' or 'dense'); the dict reference loops have no "
            "incremental form"
        )
    updates = _materialize(stream)
    comparison = StreamComparison(
        network_name=network.name,
        stream=_stream_label(stream, len(updates)),
        scheme=getattr(router, "name", str(router)),
        backend=resolve_representation(backend),
        num_steps=len(updates),
    )
    for policy in built:
        result = run_stream(
            network,
            updates,
            router,
            policy=policy,
            backend=backend,
            window=window,
            threshold=threshold,
            optimal=optimal,
            optimal_routing=optimal_routing,
            record_steps=record_steps,
            track_loads=track_loads,
            churn_buckets=churn_buckets,
        )
        result.stream = comparison.stream
        comparison.results[result.policy] = result
    return comparison


__all__ = ["StreamRunResult", "StreamComparison", "run_stream", "run_stream_comparison"]
