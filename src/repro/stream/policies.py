"""Online rerouting policies for streamed demand.

A *policy* decides, per timestep, whether the forwarding state should
be re-optimized and what routing replaces it.  The stream runner owns
the evaluation loop; the policy only answers two questions —
"should step ``t`` re-solve?" and "what is the routing for this
demand?" — via the small :class:`StreamPolicy` protocol:

* ``static`` — route once at step 0, never re-solve (the pure
  install-once baseline; congestion drifts wherever the stream goes),
* ``periodic(k=8)`` — re-solve the optimal MCF every ``k`` steps (the
  classical TE-controller loop, cf. periodic re-optimization in
  production controllers),
* ``threshold(u=1.0)`` — re-solve the MCF whenever the previous step's
  congestion exceeded ``u`` (reactive re-optimization),
* ``semi-oblivious(every=1)`` — keep the installed candidate-path
  system **fixed** and re-optimize only the splitting ratios every
  ``every`` steps (the paper's semi-oblivious operating point: no
  forwarding-state churn, rate adaptation only).

MCF-based policies obtain their routing through the context's
``optimal_routing`` solver; the ``static`` and ``semi-oblivious``
policies route through the base scheme's :class:`Router`, so they work
on any install (no LP required).  All policies are deterministic given
their context (they draw no random bits).

Forced re-solves: when a policy-provided routing stops covering a
streamed pair (an adversarial shift moved the support), the runner
calls :meth:`StreamPolicy.resolve` outside the policy's own schedule
and counts it separately — see ``forced_resolves`` in the run summary.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple, Union, runtime_checkable

from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import StreamError
from repro.graphs.network import Network


class PolicyContext:
    """What a policy may use to produce routings.

    Parameters
    ----------
    network:
        The topology being streamed over.
    router:
        The base scheme (an installed
        :class:`~repro.engine.router.Router`); ``static`` and
        ``semi-oblivious`` route through it.
    optimal_routing:
        ``demand -> Routing`` solving the optimal MCF (used by
        ``periodic`` and ``threshold``).  ``None`` when no LP solver is
        available — MCF policies then fail fast with a typed error.
    """

    def __init__(
        self,
        network: Network,
        router: Any,
        optimal_routing: Optional[Callable[[Demand], Routing]] = None,
    ) -> None:
        self.network = network
        self.router = router
        self.optimal_routing = optimal_routing


@runtime_checkable
class StreamPolicy(Protocol):
    """Structural interface of an online rerouting policy."""

    name: str
    num_resolves: int

    def bind(self, context: PolicyContext) -> None: ...

    def should_resolve(
        self, step: int, demand: Demand, last_congestion: Optional[float]
    ) -> bool: ...

    def resolve(self, step: int, demand: Demand) -> Routing: ...


class _BasePolicy:
    """Shared bookkeeping: context binding and the re-solve counter.

    ``num_resolves`` counts every routing computation, including the
    step-0 initial solve and any forced re-solves — it is the number of
    times forwarding state was pushed, which is the cost a controller
    actually pays.
    """

    name = "policy"

    def __init__(self) -> None:
        self._context: Optional[PolicyContext] = None
        self.num_resolves = 0

    def bind(self, context: PolicyContext) -> None:
        self._context = context
        self.num_resolves = 0

    @property
    def context(self) -> PolicyContext:
        if self._context is None:
            raise StreamError(f"policy {self.name!r} used before bind()")
        return self._context

    def should_resolve(
        self, step: int, demand: Demand, last_congestion: Optional[float]
    ) -> bool:
        return step == 0

    def resolve(self, step: int, demand: Demand) -> Routing:
        self.num_resolves += 1
        routing = self._solve(step, demand)
        if routing is None:
            raise StreamError(
                f"policy {self.name!r}: scheme {getattr(self.context.router, 'name', '?')!r} "
                "did not expose a routing to compile (pick a scheme whose RouteResult "
                "carries one, e.g. a fixed-ratio or semi-oblivious scheme)"
            )
        return routing

    def _solve(self, step: int, demand: Demand) -> Optional[Routing]:
        return self.context.router.route(demand).routing

    def _mcf(self, demand: Demand) -> Routing:
        solver = self.context.optimal_routing
        if solver is None:
            raise StreamError(
                f"policy {self.name!r} re-solves the optimal MCF, which needs the LP "
                "solver (install the [lp] extra) — use 'static' or 'semi-oblivious' "
                "on LP-free installs"
            )
        return solver(demand)

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, resolves={self.num_resolves})"


class StaticPolicy(_BasePolicy):
    """Route once at step 0 through the base scheme; never re-solve."""

    name = "static"


class PeriodicPolicy(_BasePolicy):
    """Re-solve the optimal MCF every ``k`` steps."""

    def __init__(self, k: int = 8) -> None:
        super().__init__()
        if k < 1:
            raise StreamError(f"periodic policy needs k >= 1, got {k}")
        self.k = int(k)
        self.name = f"periodic(k={self.k})"

    def should_resolve(
        self, step: int, demand: Demand, last_congestion: Optional[float]
    ) -> bool:
        return step % self.k == 0

    def _solve(self, step: int, demand: Demand) -> Routing:
        return self._mcf(demand)


class ThresholdPolicy(_BasePolicy):
    """Re-solve the optimal MCF when congestion crossed ``u``.

    Step 0 always solves (there is no routing yet); afterwards a
    re-solve triggers whenever the *previous* step's congestion
    strictly exceeded ``u`` — the controller reacts to what it last
    measured, it cannot see the current step's congestion before
    routing it.
    """

    def __init__(self, u: float = 1.0) -> None:
        super().__init__()
        if u <= 0:
            raise StreamError(f"threshold policy needs u > 0, got {u}")
        self.u = float(u)
        self.name = f"threshold(u={self.u:g})"

    def should_resolve(
        self, step: int, demand: Demand, last_congestion: Optional[float]
    ) -> bool:
        if step == 0:
            return True
        return last_congestion is not None and last_congestion > self.u

    def _solve(self, step: int, demand: Demand) -> Routing:
        return self._mcf(demand)


class SemiObliviousPolicy(_BasePolicy):
    """Fixed path system, re-split ratios only, every ``every`` steps.

    The forwarding state (the installed candidate paths) never changes;
    a "re-solve" is one rate adaptation on the base scheme — cheap, and
    exactly the semi-oblivious operating point the paper argues stays
    competitive under shifting demand.
    """

    def __init__(self, every: int = 1) -> None:
        super().__init__()
        if every < 1:
            raise StreamError(f"semi-oblivious policy needs every >= 1, got {every}")
        self.every = int(every)
        self.name = f"semi-oblivious(every={self.every})"

    def should_resolve(
        self, step: int, demand: Demand, last_congestion: Optional[float]
    ) -> bool:
        return step % self.every == 0


#: kind -> (constructor, default parameter order, one-line description).
_POLICY_KINDS: Dict[str, Tuple[Callable[..., _BasePolicy], Tuple[str, ...], str]] = {
    "static": (StaticPolicy, (), "route once at step 0, never re-solve"),
    "periodic": (PeriodicPolicy, ("k",), "re-solve the optimal MCF every k steps"),
    "threshold": (ThresholdPolicy, ("u",), "re-solve the MCF when congestion exceeded u"),
    "semi-oblivious": (
        SemiObliviousPolicy,
        ("every",),
        "fixed path system, re-split ratios only, every N steps",
    ),
}

_POLICY_SPEC = re.compile(r"^\s*(?P<kind>[A-Za-z][\w-]*)\s*(?:\((?P<args>.*)\))?\s*$")


def available_policies() -> List[str]:
    """Canonical names of the registered policy kinds."""
    return sorted(_POLICY_KINDS)


def policy_descriptions() -> Dict[str, str]:
    """Name -> one-line description of every registered policy kind."""
    return {name: description for name, (_, _, description) in sorted(_POLICY_KINDS.items())}


def _parse_value(text: str) -> Union[int, float, str]:
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def build_policy(spec: Union[str, StreamPolicy]) -> StreamPolicy:
    """Build a policy from a spec string (``"periodic(k=8)"``-style).

    Accepts ready :class:`StreamPolicy` objects unchanged.  Arguments
    are comma-separated ``key=value`` entries; bare values bind to the
    kind's parameters in declaration order (``periodic(8)`` ==
    ``periodic(k=8)``).  Unknown kinds or malformed arguments raise
    :class:`StreamError`.
    """
    if not isinstance(spec, str):
        if isinstance(spec, StreamPolicy):
            return spec
        raise StreamError(f"cannot interpret {spec!r} as a rerouting policy")
    match = _POLICY_SPEC.match(spec)
    if not match:
        raise StreamError(f"malformed policy spec {spec!r}")
    kind = match.group("kind")
    if kind not in _POLICY_KINDS:
        raise StreamError(f"unknown policy {kind!r}; available: {available_policies()}")
    constructor, positional, _ = _POLICY_KINDS[kind]
    kwargs: Dict[str, Any] = {}
    args_text = match.group("args")
    if args_text and args_text.strip():
        position = 0
        for chunk in args_text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" in chunk:
                key, _, value = chunk.partition("=")
                kwargs[key.strip()] = _parse_value(value)
            else:
                if position >= len(positional):
                    raise StreamError(
                        f"policy {kind!r} takes at most {len(positional)} "
                        f"positional argument(s): {spec!r}"
                    )
                kwargs[positional[position]] = _parse_value(chunk)
                position += 1
    try:
        return constructor(**kwargs)
    except TypeError as error:
        raise StreamError(f"bad parameters for policy {kind!r}: {error}") from error


__all__ = [
    "PolicyContext",
    "StreamPolicy",
    "StaticPolicy",
    "PeriodicPolicy",
    "ThresholdPolicy",
    "SemiObliviousPolicy",
    "available_policies",
    "policy_descriptions",
    "build_policy",
]
