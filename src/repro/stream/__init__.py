"""Streaming traffic replay: demand streams, incremental evaluation,
online rerouting policies.

The temporal layer of the evaluation stack.  Batch evaluation
(:mod:`repro.linalg`) answers "how congested is this snapshot?"; this
package answers "how does a routing *hold up* as demand drifts" —
playing time-series demand streams through a scheme, evaluating each
step incrementally on one compiled operator, and letting a rerouting
policy decide when forwarding state is re-optimized::

    from repro.stream import RandomWalkStream, run_stream_comparison

    stream = RandomWalkStream(network, num_steps=200, seed=0)
    report = run_stream_comparison(
        network, stream, router, policies=["static", "periodic(k=20)"]
    )
    print(report.render())

See ``docs/ARCHITECTURE.md`` ("Streaming layer") for the contracts.
"""

from repro.stream.incremental import IncrementalStreamEvaluator
from repro.stream.metrics import RollingStreamStats
from repro.stream.policies import (
    PeriodicPolicy,
    PolicyContext,
    SemiObliviousPolicy,
    StaticPolicy,
    StreamPolicy,
    ThresholdPolicy,
    available_policies,
    build_policy,
    policy_descriptions,
)
from repro.stream.runner import (
    StreamComparison,
    StreamRunResult,
    run_stream,
    run_stream_comparison,
)
from repro.stream.sources import (
    AdversarialShiftStream,
    DemandStream,
    DiurnalStream,
    FlashCrowdStream,
    RandomWalkStream,
    ReplayStream,
    StreamUpdate,
    available_streams,
    build_stream,
    stream_descriptions,
)

__all__ = [
    "AdversarialShiftStream",
    "DemandStream",
    "DiurnalStream",
    "FlashCrowdStream",
    "IncrementalStreamEvaluator",
    "PeriodicPolicy",
    "PolicyContext",
    "RandomWalkStream",
    "ReplayStream",
    "RollingStreamStats",
    "SemiObliviousPolicy",
    "StaticPolicy",
    "StreamComparison",
    "StreamPolicy",
    "StreamRunResult",
    "StreamUpdate",
    "ThresholdPolicy",
    "available_policies",
    "available_streams",
    "build_policy",
    "build_stream",
    "policy_descriptions",
    "run_stream",
    "run_stream_comparison",
    "stream_descriptions",
]
