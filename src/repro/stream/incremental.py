"""Incremental compiled evaluation: one operator, many timesteps.

Batch evaluation (:mod:`repro.linalg`) answers "what are the edge loads
of this demand?" from scratch: vectorize the demand, multiply by the
pair × edge operator.  A stream asks the same question 500+ times
against the *same* operator with demands that barely change between
steps.  :class:`IncrementalStreamEvaluator` exploits the linearity of
edge loads in the demand::

    loads(d + Δ) = loads(d) + Δ @ M

by maintaining the current demand vector and edge-load vector and
applying only the **delta**: a step that changes ``k`` pairs touches
``k`` rows of ``M`` instead of all of them.  For sparse (CSR) operators
the per-row update indexes straight into the raw ``indptr``/``indices``
/``data`` arrays; for the dense numpy fallback it is one fancy-indexed
``Δ @ M[rows]`` product.  Dense deltas (more than
``full_recompute_fraction`` of the pairs changed at once) fall back to
one full ``vector @ M`` product — never slower than batch evaluation,
and a full recompute also resets any accumulated floating-point drift.

Equivalence contract: at every step the maintained loads match a
from-scratch :meth:`CompiledRouting.edge_load_vector` evaluation of the
current demand within 1e-9 (enforced by ``tests/test_stream.py`` on
both the scipy CSR and the pure-numpy dense legs).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.demands.demand import Demand, Pair
from repro.exceptions import RoutingError
from repro.linalg.compiled import CompiledRouting


class IncrementalStreamEvaluator:
    """Stateful delta evaluation of a demand stream on one compiled routing.

    Parameters
    ----------
    compiled:
        The compiled routing to evaluate against.  The instance is a
        pure consumer: it never mutates the compiled arrays.
    full_recompute_fraction:
        When a single delta changes at least this fraction of the
        compiled pairs, the loads are recomputed as one full
        ``vector @ M`` product instead of row-wise updates (faster for
        dense deltas, and exact — it discards accumulated drift).
    """

    def __init__(
        self,
        compiled: CompiledRouting,
        full_recompute_fraction: float = 1 / 16,
    ) -> None:
        self._compiled = compiled
        self._capacities = compiled.capacities
        self._vector = np.zeros(compiled.num_pairs, dtype=float)
        self._loads = np.zeros(compiled.num_edges, dtype=float)
        self._pair_index = dict(compiled.pair_index)
        self._demand: Demand = Demand.empty()
        self._num_steps = 0
        self._num_full_recomputes = 0
        operator = compiled.pair_edge_operator
        if hasattr(operator, "indptr"):  # scipy CSR
            self._operator = operator
            self._indptr = operator.indptr
            self._indices = operator.indices
            self._data = operator.data
            self._dense_operator: Optional[np.ndarray] = None
        else:
            self._operator = operator
            self._indptr = None
            self._indices = None
            self._data = None
            self._dense_operator = np.asarray(operator, dtype=float)
        self._full_threshold = max(
            1, int(full_recompute_fraction * max(1, compiled.num_pairs))
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def compiled(self) -> CompiledRouting:
        return self._compiled

    @property
    def demand(self) -> Demand:
        """The demand currently loaded into the maintained state."""
        return self._demand

    @property
    def num_steps(self) -> int:
        """How many :meth:`set_demand` calls this evaluator has absorbed."""
        return self._num_steps

    @property
    def num_full_recomputes(self) -> int:
        """How many updates fell back to a full ``vector @ M`` product."""
        return self._num_full_recomputes

    @property
    def loads(self) -> np.ndarray:
        """The maintained per-edge load vector (live view; do not mutate)."""
        return self._loads

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def _apply_rows(self, rows: list, deltas: list) -> None:
        if not rows:
            return
        if len(rows) >= self._full_threshold:
            # Dense delta: one full product beats len(rows) row updates,
            # and recomputing from the vector resets accumulated drift.
            self._loads = np.asarray(
                self._vector @ self._operator, dtype=float
            ).ravel()
            self._num_full_recomputes += 1
            return
        loads = self._loads
        if self._indptr is not None:
            indptr, indices, data = self._indptr, self._indices, self._data
            if len(rows) <= 4:
                for row, delta in zip(rows, deltas):
                    start, stop = indptr[row], indptr[row + 1]
                    loads[indices[start:stop]] += delta * data[start:stop]
            else:
                # One vectorized gather over all touched rows: flat CSR
                # positions are `repeat(starts, counts) + intra-row
                # offsets`, so the whole delta lands in one np.add.at
                # (different rows may share edge columns, hence add.at
                # rather than fancy-index assignment).
                row_arr = np.asarray(rows, dtype=np.int64)
                starts = indptr[row_arr]
                counts = np.asarray(indptr[row_arr + 1] - starts, dtype=np.int64)
                total = int(counts.sum())
                if total:
                    offsets = np.cumsum(counts) - counts
                    flat = np.arange(total, dtype=np.int64) + np.repeat(
                        starts - offsets, counts
                    )
                    contributions = np.repeat(
                        np.asarray(deltas, dtype=float), counts
                    ) * data[flat]
                    np.add.at(loads, indices[flat], contributions)
        else:
            loads += np.asarray(deltas, dtype=float) @ self._dense_operator[rows]

    def _collect(
        self, items: Iterable[Tuple[Pair, float]], missing: str
    ) -> Tuple[list, list]:
        # Resolve and validate every pair BEFORE touching the vector:
        # set_demand is transactional w.r.t. coverage errors, so a
        # caller can catch RoutingError, re-solve, and continue from an
        # uncorrupted state.
        staged: list = []
        pair_index = self._pair_index
        for pair, new_value in items:
            index = pair_index.get(pair)
            if index is None:
                if new_value <= 0 or missing == "drop":
                    continue
                raise RoutingError(f"routing does not cover pair {pair!r}")
            staged.append((index, float(new_value)))
        rows: list = []
        deltas: list = []
        vector = self._vector
        for index, new_value in staged:
            delta = new_value - vector[index]
            if delta == 0.0:
                continue
            vector[index] = new_value
            rows.append(index)
            deltas.append(delta)
        return rows, deltas

    def set_demand(
        self,
        demand: Demand,
        delta: Optional[Mapping[Pair, float]] = None,
        missing: str = "error",
    ) -> np.ndarray:
        """Advance the maintained state to ``demand``; returns the loads.

        ``delta`` is the stream-provided changed-pair mapping
        (``pair -> new value``); when ``None`` the full snapshot is
        diffed against the current state (pairs leaving the support are
        zeroed).  ``missing`` follows the evaluator contract of
        :meth:`CompiledRouting.demand_vector`: a positive-demand pair
        outside the compiled pair index raises
        :class:`~repro.exceptions.RoutingError` unless ``"drop"``.

        The state is transactional with respect to coverage errors: the
        uncovered pair is detected before any load update is applied, so
        a caller may catch the error, re-solve, and continue.
        """
        if delta is None:
            items = {
                self._compiled.pairs[index]: 0.0
                for index in np.flatnonzero(self._vector)
            }
            for pair, amount in demand.items():
                items[pair] = amount
            delta = items
        # Coverage of unchanged pairs needs no re-validation: every pair
        # in the maintained vector entered it through a validated
        # application, so checking the delta alone suffices.
        rows, deltas = self._collect(delta.items(), missing)
        self._apply_rows(rows, deltas)
        self._demand = demand
        self._num_steps += 1
        return self._loads

    def refresh(self) -> np.ndarray:
        """Recompute the loads from the maintained vector (drift reset)."""
        self._loads = np.asarray(self._vector @ self._operator, dtype=float).ravel()
        self._num_full_recomputes += 1
        return self._loads

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def utilizations(self) -> np.ndarray:
        """Per-edge load / capacity for the current state (a fresh array)."""
        return self._loads / self._capacities

    def congestion(self) -> float:
        """Max utilization; infinite when a demanded pair lost every path."""
        if self._compiled.uncovered_demand(self._vector):
            return float("inf")
        if not self._loads.size:
            return 0.0
        return float(np.max(self._loads / self._capacities, initial=0.0))

    def __repr__(self) -> str:
        return (
            f"IncrementalStreamEvaluator(steps={self._num_steps}, "
            f"compiled={self._compiled!r})"
        )


__all__ = ["IncrementalStreamEvaluator"]
