"""Streaming reductions: rolling-window congestion statistics.

Batch metrics (:mod:`repro.te.metrics`) reduce a complete edge-load
array; a stream produces one utilization array per timestep and must
aggregate *as it goes*.  :class:`RollingStreamStats` is that streaming
reduction: it consumes one per-step observation at a time, keeps a
bounded window of recent congestion values, and maintains O(1) running
aggregates — no per-step history is retained unless the caller keeps
the returned records.

Per step it reports max utilization (the congestion), p95/p99 edge
utilization, the windowed maximum congestion, and whether the step
exceeded the utilization threshold; the final :meth:`summary` adds the
cumulative/mean/peak congestion and the fraction of time spent above
the threshold.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

import numpy as np

from repro.exceptions import StreamError

#: Edge-utilization percentiles reported per step.
PERCENTILES = (95.0, 99.0)


class RollingStreamStats:
    """Rolling-window congestion statistics over a metric stream.

    Parameters
    ----------
    window:
        Number of recent steps the windowed maximum covers.
    threshold:
        Utilization level defining "overloaded": steps whose congestion
        strictly exceeds it count toward ``time_above_threshold``.
    track_loads:
        Keep the raw per-edge load vector of the last ``window`` steps
        (O(window · m) state instead of O(window)).  Enables
        :meth:`windowed_mean_loads`, the input to windowed demand
        estimation (:mod:`repro.telemetry.windowed`).
    """

    def __init__(
        self, window: int = 16, threshold: float = 1.0, track_loads: bool = False
    ) -> None:
        if window < 1:
            raise StreamError(f"rolling window must cover at least one step, got {window}")
        if threshold <= 0:
            raise StreamError(f"utilization threshold must be positive, got {threshold}")
        self.window = int(window)
        self.threshold = float(threshold)
        self.track_loads = bool(track_loads)
        self._recent: Deque[float] = deque(maxlen=self.window)
        self._recent_loads: Deque[np.ndarray] = deque(maxlen=self.window)
        self._steps = 0
        self._above = 0
        self._cumulative = 0.0
        self._peak = 0.0

    @property
    def num_steps(self) -> int:
        return self._steps

    def observe(
        self,
        congestion: float,
        utilizations: Optional[np.ndarray] = None,
        loads: Optional[np.ndarray] = None,
    ) -> Dict[str, Any]:
        """Absorb one step; returns the step's metric record.

        ``congestion`` is the step's max utilization (may be ``inf``
        when coverage was lost); ``utilizations`` is the per-edge
        utilization array used for the percentile figures (omitted →
        percentiles are reported as the congestion itself, the only
        consistent degenerate value).  ``loads`` is the raw per-edge
        load vector, retained in the window only when the stats were
        built with ``track_loads=True``.
        """
        congestion = float(congestion)
        self._recent.append(congestion)
        if self.track_loads and loads is not None:
            self._recent_loads.append(np.array(loads, dtype=float, copy=True))
        self._steps += 1
        self._cumulative += congestion
        self._peak = max(self._peak, congestion)
        above = congestion > self.threshold
        if above:
            self._above += 1
        if utilizations is not None and np.size(utilizations):
            percentiles = np.percentile(np.asarray(utilizations, dtype=float), PERCENTILES)
        else:
            percentiles = [congestion for _ in PERCENTILES]
        record: Dict[str, Any] = {
            "step": self._steps - 1,
            "congestion": congestion,
            "windowed_max_congestion": max(self._recent),
            "above_threshold": bool(above),
        }
        for level, value in zip(PERCENTILES, percentiles):
            record[f"p{level:g}_utilization"] = float(value)
        return record

    def windowed_mean_loads(self) -> Optional[np.ndarray]:
        """Mean per-edge load over the tracked window.

        ``None`` when load tracking is off or nothing was observed yet —
        callers needing estimation input should treat that as "run the
        stream with ``track_loads=True``".
        """
        if not self.track_loads or not self._recent_loads:
            return None
        return np.mean(np.stack(tuple(self._recent_loads)), axis=0)

    def summary(self) -> Dict[str, Any]:
        """Aggregates over every observed step (streaming; O(1) state)."""
        steps = self._steps
        return {
            "num_steps": steps,
            "window": self.window,
            "threshold": self.threshold,
            "cumulative_congestion": self._cumulative,
            "mean_congestion": self._cumulative / steps if steps else 0.0,
            "peak_congestion": self._peak,
            "time_above_threshold": self._above / steps if steps else 0.0,
            "windowed_max_congestion": max(self._recent) if self._recent else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"RollingStreamStats(window={self.window}, threshold={self.threshold}, "
            f"steps={self._steps})"
        )


__all__ = ["RollingStreamStats", "PERCENTILES"]
