"""Demand streams: time-ordered demand sequences with explicit deltas.

A *stream* is the temporal analogue of a demand batch: instead of a
static snapshot list, it yields :class:`StreamUpdate` records — the
demand at each timestep **plus the set of pairs whose value changed**
since the previous step.  The delta is what makes incremental compiled
evaluation (:mod:`repro.stream.incremental`) cheap: a timestep that
perturbs 2% of the pairs only touches 2% of the rows of the pair × edge
operator.

Determinism contract
--------------------

Every generator-backed stream derives all randomness from its ``seed``
through :class:`numpy.random.SeedSequence` with a fixed module salt
(:func:`stream_rng`), and consumes it **only** inside ``updates()`` in
step order.  Two streams built with equal parameters therefore produce
bit-identical update sequences, however many times they are replayed —
``updates()`` restarts the sequence from scratch on every call.

Sources
-------

* :class:`DiurnalStream` — sinusoidal day/night modulation of a gravity
  base matrix with per-pair jitter (every pair changes every step; the
  dense extreme of the delta spectrum),
* :class:`RandomWalkStream` — multiplicative random-walk drift touching
  a ``churn`` fraction of a fixed support per step (the sparse-delta
  workload behind ``repro bench stream``),
* :class:`FlashCrowdStream` — a static base with rectangular flash-crowd
  bursts arriving at random and decaying after a fixed duration,
* :class:`AdversarialShiftStream` — worst-of-k SPF stress permutations
  that jump to a fresh permutation every ``shift_every`` steps
  (constant in between; the workload that breaks install-once MCF),
* :class:`ReplayStream` — replays any
  :class:`~repro.demands.traffic_matrix.TrafficMatrixSeries`, diffing
  consecutive snapshots to recover deltas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.demands.demand import Demand, Pair
from repro.demands.traffic_matrix import TrafficMatrixSeries
from repro.exceptions import StreamError
from repro.graphs.network import Network
from repro.utils.rng import RngLike

#: Module salt for :func:`stream_rng`: keeps stream randomness disjoint
#: from the scenario runner's ``(seed, stream, index)`` derivations even
#: when both are keyed off the same integer seed.
_STREAM_SALT = 0x57AE


def stream_rng(seed: RngLike, *tags: int) -> np.random.Generator:
    """The canonical SeedSequence-derived generator of a stream.

    ``seed`` may be an integer (derived through
    ``SeedSequence([_STREAM_SALT, seed, *tags])``), an existing
    ``Generator`` (used as-is — the caller owns determinism), or
    ``None`` (fresh entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(
        np.random.SeedSequence([_STREAM_SALT, int(seed), *[int(tag) for tag in tags]])
    )


@dataclass(frozen=True)
class StreamUpdate:
    """One timestep of a demand stream.

    Attributes
    ----------
    step:
        0-based timestep index.
    demand:
        The full demand snapshot at this step.
    delta:
        Mapping ``pair -> new value`` covering (at least) every pair
        whose value differs from the previous step; pairs leaving the
        support appear with value ``0.0``.  ``None`` means the changed
        set is unknown and consumers must diff the snapshot themselves.
    """

    step: int
    demand: Demand
    delta: Optional[Mapping[Pair, float]] = None


@runtime_checkable
class DemandStream(Protocol):
    """Structural interface of a demand stream.

    Anything with a ``name``, a ``num_steps`` and an ``updates()``
    iterator of :class:`StreamUpdate` is a stream — replaying the same
    stream object twice must yield identical updates.
    """

    name: str
    num_steps: int

    def updates(self) -> Iterator[StreamUpdate]: ...


class _StreamBase:
    """Shared plumbing: iteration, materialization, series export."""

    name: str = "stream"

    def __init__(self, network: Network, num_steps: int, seed: RngLike = None) -> None:
        if num_steps < 1:
            raise StreamError(f"a stream needs at least one step, got {num_steps}")
        self._network = network
        self.num_steps = int(num_steps)
        self._seed = seed

    @property
    def network(self) -> Network:
        return self._network

    def updates(self) -> Iterator[StreamUpdate]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self) -> Iterator[Demand]:
        return (update.demand for update in self.updates())

    def __len__(self) -> int:
        return self.num_steps

    def materialize(self) -> List[StreamUpdate]:
        """The full update sequence as a list (replayable across policies)."""
        return list(self.updates())

    def as_series(self, period_minutes: float = 15.0) -> TrafficMatrixSeries:
        """Collapse the stream into a plain traffic-matrix series.

        This is the bridge into the batch world: scenario grids and
        ``evaluate_matrix_series`` consume the stream as an ordinary
        snapshot sequence (deltas are dropped).
        """
        return TrafficMatrixSeries(
            snapshots=[update.demand for update in self.updates()],
            period_minutes=period_minutes,
        )

    def describe(self) -> str:
        return f"{self.name}[{self.num_steps} steps]"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(steps={self.num_steps})"


def _support_pairs(network: Network, num_pairs: int, rng: np.random.Generator) -> List[Pair]:
    """A deterministic random sample of ``num_pairs`` ordered pairs."""
    pairs = list(network.vertex_pairs(ordered=True))
    if not pairs:
        raise StreamError("network has no ordered vertex pairs to stream demand over")
    if num_pairs >= len(pairs):
        return pairs
    chosen = rng.choice(len(pairs), size=num_pairs, replace=False)
    return [pairs[int(index)] for index in sorted(chosen)]


class DiurnalStream(_StreamBase):
    """Sinusoidal diurnal modulation of a gravity base matrix.

    Every step rescales the whole base matrix by
    ``1 + amplitude * sin(2π step / period)`` and applies per-pair
    multiplicative jitter, so **every pair changes every step** — the
    delta covers the full support.  This is the dense extreme against
    which sparse-delta streams are compared.
    """

    name = "diurnal"

    def __init__(
        self,
        network: Network,
        num_steps: int,
        seed: RngLike = None,
        base_total: float = 10.0,
        amplitude: float = 0.4,
        period: int = 96,
        jitter: float = 0.05,
    ) -> None:
        super().__init__(network, num_steps, seed)
        if not (0 <= amplitude < 1):
            raise StreamError("diurnal amplitude must be in [0, 1)")
        if period < 1:
            raise StreamError("diurnal period must be at least one step")
        if jitter < 0:
            raise StreamError("jitter must be nonnegative")
        self._base_total = float(base_total)
        self._amplitude = float(amplitude)
        self._period = int(period)
        self._jitter = float(jitter)

    def updates(self) -> Iterator[StreamUpdate]:
        from repro.demands.generators import gravity_demand

        rng = stream_rng(self._seed, 0)
        base = gravity_demand(self._network, total=self._base_total, rng=rng)
        pairs = sorted(base.pairs(), key=repr)
        base_values = np.asarray([base.value(*pair) for pair in pairs], dtype=float)
        for step in range(self.num_steps):
            scale = 1.0 + self._amplitude * math.sin(2.0 * math.pi * step / self._period)
            noise = np.maximum(0.0, 1.0 + self._jitter * rng.normal(size=len(pairs)))
            values = base_values * scale * noise
            delta = {pair: float(value) for pair, value in zip(pairs, values)}
            yield StreamUpdate(step=step, demand=Demand(delta), delta=delta)


class RandomWalkStream(_StreamBase):
    """Multiplicative random-walk drift over a fixed demand support.

    A fixed set of ``num_pairs`` ordered pairs starts from exponential
    volumes normalized to ``total``; each step picks
    ``ceil(churn * num_pairs)`` of them and multiplies each by an
    independent log-normal factor ``exp(sigma * N(0, 1))``.  Deltas are
    exactly the perturbed pairs — the canonical sparse-delta workload of
    ``repro bench stream``.
    """

    name = "random-walk"

    def __init__(
        self,
        network: Network,
        num_steps: int,
        seed: RngLike = None,
        num_pairs: int = 256,
        total: float = 10.0,
        churn: float = 0.05,
        sigma: float = 0.3,
    ) -> None:
        super().__init__(network, num_steps, seed)
        if num_pairs < 1:
            raise StreamError("random-walk stream needs at least one demand pair")
        if not (0 < churn <= 1):
            raise StreamError("churn must be in (0, 1]")
        if sigma < 0:
            raise StreamError("sigma must be nonnegative")
        self._num_pairs = int(num_pairs)
        self._total = float(total)
        self._churn = float(churn)
        self._sigma = float(sigma)

    def updates(self) -> Iterator[StreamUpdate]:
        rng = stream_rng(self._seed, 1)
        pairs = _support_pairs(self._network, self._num_pairs, rng)
        raw = rng.exponential(scale=1.0, size=len(pairs))
        raw_total = float(raw.sum())
        values = raw * (self._total / raw_total if raw_total > 0 else 1.0)
        state: Dict[Pair, float] = {
            pair: float(value) for pair, value in zip(pairs, values) if value > 0
        }
        yield StreamUpdate(step=0, demand=Demand(state), delta=dict(state))
        per_step = max(1, math.ceil(self._churn * len(pairs)))
        for step in range(1, self.num_steps):
            chosen = rng.choice(len(pairs), size=per_step, replace=False)
            factors = np.exp(self._sigma * rng.normal(size=per_step))
            delta: Dict[Pair, float] = {}
            for index, factor in zip(chosen, factors):
                pair = pairs[int(index)]
                new_value = state.get(pair, 0.0) * float(factor)
                state[pair] = new_value
                delta[pair] = new_value
            yield StreamUpdate(step=step, demand=Demand(state), delta=delta)


class FlashCrowdStream(_StreamBase):
    """A static gravity base with rectangular flash-crowd bursts.

    Each step, a new burst starts with probability ``burst_rate``: one
    uniformly random support pair is multiplied by ``burst_factor`` for
    ``burst_length`` steps and then falls back to its base volume.
    Deltas contain only the pairs whose burst state flipped.
    """

    name = "flash-crowd"

    def __init__(
        self,
        network: Network,
        num_steps: int,
        seed: RngLike = None,
        base_total: float = 10.0,
        num_pairs: int = 256,
        burst_rate: float = 0.2,
        burst_factor: float = 8.0,
        burst_length: int = 8,
    ) -> None:
        super().__init__(network, num_steps, seed)
        if not (0 <= burst_rate <= 1):
            raise StreamError("burst_rate must be in [0, 1]")
        if burst_factor <= 0:
            raise StreamError("burst_factor must be positive")
        if burst_length < 1:
            raise StreamError("burst_length must be at least one step")
        self._base_total = float(base_total)
        self._num_pairs = int(num_pairs)
        self._burst_rate = float(burst_rate)
        self._burst_factor = float(burst_factor)
        self._burst_length = int(burst_length)

    def updates(self) -> Iterator[StreamUpdate]:
        rng = stream_rng(self._seed, 2)
        pairs = _support_pairs(self._network, self._num_pairs, rng)
        raw = rng.exponential(scale=1.0, size=len(pairs))
        raw_total = float(raw.sum())
        base: Dict[Pair, float] = {
            pair: float(value) * (self._base_total / raw_total if raw_total > 0 else 1.0)
            for pair, value in zip(pairs, raw)
            if value > 0
        }
        state: Dict[Pair, float] = dict(base)
        remaining: Dict[Pair, int] = {}
        yield StreamUpdate(step=0, demand=Demand(state), delta=dict(state))
        for step in range(1, self.num_steps):
            delta: Dict[Pair, float] = {}
            for pair in list(remaining):
                remaining[pair] -= 1
                if remaining[pair] <= 0:
                    del remaining[pair]
                    state[pair] = base.get(pair, 0.0)
                    delta[pair] = state[pair]
            if base and rng.random() < self._burst_rate:
                pair = pairs[int(rng.integers(len(pairs)))]
                if pair not in remaining and pair in base:
                    remaining[pair] = self._burst_length
                    state[pair] = base[pair] * self._burst_factor
                    delta[pair] = state[pair]
            yield StreamUpdate(step=step, demand=Demand(state), delta=delta)


class AdversarialShiftStream(_StreamBase):
    """Adversarially shifting permutations: a fresh worst-of-k SPF stress
    permutation every ``shift_every`` steps, constant in between.

    The semi-oblivious stability workload: a routing optimized for one
    shift is blindsided by the next (the support changes wholesale), so
    install-once MCF policies are forced to re-solve while fixed path
    systems only re-split.
    """

    name = "adversarial-shift"

    def __init__(
        self,
        network: Network,
        num_steps: int,
        seed: RngLike = None,
        shift_every: int = 16,
        num_trials: int = 8,
        scale: float = 1.0,
    ) -> None:
        super().__init__(network, num_steps, seed)
        if shift_every < 1:
            raise StreamError("shift_every must be at least one step")
        if scale <= 0:
            raise StreamError("scale must be positive")
        self._shift_every = int(shift_every)
        self._num_trials = int(num_trials)
        self._scale = float(scale)

    def updates(self) -> Iterator[StreamUpdate]:
        from repro.demands.adversarial import spf_stress_permutation

        rng = stream_rng(self._seed, 3)
        current: Optional[Demand] = None
        for step in range(self.num_steps):
            if step % self._shift_every == 0:
                fresh = spf_stress_permutation(
                    self._network, num_trials=self._num_trials, rng=rng
                ).scaled(self._scale)
                delta: Dict[Pair, float] = (
                    {} if current is None else {pair: 0.0 for pair in current.pairs()}
                )
                for pair, amount in fresh.items():
                    delta[pair] = amount
                current = fresh
                yield StreamUpdate(step=step, demand=current, delta=delta)
            else:
                yield StreamUpdate(step=step, demand=current, delta={})


class ReplayStream(_StreamBase):
    """Replay a :class:`TrafficMatrixSeries` as a stream.

    Deltas are recovered by diffing consecutive snapshots: an entry is
    emitted for every pair whose value changed (dropped pairs appear
    with ``0.0``), so replayed series evaluate just as incrementally as
    native streams when their snapshots overlap.
    """

    name = "replay"

    def __init__(
        self,
        series: TrafficMatrixSeries,
        name: str = "replay",
        network: Optional[Network] = None,
    ) -> None:
        if not len(series):
            raise StreamError("cannot replay an empty traffic matrix series")
        # A series carries no topology reference, so the base ``network``
        # accessor only works when the caller supplies one.
        self._network = network
        self._seed = None
        self._series = series
        self.name = name
        self.num_steps = len(series)

    @property
    def series(self) -> TrafficMatrixSeries:
        return self._series

    def updates(self) -> Iterator[StreamUpdate]:
        previous: Optional[Demand] = None
        for step, snapshot in enumerate(self._series):
            if previous is None:
                delta = {pair: amount for pair, amount in snapshot.items()}
            else:
                delta = {}
                for pair in previous.pairs():
                    new_value = snapshot.value(*pair)
                    if new_value != previous.value(*pair):
                        delta[pair] = new_value
                for pair, amount in snapshot.items():
                    if previous.value(*pair) != amount:
                        delta[pair] = amount
            previous = snapshot
            yield StreamUpdate(step=step, demand=snapshot, delta=delta)

    def materialize(self) -> List[StreamUpdate]:
        return list(self.updates())

    def describe(self) -> str:
        return f"{self.name}[{self.num_steps} snapshots]"


# --------------------------------------------------------------------- #
# Registry (the CLI and scenario axes build streams by name)
# --------------------------------------------------------------------- #
def _build_replay_diurnal(network: Network, num_steps: int, seed: RngLike, **params) -> ReplayStream:
    from repro.demands.traffic_matrix import diurnal_gravity_series

    series = diurnal_gravity_series(
        network,
        num_snapshots=num_steps,
        base_total=float(params.pop("total", 10.0)),
        rng=stream_rng(seed, 4),
        **params,
    )
    return ReplayStream(series, name="replay-diurnal")


_STREAM_KINDS: Dict[str, Tuple[Callable[..., DemandStream], str]] = {
    "diurnal": (DiurnalStream, "sinusoidal gravity modulation with jitter (dense deltas)"),
    "random-walk": (RandomWalkStream, "multiplicative drift on a fixed support (sparse deltas)"),
    "flash-crowd": (FlashCrowdStream, "static base with rectangular burst events"),
    "adversarial-shift": (AdversarialShiftStream, "fresh SPF stress permutation every k steps"),
    "replay-diurnal": (_build_replay_diurnal, "replay of a diurnal_gravity_series via ReplayStream"),
}


def available_streams() -> List[str]:
    """Canonical names of the registered stream kinds."""
    return sorted(_STREAM_KINDS)


def stream_descriptions() -> Dict[str, str]:
    """Name -> one-line description of every registered stream kind."""
    return {name: description for name, (_, description) in sorted(_STREAM_KINDS.items())}


def build_stream(
    kind: str,
    network: Network,
    num_steps: int,
    seed: RngLike = None,
    **params: Any,
) -> DemandStream:
    """Construct a registered stream kind by name.

    Unknown kinds and unknown parameters raise :class:`StreamError`
    (the registry is the CLI's and the scenario axis' entry point, so
    typos must fail fast with the available choices spelled out).
    """
    if kind not in _STREAM_KINDS:
        raise StreamError(f"unknown stream kind {kind!r}; available: {available_streams()}")
    factory, _ = _STREAM_KINDS[kind]
    try:
        return factory(network, num_steps, seed, **params)
    except TypeError as error:
        raise StreamError(f"bad parameters for stream {kind!r}: {error}") from error


__all__ = [
    "DemandStream",
    "StreamUpdate",
    "DiurnalStream",
    "RandomWalkStream",
    "FlashCrowdStream",
    "AdversarialShiftStream",
    "ReplayStream",
    "available_streams",
    "stream_descriptions",
    "build_stream",
    "stream_rng",
]
