"""The ``stream`` bench target: incremental vs per-step batch evaluation.

Plays one :class:`~repro.stream.sources.RandomWalkStream` over a
shortest-path routing on a 2-D torus and evaluates every timestep two
ways against the *same* compiled operator:

``batch``
    From scratch per step — vectorize the full demand, one
    ``vector @ M`` product, then the rolling metrics.  This is what
    re-running the PR-3 batch backend once per timestep costs.

``incremental``
    The streaming layer — apply the step's delta to the maintained
    demand/load vectors (touching only the changed rows of ``M``), then
    the same rolling metrics.

Both legs consume one pre-materialized update list (stream generation
is excluded from both timings) and produce identical per-step metric
records up to float associativity; the artifact reports the measured
maximum absolute congestion difference alongside the speedup.

The committed ``BENCH_stream.json`` baseline is the ``full`` scale:
a 15×15 torus (225 vertices ≥ 200) over 600 timesteps (≥ 500).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.graphs.topologies import torus_2d
from repro.linalg.bench import (
    BENCH_SCHEMA,
    _shortest_path_routing,
    environment_info,
    register_bench,
)
from repro.linalg.compiled import CompiledRouting
from repro.utils.timing import Stopwatch, timing_entry

from repro.stream.incremental import IncrementalStreamEvaluator
from repro.stream.metrics import RollingStreamStats
from repro.stream.sources import RandomWalkStream

#: Per-scale (torus side, timesteps, support pairs, churn fraction).
#: ``full`` is the committed baseline: a 15x15 torus has 225 vertices
#: (>= 200) and the stream runs 600 timesteps (>= 500), matching the
#: acceptance criteria.
_STREAM_SCALES: Dict[str, Tuple[int, int, int, float]] = {
    "smoke": (6, 120, 200, 0.05),
    "small": (10, 250, 600, 0.03),
    "full": (15, 600, 1500, 0.02),
}

_WINDOW = 32
_THRESHOLD = 1.0


def bench_stream(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Streaming replay: per-step batch recompute vs incremental deltas."""
    side, num_steps, num_pairs, churn = _STREAM_SCALES[scale]
    network = torus_2d(side)
    routing = _shortest_path_routing(network)
    stream = RandomWalkStream(
        network, num_steps, seed=seed, num_pairs=num_pairs, churn=churn
    )
    updates = stream.materialize()

    with Stopwatch() as compile_watch:
        compiled = CompiledRouting.from_routing(routing, representation="sparse")
    capacities = compiled.capacities

    # Both timed loops do identical work around the evaluation itself:
    # congestion reduction plus the O(1) rolling-window observation.
    # Per-step percentile reductions cost the same on either leg (they
    # consume the same utilization array), so they would only dilute the
    # evaluation speedup being measured; the runner still computes them.
    batch_stats = RollingStreamStats(window=_WINDOW, threshold=_THRESHOLD)
    batch_congestions: List[float] = []
    with Stopwatch() as batch_watch:
        for update in updates:
            loads = compiled.edge_load_vector(update.demand)
            congestion = float(np.max(loads / capacities, initial=0.0))
            batch_stats.observe(congestion)
            batch_congestions.append(congestion)
    batch_seconds = batch_watch.elapsed

    incremental = IncrementalStreamEvaluator(compiled)
    incremental_stats = RollingStreamStats(window=_WINDOW, threshold=_THRESHOLD)
    incremental_congestions: List[float] = []
    with Stopwatch() as incremental_watch:
        for update in updates:
            incremental.set_demand(update.demand, delta=update.delta)
            congestion = incremental.congestion()
            incremental_stats.observe(congestion)
            incremental_congestions.append(congestion)
    incremental_seconds = incremental_watch.elapsed

    max_diff = float(
        np.max(
            np.abs(np.asarray(batch_congestions) - np.asarray(incremental_congestions)),
            initial=0.0,
        )
    )
    steps = len(updates)
    return {
        "schema": BENCH_SCHEMA,
        "name": "stream",
        "scale": scale,
        "seed": seed,
        "network": {"name": network.name, "n": network.num_vertices, "m": network.num_edges},
        "workload": {
            "stream": stream.describe(),
            "num_steps": steps,
            "support_pairs": num_pairs,
            "churn": churn,
            "num_pairs": compiled.num_pairs,
            "num_paths": compiled.num_paths,
            "window": _WINDOW,
            "threshold": _THRESHOLD,
        },
        "backends": {
            "batch": {
                "backend": f"batch-{compiled.representation}",
                **timing_entry(batch_seconds, count=steps, rate_key="steps_per_sec"),
            },
            "incremental": {
                "backend": f"incremental-{compiled.representation}",
                **timing_entry(
                    incremental_seconds,
                    count=steps,
                    rate_key="steps_per_sec",
                    compile_seconds=compile_watch.elapsed,
                    full_recomputes=incremental.num_full_recomputes,
                ),
            },
        },
        "speedup_incremental_over_batch": (
            batch_seconds / incremental_seconds if incremental_seconds > 0 else None
        ),
        "max_abs_difference": max_diff,
        "environment": environment_info(),
    }


# overwrite=True keeps module re-imports (test reloads) idempotent.
register_bench(
    "stream",
    bench_stream,
    "streaming replay: incremental deltas vs per-step batch recompute",
    overwrite=True,
)

__all__ = ["bench_stream"]
