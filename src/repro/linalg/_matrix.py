"""Minimal sparse-matrix shim: scipy CSR when available, dense numpy otherwise.

The compiled evaluation backend (:mod:`repro.linalg.compiled`) only needs
three operations — build a matrix from COO triplets, matrix @ matrix /
matrix @ vector products, and densification — all of which work through
the same ``@`` operator for both ``scipy.sparse.csr_matrix`` and plain
``numpy.ndarray``.  Keeping the representation choice behind this shim is
what lets ``setup.py`` declare scipy as an *extra*: a numpy-only install
still gets the full compiled backend, just with dense operators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import LinalgError

try:  # pragma: no cover - exercised via the dense representation tests
    from scipy import sparse as _scipy_sparse

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is present in CI
    _scipy_sparse = None
    HAVE_SCIPY = False

#: Matrix representations understood by :func:`build_matrix`.
REPRESENTATIONS = ("sparse", "dense")


def resolve_representation(representation: str) -> str:
    """Normalize a representation name, falling back to dense without scipy."""
    if representation == "auto":
        return "sparse" if HAVE_SCIPY else "dense"
    if representation not in REPRESENTATIONS:
        raise LinalgError(
            f"unknown matrix representation {representation!r}; "
            f"available: {REPRESENTATIONS + ('auto',)}"
        )
    if representation == "sparse" and not HAVE_SCIPY:
        return "dense"
    return representation


def build_matrix(
    rows: Sequence[int],
    cols: Sequence[int],
    data: Sequence[float],
    shape: tuple,
    representation: str,
):
    """A ``shape`` matrix with ``data`` at ``(rows, cols)`` (duplicates summed)."""
    representation = resolve_representation(representation)
    if representation == "sparse":
        matrix = _scipy_sparse.csr_matrix(
            (np.asarray(data, dtype=float), (np.asarray(rows), np.asarray(cols))),
            shape=shape,
        )
        matrix.sum_duplicates()
        return matrix
    dense = np.zeros(shape, dtype=float)
    if len(data):
        np.add.at(dense, (np.asarray(rows), np.asarray(cols)), np.asarray(data, dtype=float))
    return dense


def to_dense(matrix) -> np.ndarray:
    """Densify either representation into a contiguous ndarray."""
    if hasattr(matrix, "toarray"):
        return np.asarray(matrix.toarray(), dtype=float)
    return np.asarray(matrix, dtype=float)


def matvec(matrix, vector: np.ndarray) -> np.ndarray:
    """``vector @ matrix`` as a flat ndarray (row-vector convention)."""
    result = vector @ matrix
    return np.asarray(result, dtype=float).ravel()


__all__ = [
    "HAVE_SCIPY",
    "REPRESENTATIONS",
    "resolve_representation",
    "build_matrix",
    "to_dense",
    "matvec",
]
