"""Pluggable evaluation backends for routings.

Every quality measure downstream of :class:`~repro.core.routing.Routing`
— congestion, per-edge utilizations, dilation, throughput — funnels
through an *evaluator*.  Two interchangeable backends implement the same
contract:

``dict``
    The reference implementation: the original per-demand Python loops
    over ``Dict[Path, float]`` distributions, now with a small
    per-(routing, demand) memo so one (routing, demand) pair is
    evaluated exactly once no matter how many metrics ask for it.

``sparse`` (and its pure-numpy twin ``dense``)
    The compiled backend of :mod:`repro.linalg.compiled`: one sparse
    matmul per demand batch.  ``sparse`` uses scipy CSR matrices and
    silently falls back to ``dense`` when scipy is not installed.

The backends are numerically equivalent within 1e-9 (enforced by the
randomized suite in ``tests/test_linalg_equivalence.py``); they are not
bit-identical because float summation order differs.

Contract
--------

* ``edge_loads(demand)`` / ``edge_congestions(demand)`` — per-edge raw
  loads / capacity-normalized utilizations as dicts keyed by canonical
  edge (only edges with nonzero load appear);
* ``congestion(demand)`` / ``dilation(demand)`` — the scalar measures;
* ``edge_load_matrix(demands)`` / ``congestions(demands)`` — batched
  variants returning numpy arrays (batch × edge, and batch-length);
* a demanded pair the routing does not cover raises
  :class:`~repro.exceptions.RoutingError` in every backend; zero-amount
  entries are ignored.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.exceptions import LinalgError
from repro.graphs.network import Edge, path_edges
from repro.linalg.compiled import CompiledRouting
from repro.obs import trace_span

#: Backend names accepted by :func:`build_evaluator`.
BACKENDS = ("dict", "sparse", "dense")

#: The full set of backend selectors (CLI flags, ``run_suite``,
#: ``Routing.evaluator``): the concrete backends plus ``"auto"``.
BACKEND_CHOICES = BACKENDS + ("auto",)

#: How many distinct demands the dict backend memoizes per routing.
_DICT_CACHE_SIZE = 16


def available_backends() -> List[str]:
    """Evaluation backends usable in this environment (``sparse`` always
    resolves — to scipy CSR when available, dense numpy otherwise)."""
    return list(BACKENDS)


@runtime_checkable
class Evaluator(Protocol):
    """Structural interface of an evaluation backend."""

    backend: str

    def edge_loads(self, demand) -> Dict[Edge, float]: ...

    def edge_congestions(self, demand) -> Dict[Edge, float]: ...

    def congestion(self, demand) -> float: ...

    def dilation(self, demand) -> int: ...

    def edge_load_matrix(self, demands: Sequence) -> np.ndarray: ...

    def congestions(self, demands: Sequence) -> np.ndarray: ...


@dataclass
class _Evaluation:
    """One shared evaluation of a (routing, demand) pair."""

    loads: Dict[Edge, float]
    congestion: float
    dilation: int


class DictEvaluator:
    """Reference backend: the original dict loops plus a shared memo.

    The memo is keyed by the (hashable, immutable) demand and bounded,
    so `congestion`, `edge_congestions`, `dilation` and the TE metrics
    evaluate a given (routing, demand) pair once instead of rebuilding
    the edge-load dict per call.
    """

    backend = "dict"

    def __init__(self, routing, cache_size: int = _DICT_CACHE_SIZE) -> None:
        self._routing = routing
        self._cache: "OrderedDict" = OrderedDict()
        self._cache_size = cache_size
        self._routing_version = getattr(routing, "_version", 0)

    @property
    def routing(self):
        return self._routing

    def _evaluate(self, demand) -> _Evaluation:
        version = getattr(self._routing, "_version", 0)
        if version != self._routing_version:
            # The routing mutated under us (standalone evaluators outlive
            # Routing's own cache clear): drop the stale memo.
            self._cache.clear()
            self._routing_version = version
        cached = self._cache.get(demand)
        if cached is not None:
            self._cache.move_to_end(demand)
            return cached
        network = self._routing.network
        loads: Dict[Edge, float] = {}
        longest = 0
        for (source, target), amount in demand.items():
            if amount <= 0:
                continue
            distribution = self._routing.distribution(source, target)
            for path, probability in distribution.items():
                if probability <= 0:
                    continue
                longest = max(longest, len(path) - 1)
                weight = amount * probability
                for edge in path_edges(path):
                    loads[edge] = loads.get(edge, 0.0) + weight
        worst = 0.0
        for edge, load in loads.items():
            worst = max(worst, load / network.capacity_of(edge))
        evaluation = _Evaluation(loads=loads, congestion=worst, dilation=longest)
        self._cache[demand] = evaluation
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return evaluation

    def edge_loads(self, demand) -> Dict[Edge, float]:
        return dict(self._evaluate(demand).loads)

    def edge_congestions(self, demand) -> Dict[Edge, float]:
        network = self._routing.network
        return {
            edge: load / network.capacity_of(edge)
            for edge, load in self._evaluate(demand).loads.items()
        }

    def congestion(self, demand) -> float:
        return self._evaluate(demand).congestion

    def dilation(self, demand) -> int:
        return self._evaluate(demand).dilation

    def edge_load_matrix(self, demands: Sequence) -> np.ndarray:
        network = self._routing.network
        edges = network.edges
        matrix = np.zeros((len(demands), len(edges)), dtype=float)
        for row, demand in enumerate(demands):
            loads = self._evaluate(demand).loads
            for edge, load in loads.items():
                matrix[row, network.edge_index(*edge)] = load
        return matrix

    def congestions(self, demands: Sequence) -> np.ndarray:
        with trace_span("linalg.batched_evaluate", backend=self.backend) as span:
            span.add("demands", len(demands))
            return np.array(
                [self._evaluate(demand).congestion for demand in demands], dtype=float
            )

    def clear_cache(self) -> None:
        self._cache.clear()

    def __repr__(self) -> str:
        return f"DictEvaluator(routing={self._routing!r}, cached={len(self._cache)})"


class SparseEvaluator:
    """Compiled backend: evaluation as (batched) sparse linear algebra.

    The compiled form is a snapshot: when built via :meth:`from_routing`
    the evaluator remembers the routing's version and raises
    :class:`LinalgError` if the routing mutates afterwards — a stale
    compile must be rebuilt, never silently served.
    """

    def __init__(self, compiled: CompiledRouting, source_routing=None) -> None:
        self._compiled = compiled
        self.backend = compiled.representation
        self._source_routing = source_routing
        self._source_version = getattr(source_routing, "_version", 0)

    @classmethod
    def from_routing(
        cls,
        routing,
        representation: str = "auto",
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> "SparseEvaluator":
        """Compile and wrap ``routing``.

        ``tile_pairs`` / ``memory_budget_mb`` enable memory-bounded
        tiled evaluation (see :meth:`CompiledRouting.from_routing`): the
        pair × edge operator stays implicit and every batch streams over
        fixed-budget pair tiles.  The knobs survive :meth:`rebased`.
        """
        return cls(
            CompiledRouting.from_routing(
                routing,
                representation=representation,
                tile_pairs=tile_pairs,
                memory_budget_mb=memory_budget_mb,
            ),
            source_routing=routing,
        )

    @property
    def compiled(self) -> CompiledRouting:
        return self._compiled

    def _check_fresh(self) -> None:
        if self._source_routing is None:
            return
        if getattr(self._source_routing, "_version", 0) != self._source_version:
            raise LinalgError(
                "the routing mutated after compilation; rebuild the evaluator "
                "(routing.evaluator(...) re-compiles automatically)"
            )

    def edge_loads(self, demand) -> Dict[Edge, float]:
        self._check_fresh()
        loads = self._compiled.edge_load_vector(demand)
        edges = self._compiled.network.edges
        return {edges[i]: float(loads[i]) for i in np.flatnonzero(loads)}

    def edge_congestions(self, demand) -> Dict[Edge, float]:
        self._check_fresh()
        loads = self._compiled.edge_load_vector(demand)
        capacities = self._compiled.capacities
        edges = self._compiled.network.edges
        return {edges[i]: float(loads[i] / capacities[i]) for i in np.flatnonzero(loads)}

    def congestion(self, demand) -> float:
        self._check_fresh()
        return self._compiled.congestion(demand)

    def dilation(self, demand) -> int:
        self._check_fresh()
        return self._compiled.dilation(demand)

    def edge_load_matrix(self, demands: Sequence) -> np.ndarray:
        self._check_fresh()
        return self._compiled.edge_load_matrix(demands)

    def congestions(self, demands: Sequence) -> np.ndarray:
        self._check_fresh()
        with trace_span("linalg.batched_evaluate", backend=self.backend) as span:
            span.add("demands", len(demands))
            return self._compiled.congestions(demands)

    def demand_matrix(self, demands: Sequence):
        """(batch × pair) matrix reusable across this evaluator's rebases."""
        self._check_fresh()
        return self._compiled.demand_matrix(demands)

    def congestions_from_matrix(self, batch) -> np.ndarray:
        self._check_fresh()
        return self._compiled.congestions_from_matrix(batch)

    def coverage(self, demand) -> float:
        self._check_fresh()
        return self._compiled.coverage(demand)

    def rebased(self, event) -> "SparseEvaluator":
        """The evaluator for the post-failure renormalized routing (memoized)."""
        self._check_fresh()
        rebased = self._compiled.rebased(event)
        if rebased is self._compiled:
            return self
        return SparseEvaluator(
            rebased,
            source_routing=self._source_routing,
        )

    def __repr__(self) -> str:
        return f"SparseEvaluator(backend={self.backend!r}, compiled={self._compiled!r})"


def build_evaluator(
    routing,
    backend: str = "auto",
    tile_pairs: Optional[int] = None,
    memory_budget_mb: Optional[float] = None,
) -> Evaluator:
    """Construct an evaluation backend for ``routing``.

    ``backend`` is one of ``"dict"`` (reference loops), ``"sparse"``
    (scipy CSR, dense fallback), ``"dense"`` (pure numpy), or ``"auto"``
    (the fastest available compiled form).

    ``tile_pairs`` / ``memory_budget_mb`` bound the peak memory of
    batched evaluation on the compiled backends by streaming over
    pair-dimension tiles (:mod:`repro.linalg.tiled`); they are a
    compiled-backend contract — the dict reference holds no matrices,
    so combining them with ``backend="dict"`` raises
    :class:`LinalgError` instead of silently ignoring the bound.
    """
    if backend == "dict":
        if tile_pairs is not None or memory_budget_mb is not None:
            raise LinalgError(
                "tiling knobs (tile_pairs/memory_budget_mb) require a compiled "
                "backend; the dict reference evaluator holds no operator to tile"
            )
        return DictEvaluator(routing)
    if backend in ("sparse", "dense", "auto"):
        return SparseEvaluator.from_routing(
            routing,
            representation=backend,
            tile_pairs=tile_pairs,
            memory_budget_mb=memory_budget_mb,
        )
    raise LinalgError(
        f"unknown evaluation backend {backend!r}; available: {available_backends()}"
    )


__all__ = [
    "BACKENDS",
    "BACKEND_CHOICES",
    "Evaluator",
    "DictEvaluator",
    "SparseEvaluator",
    "available_backends",
    "build_evaluator",
]
