"""Pair-dimension tiling plans for memory-bounded batched evaluation.

A 10k-node network has ~10^8 ordered pairs; even a demanded-pairs-only
compile can put tens of thousands of rows into the pair × edge operator,
and the dense (numpy-only) representation materializes all of them at
once — (num_pairs × num_edges) floats — before the first demand is
evaluated.  Tiling blocks the *pair* dimension instead: the batched
product ``loads = batch @ M`` distributes over a row partition of ``M``::

    loads = sum over tiles t of  batch[:, t] @ M[t, :]

so evaluation only ever holds one operator tile (plus the (batch × edge)
accumulator, which is independent of the pair count) and streams the sum
across tiles; the final congestion max over edges is unchanged.  The
result differs from the untiled product only in float summation order
(≤ 1e-9, enforced by ``tests/test_linalg_tiled.py``).

This module is pure planning — :class:`TilePlan` decides the tile width
from an explicit ``tile_pairs`` or a ``memory_budget_mb`` working-set
budget; :mod:`repro.linalg.compiled` owns the actual tile construction
and streamed reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.exceptions import LinalgError

#: Fraction of the memory budget the planner hands to the dominant
#: per-tile allocation (the operator tile).  The remainder absorbs the
#: unavoidable overlap of consecutive tiles (the next tile is built
#: before the previous one is released) plus small per-tile temporaries.
_BUDGET_SAFETY = 0.5

_BYTES_PER_FLOAT = 8

#: Rough bytes per stored sparse entry: float64 data + int32 indices +
#: CSR build temporaries (COO copy during construction).
_BYTES_PER_SPARSE_NNZ = 32


@dataclass(frozen=True)
class TilePlan:
    """A fixed partition of ``num_pairs`` rows into ``tile_pairs`` blocks."""

    num_pairs: int
    tile_pairs: int

    def __post_init__(self) -> None:
        if self.num_pairs < 0:
            raise LinalgError(f"num_pairs must be >= 0, got {self.num_pairs}")
        if self.tile_pairs < 1:
            raise LinalgError(f"tile_pairs must be >= 1, got {self.tile_pairs}")

    @property
    def num_tiles(self) -> int:
        if self.num_pairs == 0:
            return 0
        return -(-self.num_pairs // self.tile_pairs)

    @property
    def is_single_tile(self) -> bool:
        """True when the plan degenerates to the untiled evaluation."""
        return self.num_tiles <= 1

    def tiles(self) -> Iterator[Tuple[int, int]]:
        """Yield half-open ``(start, stop)`` pair-row ranges in order."""
        for start in range(0, self.num_pairs, self.tile_pairs):
            yield start, min(start + self.tile_pairs, self.num_pairs)


def plan_pair_tiles(
    num_pairs: int,
    num_edges: int,
    *,
    representation: str = "dense",
    batch_rows: int = 1,
    tile_pairs: Optional[int] = None,
    memory_budget_mb: Optional[float] = None,
    nnz_per_pair: Optional[float] = None,
) -> TilePlan:
    """Plan a pair-dimension tiling for one batched evaluation.

    ``tile_pairs`` pins the tile width directly; ``memory_budget_mb``
    derives it from the per-tile working set instead (an explicit
    ``tile_pairs`` wins when both are given).  With neither knob the
    plan is a single tile covering every pair — the untiled fast path.

    The budget model charges, per pair row of a tile:

    * dense — one operator row (``num_edges`` floats) plus one batch
      column (``batch_rows`` floats);
    * sparse — ``nnz_per_pair`` stored entries (data + indices + CSR
      build temporaries) plus the batch column.

    Only :data:`_BUDGET_SAFETY` of the budget is spent on that per-row
    cost; the rest covers tile-to-tile overlap and temporaries.  The
    (batch × edge) load accumulator is *not* charged — it does not
    shrink with the tile width, so callers must budget above it
    (``batch_rows * num_edges`` floats).

    Raises :class:`LinalgError` on non-positive knobs.
    """
    if tile_pairs is not None and tile_pairs < 1:
        raise LinalgError(f"tile_pairs must be >= 1, got {tile_pairs}")
    if memory_budget_mb is not None and memory_budget_mb <= 0:
        raise LinalgError(f"memory_budget_mb must be > 0, got {memory_budget_mb}")
    if num_pairs <= 0:
        return TilePlan(num_pairs=max(num_pairs, 0), tile_pairs=1)
    if tile_pairs is not None:
        return TilePlan(num_pairs=num_pairs, tile_pairs=min(tile_pairs, num_pairs))
    if memory_budget_mb is None:
        return TilePlan(num_pairs=num_pairs, tile_pairs=num_pairs)

    if representation == "sparse":
        per_entry = nnz_per_pair if nnz_per_pair is not None else float(num_edges)
        per_pair_bytes = per_entry * _BYTES_PER_SPARSE_NNZ
    else:
        per_pair_bytes = num_edges * _BYTES_PER_FLOAT
    per_pair_bytes += batch_rows * _BYTES_PER_FLOAT
    per_pair_bytes = max(per_pair_bytes, 1.0)
    usable = memory_budget_mb * 1024.0 * 1024.0 * _BUDGET_SAFETY
    width = int(usable / per_pair_bytes)
    return TilePlan(num_pairs=num_pairs, tile_pairs=max(1, min(width, num_pairs)))


__all__ = ["TilePlan", "plan_pair_tiles"]
