"""repro.linalg — compiled sparse linear-algebra evaluation backend.

Turns a :class:`~repro.core.routing.Routing` into immutable index arrays
plus a CSR path × edge incidence matrix and a pair × path distribution
matrix, so that edge loads for a whole demand matrix become one sparse
matmul and congestion / dilation / utilization metrics become vectorized
reductions.  Exposed to the rest of the package as pluggable evaluator
backends (``dict`` reference loops vs compiled ``sparse``/``dense``)::

    from repro.linalg import build_evaluator

    evaluator = build_evaluator(routing, backend="sparse")
    evaluator.congestion(demand)          # one demand
    evaluator.congestions(demands)        # whole batch, one matmul
    evaluator.rebased(event)              # post-failure, no recompile

Selected throughout the stack via ``RoutingEngine(backend=...)``,
``te/metrics`` keyword arguments, ``run_suite(..., backend=...)`` and
the ``--backend`` CLI flags.  ``repro bench`` emits the ``BENCH_*.json``
performance baselines comparing the backends; its targets live in
:mod:`repro.linalg.bench`, imported on demand (benchmarks pull in the
``te``/``scenarios`` layers above this package, so they are not loaded
here).
"""

from repro.linalg._matrix import HAVE_SCIPY
from repro.linalg.compiled import CompiledRouting
from repro.linalg.evaluator import (
    BACKENDS,
    BACKEND_CHOICES,
    DictEvaluator,
    Evaluator,
    SparseEvaluator,
    available_backends,
    build_evaluator,
)

__all__ = [
    "HAVE_SCIPY",
    "BACKENDS",
    "BACKEND_CHOICES",
    "CompiledRouting",
    "Evaluator",
    "DictEvaluator",
    "SparseEvaluator",
    "available_backends",
    "build_evaluator",
]
