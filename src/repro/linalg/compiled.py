"""Compile a :class:`~repro.core.routing.Routing` into sparse operators.

The paper's quality measures are all linear in the demand: routing a
demand ``d`` puts weight ``d(s, t) * P[R(s, t) = p]`` on path ``p``, and
edge loads are sums of path weights.  Compilation makes that linearity
executable:

* every covered pair gets a row index, every support path a path index,
  every network edge a column index;
* the **path × edge incidence matrix** ``A`` has ``A[p, e] = 1`` when
  path ``p`` crosses edge ``e``;
* the **pair × path distribution matrix** ``D`` has ``D[q, p]`` equal to
  the probability of path ``p`` in the pair-``q`` distribution;
* their product ``M = D @ A`` (pair × edge) maps a demand *vector* to
  edge loads in one multiply: ``loads = d @ M``; a whole batch of
  demands becomes one (batch × pair) @ (pair × edge) product.

Congestion, dilation, utilization percentiles and throughput then reduce
to vectorized reductions over the resulting edge-load array.

The compiled form is immutable.  Link failures do not require
recompilation: :meth:`CompiledRouting.rebased` masks the paths crossing
failed edges, renormalizes each pair's surviving probabilities, and
rescales the capacity vector — the incidence matrix is shared with the
original object.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, LinalgError, RoutingError
from repro.graphs.network import Edge, Network, Path, Vertex, path_edges
from repro.linalg._matrix import build_matrix, resolve_representation, to_dense
from repro.linalg.tiled import TilePlan, plan_pair_tiles
from repro.obs import trace_span

Pair = Tuple[Vertex, Vertex]

#: Probabilities below this are treated as dead paths after renormalization.
_PROB_TOL = 0.0

#: How many rebased operators one compiled routing memoizes (LRU), per
#: representation.  Each rebase holds its own pair × edge matrix; in the
#: dense fallback that is a full (num_pairs × num_edges) float array
#: (~181 MB on a 225-node torus), so the dense bound stays tight.
_REBASE_CACHE_SIZE = {"sparse": 8, "dense": 2}


def _pair_edge_matrix(path_pair, path_prob, inc_rows, inc_cols, shape, representation):
    """``M = D @ A`` built straight from incidence triplets.

    Entry ``(pair_of_path(p), e)`` accumulates ``prob(p)`` for every
    incidence entry ``(p, e)`` — equivalent to the distribution × incidence
    product without ever materializing either factor.
    """
    weights = path_prob[inc_rows]
    keep = weights > 0
    return build_matrix(
        path_pair[inc_rows[keep]], inc_cols[keep], weights[keep], shape, representation
    )


class _ChunkedIndices:
    """Append-only scalar accumulator flushing into numpy chunks.

    The compile loop appends one entry per path plus one per hop; plain
    Python lists hold boxed objects (~56 bytes per int), which at 1k+
    node pair counts dwarfs the 8-byte array entries they become.
    Flushing every ``chunk`` appends keeps the Python-object working set
    bounded while the final concatenate yields exactly the array a
    single giant list would have.
    """

    __slots__ = ("_dtype", "_chunk", "_chunks", "_buffer", "count")

    def __init__(self, dtype, chunk: int = 1 << 16) -> None:
        self._dtype = dtype
        self._chunk = chunk
        self._chunks: List[np.ndarray] = []
        self._buffer: List = []
        self.count = 0

    def append(self, value) -> None:
        self._buffer.append(value)
        self.count += 1
        if len(self._buffer) >= self._chunk:
            self._flush()

    def extend(self, values) -> None:
        before = len(self._buffer)
        self._buffer.extend(values)
        self.count += len(self._buffer) - before
        if len(self._buffer) >= self._chunk:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self._chunks.append(np.asarray(self._buffer, dtype=self._dtype))
            self._buffer = []

    def finalize(self) -> np.ndarray:
        self._flush()
        if not self._chunks:
            return np.asarray([], dtype=self._dtype)
        if len(self._chunks) == 1:
            return self._chunks[0]
        return np.concatenate(self._chunks)


class CompiledRouting:
    """Immutable array form of a routing: index arrays + sparse operators.

    Instances are built through :meth:`from_routing` (fresh compile) or
    :meth:`rebased` (failure re-anchoring); the constructor is internal
    plumbing shared by both.
    """

    def __init__(
        self,
        network: Network,
        pairs: Tuple[Pair, ...],
        capacities: np.ndarray,
        path_pair: np.ndarray,
        path_prob: np.ndarray,
        path_hops: np.ndarray,
        inc_rows: np.ndarray,
        inc_cols: np.ndarray,
        pair_edge,
        pair_max_hops: np.ndarray,
        covered: np.ndarray,
        representation: str,
        incidence_holder: Optional[Dict[str, object]] = None,
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        self._network = network
        self._pairs = pairs
        self._pair_index: Dict[Pair, int] = {pair: i for i, pair in enumerate(pairs)}
        self._capacities = capacities
        self._path_pair = path_pair
        self._path_prob = path_prob
        self._path_hops = path_hops
        # Incidence in COO form (path index, edge index) — the only
        # per-hop state; the explicit matrices are built lazily from it.
        self._inc_rows = inc_rows
        self._inc_cols = inc_cols
        self._pair_edge = pair_edge
        self._pair_max_hops = pair_max_hops
        self._covered = covered
        self._representation = representation
        # Pair-dimension tiling knobs (None/None = untiled).  Validated
        # eagerly so a bad knob fails at construction, not mid-batch.
        plan_pair_tiles(0, 0, tile_pairs=tile_pairs, memory_budget_mb=memory_budget_mb)
        self._tile_pairs = tile_pairs
        self._memory_budget_mb = memory_budget_mb
        # Rebased instances share this holder: the incidence matrix is
        # identical across rebases, so it is built at most once (the
        # sortedness flag of the index arrays is shared the same way).
        self._incidence_holder = {} if incidence_holder is None else incidence_holder
        self._rebase_cache: "OrderedDict[object, CompiledRouting]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_routing(
        cls,
        routing,
        representation: str = "auto",
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> "CompiledRouting":
        """Compile ``routing`` (index arrays built once, in canonical order).

        ``representation`` selects the matrix storage: ``"sparse"``
        (scipy CSR), ``"dense"`` (plain numpy), or ``"auto"`` (sparse
        when scipy is importable, dense otherwise).

        ``tile_pairs`` / ``memory_budget_mb`` switch the instance into
        memory-bounded *tiled* evaluation: the full pair × edge operator
        is never materialized; instead, every evaluation streams over
        pair-row tiles (see :mod:`repro.linalg.tiled`), built on the fly
        from the incidence triplets.  Results agree with the untiled
        path within float summation-order noise (≤ 1e-9).
        """
        representation = resolve_representation(representation)
        network: Network = routing.network
        with trace_span("linalg.compile", representation=representation) as span:
            return cls._compile(
                routing, network, representation, span,
                tile_pairs=tile_pairs, memory_budget_mb=memory_budget_mb,
            )

    @classmethod
    def _compile(
        cls,
        routing,
        network,
        representation: str,
        span,
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> "CompiledRouting":
        pairs: Tuple[Pair, ...] = tuple(sorted(routing.pairs(), key=repr))
        num_pairs = len(pairs)
        num_edges = network.num_edges
        tiling = tile_pairs is not None or memory_budget_mb is not None

        # Streaming accumulation: per-path scalars flush into bounded
        # numpy chunks instead of growing one giant boxed-object list
        # (the first thing that falls over at 1k+ nodes; see ROADMAP
        # for the remaining construction hot loops upstream of here).
        path_pair = _ChunkedIndices(np.int64)
        path_prob = _ChunkedIndices(float)
        path_hops = _ChunkedIndices(np.int64)
        inc_rows = _ChunkedIndices(np.int64)
        inc_cols = _ChunkedIndices(np.int64)
        pair_max_hops = np.zeros(num_pairs, dtype=np.int64)
        edge_index = network.edge_index
        for pair_idx, (source, target) in enumerate(pairs):
            for path, probability in routing.distribution(source, target).items():
                if probability <= 0:
                    continue
                path_idx = path_pair.count
                path_pair.append(pair_idx)
                path_prob.append(float(probability))
                hops = len(path) - 1
                path_hops.append(hops)
                pair_max_hops[pair_idx] = max(pair_max_hops[pair_idx], hops)
                columns = [edge_index(*edge) for edge in path_edges(path)]
                inc_rows.extend([path_idx] * len(columns))
                inc_cols.extend(columns)
        path_pair_arr = path_pair.finalize()
        path_prob_arr = path_prob.finalize()
        inc_rows_arr = inc_rows.finalize()
        inc_cols_arr = inc_cols.finalize()
        span.add("pairs", num_pairs)
        span.add("paths", len(path_pair_arr))
        span.add("nnz", len(inc_rows_arr))
        span.set("tiled", tiling)

        # Build M = D @ A directly from the incidence triplets: entry
        # (pair_of_path, edge) accumulates the path's probability.  This
        # never materializes D (num_pairs × num_paths) or A — which in
        # the dense fallback would be quadratic-size allocations.  With
        # tiling knobs set, even M stays implicit: evaluation rebuilds
        # one pair-row tile at a time from the triplets.
        pair_edge = None
        if not tiling:
            pair_edge = _pair_edge_matrix(
                path_pair_arr, path_prob_arr, inc_rows_arr, inc_cols_arr,
                (num_pairs, num_edges), representation,
            )
        capacities = np.array([network.capacity_of(edge) for edge in network.edges], dtype=float)
        return cls(
            network=network,
            pairs=pairs,
            capacities=capacities,
            path_pair=path_pair_arr,
            path_prob=path_prob_arr,
            path_hops=path_hops.finalize(),
            inc_rows=inc_rows_arr,
            inc_cols=inc_cols_arr,
            pair_edge=pair_edge,
            pair_max_hops=pair_max_hops,
            covered=np.ones(num_pairs, dtype=bool),
            representation=representation,
            tile_pairs=tile_pairs,
            memory_budget_mb=memory_budget_mb,
        )

    # ------------------------------------------------------------------ #
    # Array export / attach (shared-memory transport)
    # ------------------------------------------------------------------ #
    def export_arrays(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Split the compiled form into small metadata plus raw arrays.

        Returns ``(metadata, arrays)``: ``metadata`` is a small picklable
        dict (pairs, representation, operator shape) and ``arrays`` maps
        canonical names to the underlying numpy arrays — index arrays,
        capacities, coverage mask, and the pair × edge operator (CSR
        ``data``/``indices``/``indptr`` triple in the sparse
        representation, one dense array otherwise).  Publishing the
        arrays through ``multiprocessing.shared_memory`` and rebuilding
        with :meth:`from_arrays` reconstructs an equivalent compiled
        routing without copying or recompiling; the scenario sweep
        executor (:mod:`repro.scenarios.shm`) is the intended consumer.
        """
        arrays: Dict[str, np.ndarray] = {
            "capacities": self._capacities,
            "path_pair": self._path_pair,
            "path_prob": self._path_prob,
            "path_hops": self._path_hops,
            "inc_rows": self._inc_rows,
            "inc_cols": self._inc_cols,
            "pair_max_hops": self._pair_max_hops,
            "covered": self._covered,
        }
        if self._pair_edge is None:
            # Tiled compiles never materialized the operator; the index
            # arrays above are the complete evaluation state.
            pass
        elif self._representation == "sparse":
            operator = self._pair_edge
            arrays["operator_data"] = np.asarray(operator.data)
            arrays["operator_indices"] = np.asarray(operator.indices)
            arrays["operator_indptr"] = np.asarray(operator.indptr)
        else:
            arrays["operator_dense"] = np.asarray(self._pair_edge)
        metadata: Dict[str, object] = {
            "representation": self._representation,
            "pairs": self._pairs,
            "operator_shape": (self.num_pairs, self.num_edges),
            "operator_materialized": self._pair_edge is not None,
            "tile_pairs": self._tile_pairs,
            "memory_budget_mb": self._memory_budget_mb,
        }
        return metadata, arrays

    @classmethod
    def from_arrays(
        cls,
        network: Network,
        metadata: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> "CompiledRouting":
        """Rebuild a compiled routing from :meth:`export_arrays` output.

        ``arrays`` may be views over a shared-memory buffer (typically
        read-only); nothing is copied — evaluation and :meth:`rebased`
        only ever read the attached arrays and allocate fresh outputs.
        ``network`` must be structurally identical to the network the
        arrays were compiled from (same edge indexing); the scenario
        workers guarantee this by rebuilding topologies from the same
        seeded specs.
        """
        representation = str(metadata["representation"])
        shape = tuple(metadata["operator_shape"])  # type: ignore[arg-type]
        if not metadata.get("operator_materialized", True):
            pair_edge = None
        elif representation == "sparse":
            from scipy import sparse as scipy_sparse  # deferred: dense leg has no scipy

            pair_edge = scipy_sparse.csr_matrix(
                (arrays["operator_data"], arrays["operator_indices"], arrays["operator_indptr"]),
                shape=shape,
                copy=False,
            )
        else:
            pair_edge = np.asarray(arrays["operator_dense"])
        return cls(
            network=network,
            pairs=tuple(metadata["pairs"]),  # type: ignore[arg-type]
            capacities=np.asarray(arrays["capacities"]),
            path_pair=np.asarray(arrays["path_pair"]),
            path_prob=np.asarray(arrays["path_prob"]),
            path_hops=np.asarray(arrays["path_hops"]),
            inc_rows=np.asarray(arrays["inc_rows"]),
            inc_cols=np.asarray(arrays["inc_cols"]),
            pair_edge=pair_edge,
            pair_max_hops=np.asarray(arrays["pair_max_hops"]),
            covered=np.asarray(arrays["covered"]),
            representation=representation,
            tile_pairs=metadata.get("tile_pairs"),
            memory_budget_mb=metadata.get("memory_budget_mb"),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> Network:
        return self._network

    @property
    def representation(self) -> str:
        """Matrix storage actually in use: ``"sparse"`` or ``"dense"``."""
        return self._representation

    @property
    def pairs(self) -> Tuple[Pair, ...]:
        """Covered pairs in compiled (row-index) order."""
        return self._pairs

    @property
    def pair_index(self) -> Mapping[Pair, int]:
        return dict(self._pair_index)

    @property
    def num_pairs(self) -> int:
        return len(self._pairs)

    @property
    def num_paths(self) -> int:
        return len(self._path_pair)

    @property
    def num_edges(self) -> int:
        return len(self._capacities)

    @property
    def capacities(self) -> np.ndarray:
        """Per-edge capacity vector (network edge-index order; a copy)."""
        return self._capacities.copy()

    @property
    def incidence(self):
        """The path × edge incidence matrix (lazy; shared across rebases).

        Built on first access from the COO triplets — evaluation never
        needs it, so lean (dense-fallback) instances only pay for it
        when introspected.  Do not mutate.
        """
        matrix = self._incidence_holder.get("incidence")
        if matrix is None:
            matrix = build_matrix(
                self._inc_rows,
                self._inc_cols,
                np.ones(len(self._inc_rows)),
                (self.num_paths, self.num_edges),
                self._representation,
            )
            self._incidence_holder["incidence"] = matrix
        return matrix

    @property
    def distribution(self):
        """The pair × path probability matrix (lazy; per instance).

        Like :attr:`incidence`, an introspection aid: evaluation uses
        the fused :attr:`pair_edge_operator` instead.  In the dense
        representation this is a (num_pairs × num_paths) allocation —
        avoid on large compiles.  Do not mutate.
        """
        if getattr(self, "_distribution_cache", None) is None:
            live = self._path_prob > 0
            self._distribution_cache = build_matrix(
                self._path_pair[live],
                np.flatnonzero(live),
                self._path_prob[live],
                (self.num_pairs, self.num_paths),
                self._representation,
            )
        return self._distribution_cache

    @property
    def pair_edge_operator(self):
        """``distribution @ incidence``: unit-demand edge loads per pair.

        On tiled instances the operator is *not* kept around — this
        property materializes (and caches) the full matrix on demand as
        an introspection escape hatch, defeating the memory bound for
        this instance.  Evaluation never calls it; use
        :meth:`operator_tile` for bounded access.
        """
        if self._pair_edge is None:
            self._pair_edge = _pair_edge_matrix(
                self._path_pair, self._path_prob, self._inc_rows, self._inc_cols,
                (self.num_pairs, self.num_edges), self._representation,
            )
        return self._pair_edge

    # ------------------------------------------------------------------ #
    # Pair-dimension tiling
    # ------------------------------------------------------------------ #
    @property
    def tile_pairs(self) -> Optional[int]:
        """Configured fixed tile width (None = derive from budget/untiled)."""
        return self._tile_pairs

    @property
    def memory_budget_mb(self) -> Optional[float]:
        """Configured per-evaluation working-set budget in MB (None = unbounded)."""
        return self._memory_budget_mb

    @property
    def operator_materialized(self) -> bool:
        """True when the full pair × edge operator is held in memory."""
        return self._pair_edge is not None

    def tile_plan(
        self,
        batch_rows: int = 1,
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> TilePlan:
        """The pair-tiling plan for a ``batch_rows``-demand evaluation.

        Per-call knobs override the instance knobs; with neither set the
        plan is one tile (the untiled fast path).
        """
        tile_pairs = tile_pairs if tile_pairs is not None else self._tile_pairs
        if memory_budget_mb is None:
            memory_budget_mb = self._memory_budget_mb
        nnz_per_pair = (
            len(self._inc_rows) / self.num_pairs if self.num_pairs else None
        )
        return plan_pair_tiles(
            self.num_pairs,
            self.num_edges,
            representation=self._representation,
            batch_rows=batch_rows,
            tile_pairs=tile_pairs,
            memory_budget_mb=memory_budget_mb,
            nnz_per_pair=nnz_per_pair,
        )

    def _indices_sorted(self) -> bool:
        """True when ``path_pair`` and ``inc_rows`` are nondecreasing.

        :meth:`_compile` guarantees this by construction (pairs are
        visited in row order, incidence entries in path order), which
        lets :meth:`operator_tile` slice the triplets with two binary
        searches; arrays attached via :meth:`from_arrays` are checked
        once and fall back to mask selection if foreign.
        """
        flag = self._incidence_holder.get("indices_sorted")
        if flag is None:
            flag = bool(np.all(np.diff(self._path_pair) >= 0)) and bool(
                np.all(np.diff(self._inc_rows) >= 0)
            )
            self._incidence_holder["indices_sorted"] = flag
        return flag

    def operator_tile(self, start: int, stop: int):
        """Rows ``[start, stop)`` of the pair × edge operator.

        Built from the incidence triplets without touching the full
        operator — a ``(stop - start) × num_edges`` matrix in the
        compiled representation.  When the full operator happens to be
        materialized, this is a plain row slice.
        """
        if not (0 <= start <= stop <= self.num_pairs):
            raise LinalgError(
                f"operator tile [{start}, {stop}) out of range for {self.num_pairs} pairs"
            )
        if self._pair_edge is not None:
            return self._pair_edge[start:stop]
        if self._indices_sorted():
            path_lo, path_hi = np.searchsorted(self._path_pair, (start, stop), side="left")
            inc_lo, inc_hi = np.searchsorted(self._inc_rows, (path_lo, path_hi), side="left")
            rows_sel = self._inc_rows[inc_lo:inc_hi]
            cols_sel = self._inc_cols[inc_lo:inc_hi]
        else:
            entry_pair = self._path_pair[self._inc_rows]
            mask = (entry_pair >= start) & (entry_pair < stop)
            rows_sel = self._inc_rows[mask]
            cols_sel = self._inc_cols[mask]
        weights = self._path_prob[rows_sel]
        keep = weights > 0
        return build_matrix(
            self._path_pair[rows_sel[keep]] - start,
            cols_sel[keep],
            weights[keep],
            (stop - start, self.num_edges),
            self._representation,
        )

    def _streamed_loads(self, batch, plan: TilePlan) -> np.ndarray:
        """``to_dense(batch @ M)`` as a streamed sum over pair tiles.

        Holds one operator tile plus the (batch × edge) accumulator at a
        time; each tile is released before the next is built, so peak
        memory follows the plan's budget instead of the pair count.
        """
        num_rows = batch.shape[0]
        loads = np.zeros((num_rows, self.num_edges), dtype=float)
        if num_rows == 0 or plan.num_tiles == 0:
            return loads
        columns = batch
        if hasattr(batch, "tocsc"):
            # CSR column slicing is O(nnz) per tile; one CSC conversion
            # up front makes every column slice cheap.
            columns = batch.tocsc()
        with trace_span(
            "linalg.tiled_evaluate", tiles=plan.num_tiles, tile_pairs=plan.tile_pairs
        ) as span:
            span.add("demands", num_rows)
            for start, stop in plan.tiles():
                tile = self.operator_tile(start, stop)
                loads += to_dense(columns[:, start:stop] @ tile)
                del tile
        return loads

    def _vector_loads(self, vector: np.ndarray) -> np.ndarray:
        """Per-edge loads of one dense demand vector (tiled when lean)."""
        plan = self.tile_plan(batch_rows=1)
        if plan.is_single_tile and self._pair_edge is not None:
            return np.asarray(vector @ self._pair_edge, dtype=float).ravel()
        loads = np.zeros(self.num_edges, dtype=float)
        for start, stop in plan.tiles():
            tile = self.operator_tile(start, stop)
            loads += np.asarray(vector[start:stop] @ tile, dtype=float).ravel()
            del tile
        return loads

    def is_covered(self, source: Vertex, target: Vertex) -> bool:
        """True when the pair still has at least one (surviving) path."""
        index = self._pair_index.get((source, target))
        return index is not None and bool(self._covered[index])

    # ------------------------------------------------------------------ #
    # Demand vectorization
    # ------------------------------------------------------------------ #
    def demand_vector(self, demand, missing: str = "error") -> np.ndarray:
        """Dense demand vector over the compiled pair index.

        ``missing`` controls pairs with positive demand that the routing
        does not cover at all: ``"error"`` raises :class:`RoutingError`
        (matching the dict evaluator), ``"drop"`` ignores them.  The
        generic counterpart over an arbitrary pair index is
        :meth:`Demand.as_vector`, which raises ``DemandError`` instead —
        this method keeps the *evaluator* error contract.
        """
        vector = np.zeros(self.num_pairs, dtype=float)
        for (source, target), amount in demand.items():
            if amount <= 0:
                continue
            index = self._pair_index.get((source, target))
            if index is None:
                if missing == "drop":
                    continue
                raise RoutingError(f"routing does not cover pair {(source, target)!r}")
            vector[index] += amount
        return vector

    def demand_matrix(self, demands: Sequence, missing: str = "error"):
        """Batch of demand vectors as one (batch × pair) matrix.

        Stored in the compiled representation (CSR or dense), ready for
        the single ``@ pair_edge_operator`` product.
        """
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for row, demand in enumerate(demands):
            for (source, target), amount in demand.items():
                if amount <= 0:
                    continue
                index = self._pair_index.get((source, target))
                if index is None:
                    if missing == "drop":
                        continue
                    raise RoutingError(f"routing does not cover pair {(source, target)!r}")
                rows.append(row)
                cols.append(index)
                data.append(float(amount))
        return build_matrix(rows, cols, data, (len(demands), self.num_pairs), self._representation)

    def _has_uncovered(self, vector: np.ndarray) -> bool:
        if self._covered.all():
            return False
        return bool(np.any(vector[~self._covered] > 0))

    def uncovered_demand(self, vector: np.ndarray) -> bool:
        """True when ``vector`` puts positive demand on an uncovered pair.

        The public twin of the internal coverage check, for callers that
        maintain their own demand vectors over this compiled pair index
        (the streaming layer's incremental evaluator): such a demand has
        infinite congestion by convention.
        """
        return self._has_uncovered(vector)

    # ------------------------------------------------------------------ #
    # Evaluation: one demand
    # ------------------------------------------------------------------ #
    def edge_load_vector(self, demand, missing: str = "error") -> np.ndarray:
        """Raw per-edge loads (network edge-index order) for one demand."""
        vector = self.demand_vector(demand, missing=missing)
        return self._vector_loads(vector)

    def congestion(self, demand, missing: str = "error") -> float:
        """``cong(R, d)``; infinite when a demanded pair lost every path."""
        vector = self.demand_vector(demand, missing=missing)
        if self._has_uncovered(vector):
            return float("inf")
        loads = self._vector_loads(vector)
        if not loads.size:
            return 0.0
        return float(np.max(loads / self._capacities, initial=0.0))

    def dilation(self, demand, missing: str = "error") -> int:
        """``dil(R, d)`` — max hops among surviving paths of demanded pairs."""
        vector = self.demand_vector(demand, missing=missing)
        active = vector > 0
        if not np.any(active):
            return 0
        return int(np.max(self._pair_max_hops[active], initial=0))

    def coverage(self, demand) -> float:
        """Fraction of demanded pairs that still have at least one path."""
        pairs = demand.pairs()
        if not pairs:
            return 1.0
        covered = 0
        for pair in pairs:
            index = self._pair_index.get(pair)
            if index is not None and self._covered[index]:
                covered += 1
        return covered / len(pairs)

    # ------------------------------------------------------------------ #
    # Evaluation: demand batches
    # ------------------------------------------------------------------ #
    def edge_load_matrix(
        self,
        demands: Sequence,
        missing: str = "error",
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> np.ndarray:
        """(batch × edge) dense edge-load array: one (possibly tiled) matmul."""
        batch = self.demand_matrix(demands, missing=missing)
        plan = self.tile_plan(
            batch_rows=batch.shape[0],
            tile_pairs=tile_pairs,
            memory_budget_mb=memory_budget_mb,
        )
        if plan.is_single_tile and self._pair_edge is not None:
            return to_dense(batch @ self._pair_edge)
        return self._streamed_loads(batch, plan)

    def congestions(self, demands: Sequence, missing: str = "error") -> np.ndarray:
        """Per-demand max congestion over one batched evaluation."""
        return self.congestions_from_matrix(self.demand_matrix(demands, missing=missing))

    def congestions_from_matrix(
        self,
        batch,
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> np.ndarray:
        """Per-demand max congestion for an already-vectorized batch.

        ``batch`` is a (batch × pair) matrix over *this* pair indexing —
        typically built once via :meth:`demand_matrix` and reused across
        the rebased operators of many failure events (the pair index is
        shared, so no re-vectorization is needed per event).

        ``tile_pairs`` / ``memory_budget_mb`` override the instance
        tiling knobs for this call; the default follows the instance
        configuration (untiled when no knobs were set at compile time).
        """
        num_demands = batch.shape[0]
        plan = self.tile_plan(
            batch_rows=num_demands,
            tile_pairs=tile_pairs,
            memory_budget_mb=memory_budget_mb,
        )
        if plan.is_single_tile and self._pair_edge is not None:
            loads = to_dense(batch @ self._pair_edge)
        else:
            loads = self._streamed_loads(batch, plan)
        if not loads.size:
            return np.zeros(num_demands, dtype=float)
        results = np.max(loads / self._capacities[np.newaxis, :], axis=1, initial=0.0)
        if not self._covered.all():
            # Demand entries are nonnegative, so a demand touches an
            # uncovered pair iff its mass against the indicator is > 0.
            uncovered_mass = np.asarray(
                batch @ (~self._covered).astype(float), dtype=float
            ).ravel()
            results = np.where(uncovered_mass > 0, np.inf, results)
        return np.asarray(results, dtype=float)

    # ------------------------------------------------------------------ #
    # Failure rebase: no recompilation
    # ------------------------------------------------------------------ #
    def rebased(self, event) -> "CompiledRouting":
        """Re-anchor onto the degraded network of a failure event.

        Paths crossing a removed edge are masked (their probability mass
        redistributed over the pair's survivors, exactly the fixed-ratio
        renormalization of the scenario runner); ``capacity_scale``
        entries rescale the capacity vector.  The incidence matrix and
        index arrays are shared — nothing is recompiled.  Results are
        memoized per event.
        """
        if event.is_null():
            return self
        cached = self._rebase_cache.get(event)
        if cached is not None:
            self._rebase_cache.move_to_end(event)
            return cached

        with trace_span("linalg.rebase", failed=len(event.failed_edges)):
            rebased = self._rebase(event)
        self._rebase_cache[event] = rebased
        while len(self._rebase_cache) > _REBASE_CACHE_SIZE[self._representation]:
            self._rebase_cache.popitem(last=False)
        return rebased

    def _rebase(self, event) -> "CompiledRouting":
        failed_indices: List[int] = []
        failed_set = set()
        for u, v in event.failed_edges:
            try:
                index = self._network.edge_index(u, v)
            except GraphError as error:
                raise LinalgError(
                    f"failure event removes edge {(u, v)!r} unknown to the compiled network"
                ) from error
            failed_indices.append(index)
            failed_set.add(index)

        alive = np.ones(self.num_paths, dtype=bool)
        if failed_indices and self.num_paths:
            broken = np.isin(self._inc_cols, np.asarray(failed_indices))
            alive[self._inc_rows[broken]] = False

        # Surviving probability mass per pair, then per-path renormalization.
        if self.num_paths:
            surviving_total = np.zeros(self.num_pairs, dtype=float)
            np.add.at(
                surviving_total, self._path_pair[alive], self._path_prob[alive]
            )
        else:
            surviving_total = np.zeros(self.num_pairs, dtype=float)
        covered = surviving_total > _PROB_TOL
        denominator = np.where(covered, surviving_total, 1.0)
        new_prob = np.where(
            alive & covered[self._path_pair],
            self._path_prob / denominator[self._path_pair],
            0.0,
        )

        live = new_prob > 0
        # Tiled instances stay lean through a rebase: the renormalized
        # probabilities are all the tile construction needs.
        pair_edge = None
        if self._tile_pairs is None and self._memory_budget_mb is None:
            pair_edge = _pair_edge_matrix(
                self._path_pair, new_prob, self._inc_rows, self._inc_cols,
                (self.num_pairs, self.num_edges), self._representation,
            )

        pair_max_hops = np.zeros(self.num_pairs, dtype=np.int64)
        if np.any(live):
            np.maximum.at(pair_max_hops, self._path_pair[live], self._path_hops[live])

        capacities = self._capacities.copy()
        for (u, v), scale in event.capacity_scale:
            if not (0.0 < scale <= 1.0):
                # Same contract as apply_failure: reject instead of
                # silently producing zero capacities (0/0 -> NaN).
                raise GraphError(
                    f"capacity scale for edge {(u, v)!r} must be in (0, 1], got {scale}"
                )
            try:
                index = self._network.edge_index(u, v)
            except GraphError:
                continue
            if index in failed_set:
                continue
            capacities[index] *= scale

        return CompiledRouting(
            network=self._network,
            pairs=self._pairs,
            capacities=capacities,
            path_pair=self._path_pair,
            path_prob=new_prob,
            path_hops=self._path_hops,
            inc_rows=self._inc_rows,
            inc_cols=self._inc_cols,
            pair_edge=pair_edge,
            pair_max_hops=pair_max_hops,
            covered=covered,
            representation=self._representation,
            incidence_holder=self._incidence_holder,
            tile_pairs=self._tile_pairs,
            memory_budget_mb=self._memory_budget_mb,
        )

    def __repr__(self) -> str:
        tiling = ""
        if self._tile_pairs is not None or self._memory_budget_mb is not None:
            tiling = (
                f", tile_pairs={self._tile_pairs}, "
                f"memory_budget_mb={self._memory_budget_mb}"
            )
        return (
            f"CompiledRouting(pairs={self.num_pairs}, paths={self.num_paths}, "
            f"edges={self.num_edges}, representation={self._representation!r}{tiling})"
        )


__all__ = ["CompiledRouting", "Pair"]
