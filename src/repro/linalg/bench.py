"""Benchmark targets behind the ``repro bench`` CLI subcommand.

Each target compares the ``dict`` reference evaluator against the
compiled ``sparse`` backend on a reproducible workload and emits a
schema-stable artifact (``BENCH_<name>.json``) recording wall time,
topology size, achieved demands/sec per backend, and the measured
numerical agreement.  The artifacts are the repository's performance
trajectory: committed baselines live at the repo root, CI regenerates a
smoke-scale variant per run.

Artifact schema (``repro-bench/v1``)::

    {
      "schema": "repro-bench/v1",
      "name": "linalg",             # bench target
      "scale": "full",              # smoke | small | full
      "seed": 0,
      "network":  {"name": ..., "n": ..., "m": ...},
      "workload": {"num_demands": ..., "num_pairs": ..., "num_paths": ...},
      "backends": {
        "dict":   {"backend": "dict",   "seconds": ..., "demands_per_sec": ...},
        "sparse": {"backend": "sparse", "seconds": ..., "demands_per_sec": ...,
                   "compile_seconds": ...}
      },
      "speedup_sparse_over_dict": ...,
      "max_abs_difference": ...,    # agreement between the two backends
      "environment": {"python": ..., "numpy": ..., "scipy": true|false}
    }

Keys are only ever added, never renamed, so downstream tooling (the
README performance table, CI artifact diffing) can rely on them.
"""

from __future__ import annotations

import platform
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.routing import Routing
from repro.demands.generators import random_permutation_demand
from repro.exceptions import LinalgError
from repro.graphs.network import Network
from repro.graphs.topologies import torus_2d
from repro.linalg._matrix import HAVE_SCIPY
from repro.linalg.evaluator import DictEvaluator, SparseEvaluator, build_evaluator
from repro.te.failures import KEdgeFailureProcess
from repro.utils.rng import ensure_rng
from repro.utils.serialization import dumps as json_dumps
from repro.utils.timing import Stopwatch, timing_entry

BENCH_SCHEMA = "repro-bench/v1"

SCALES = ("smoke", "small", "full")

#: Per-scale (torus side, batch size).  ``full`` is the committed
#: baseline: a 15x15 torus has 225 vertices (>= 200) and the batch holds
#: 1000 demand matrices (>= 1000), matching the acceptance criteria.
_LINALG_SCALES: Dict[str, Tuple[int, int]] = {
    "smoke": (6, 50),
    "small": (10, 200),
    "full": (15, 1000),
}


def _shortest_path_routing(network: Network) -> Routing:
    """Single shortest path per ordered pair (the SMORE ``spf`` baseline)."""
    import networkx as nx

    trees = dict(nx.all_pairs_shortest_path(network.graph))
    mapping = {
        (source, target): trees[source][target]
        for source in network.vertices
        for target in network.vertices
        if source != target
    }
    return Routing.single_path(network, mapping)


def _workload(scale: str, seed: int):
    side, num_demands = _LINALG_SCALES[scale]
    network = torus_2d(side)
    routing = _shortest_path_routing(network)
    rng = ensure_rng(seed)
    demands = [random_permutation_demand(network, rng=rng) for _ in range(num_demands)]
    return network, routing, demands


def environment_info() -> Dict[str, Any]:
    """The ``environment`` block shared by every bench artifact."""
    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover
        scipy_version = None
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy_version if HAVE_SCIPY else False,
    }


def bench_linalg(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Batched demand evaluation: dict loops vs one sparse matmul.

    Routes a batch of random permutation demands through a shortest-path
    routing on a 2-D torus and measures end-to-end congestion evaluation
    per backend (the sparse figure includes demand vectorization but not
    the one-time compile, reported separately as ``compile_seconds``).
    """
    network, routing, demands = _workload(scale, seed)

    dict_evaluator = DictEvaluator(routing, cache_size=1)
    with Stopwatch() as dict_watch:
        dict_congestions = dict_evaluator.congestions(demands)
    dict_seconds = dict_watch.elapsed

    with Stopwatch() as compile_watch:
        sparse_evaluator = build_evaluator(routing, backend="sparse")
    compile_seconds = compile_watch.elapsed
    with Stopwatch() as sparse_watch:
        sparse_congestions = sparse_evaluator.congestions(demands)
    sparse_seconds = sparse_watch.elapsed

    max_diff = float(np.max(np.abs(dict_congestions - sparse_congestions), initial=0.0))
    return {
        "schema": BENCH_SCHEMA,
        "name": "linalg",
        "scale": scale,
        "seed": seed,
        "network": {"name": network.name, "n": network.num_vertices, "m": network.num_edges},
        "workload": {
            "num_demands": len(demands),
            "num_pairs": sparse_evaluator.compiled.num_pairs,
            "num_paths": sparse_evaluator.compiled.num_paths,
        },
        "backends": {
            "dict": {
                "backend": "dict",
                **timing_entry(dict_seconds, count=len(demands), rate_key="demands_per_sec"),
            },
            "sparse": {
                "backend": sparse_evaluator.backend,
                **timing_entry(
                    sparse_seconds,
                    count=len(demands),
                    rate_key="demands_per_sec",
                    compile_seconds=compile_seconds,
                ),
            },
        },
        "speedup_sparse_over_dict": dict_seconds / sparse_seconds if sparse_seconds > 0 else None,
        "max_abs_difference": max_diff,
        "environment": environment_info(),
    }


def bench_rebase(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Incremental failure rebase: renormalize loops vs compiled masking.

    Samples k-edge failure events and, per event, re-evaluates the whole
    demand batch on the degraded routing.  The dict side renormalizes
    each pair's surviving distribution per demand (the scenario runner's
    fixed-ratio loop); the sparse side masks failed-edge columns and
    rescales once, then evaluates the batch with one matmul.
    """
    # The dict reference IS the scenario runner's fixed-ratio loop —
    # imported (lazily: scenarios sits above linalg in the layer map),
    # not copied, so the committed speedup always measures the code the
    # sweeps actually run.
    from repro.scenarios.runner import _route_fixed_ratio_degraded
    from repro.te.failures import apply_failure

    network, routing, demands = _workload(scale, seed)
    num_events = {"smoke": 2, "small": 4, "full": 8}[scale]
    process = KEdgeFailureProcess(k=2)
    rng = ensure_rng(seed + 1)
    events = [
        event
        for event in (process.sample(network, rng) for _ in range(num_events * 2))
        if apply_failure(network, event) is not None
    ][:num_events]

    class _FixedRatioStandIn:
        """Duck-typed FixedRatioRouter: the runner loop only reads .routing."""

        def __init__(self, fixed_routing):
            self.routing = fixed_routing

    stand_in = _FixedRatioStandIn(routing)
    dict_results: List[float] = []
    with Stopwatch() as dict_watch:
        for event in events:
            degraded = apply_failure(network, event)
            for demand in demands:
                congestion, _coverage = _route_fixed_ratio_degraded(stand_in, demand, degraded)
                dict_results.append(float("inf") if congestion is None else congestion)
    dict_seconds = dict_watch.elapsed

    sparse_evaluator = build_evaluator(routing, backend="sparse")
    sparse_results: List[float] = []
    with Stopwatch() as sparse_watch:
        # The pair index is shared across rebases: vectorize the batch once.
        batch = sparse_evaluator.demand_matrix(demands)
        for event in events:
            rebased = sparse_evaluator.rebased(event)
            sparse_results.extend(rebased.congestions_from_matrix(batch).tolist())
    sparse_seconds = sparse_watch.elapsed

    finite = [
        abs(a - b)
        for a, b in zip(dict_results, sparse_results)
        if np.isfinite(a) and np.isfinite(b)
    ]
    max_diff = float(max(finite, default=0.0))
    # A backend disagreeing on *coverage* (inf vs finite) would be
    # invisible in the finite-only diff; count those mismatches so the
    # artifact cannot claim agreement while masking a real divergence.
    finiteness_mismatches = sum(
        1
        for a, b in zip(dict_results, sparse_results)
        if np.isfinite(a) != np.isfinite(b)
    )
    evaluations = len(events) * len(demands)
    return {
        "schema": BENCH_SCHEMA,
        "name": "rebase",
        "scale": scale,
        "seed": seed,
        "network": {"name": network.name, "n": network.num_vertices, "m": network.num_edges},
        "workload": {
            "num_demands": len(demands),
            "num_events": len(events),
            "num_evaluations": evaluations,
            "num_pairs": sparse_evaluator.compiled.num_pairs,
            "num_paths": sparse_evaluator.compiled.num_paths,
        },
        "backends": {
            "dict": {
                "backend": "dict",
                **timing_entry(dict_seconds, count=evaluations, rate_key="demands_per_sec"),
            },
            "sparse": {
                "backend": sparse_evaluator.backend,
                **timing_entry(sparse_seconds, count=evaluations, rate_key="demands_per_sec"),
            },
        },
        "speedup_sparse_over_dict": dict_seconds / sparse_seconds if sparse_seconds > 0 else None,
        "max_abs_difference": max_diff,
        "finiteness_mismatches": finiteness_mismatches,
        "environment": environment_info(),
    }


#: name -> (runner, one-line description).  Extended at import time by
#: higher layers through :func:`register_bench` (the streaming layer
#: registers ``stream``); :func:`_ensure_registered` pulls those layers
#: in lazily so ``repro bench`` always sees the full target list without
#: this module importing upward eagerly.
BENCH_TARGETS: Dict[str, Tuple[Callable[..., Dict[str, Any]], str]] = {
    "linalg": (bench_linalg, "batched demand evaluation: dict loops vs sparse matmul"),
    "rebase": (bench_rebase, "post-failure evaluation: renormalize loops vs compiled rebase"),
}

#: Modules above linalg that register bench targets on import.
_EXTERNAL_BENCH_MODULES = (
    "repro.stream.bench",
    "repro.net.bench",
    "repro.telemetry.bench",
    "repro.scenarios.bench",
    "repro.obs.bench",
    "repro.forwarding.bench",
    "repro.synth.bench",
)


def register_bench(
    name: str,
    runner: Callable[..., Dict[str, Any]],
    description: str,
    overwrite: bool = False,
) -> None:
    """Register a bench target (``runner(scale=..., seed=...) -> payload``)."""
    if name in BENCH_TARGETS and not overwrite:
        raise LinalgError(f"bench target {name!r} is already registered (pass overwrite=True)")
    BENCH_TARGETS[name] = (runner, description)


def _ensure_registered() -> None:
    import importlib

    for module in _EXTERNAL_BENCH_MODULES:
        importlib.import_module(module)


def available_benches() -> List[str]:
    _ensure_registered()
    return sorted(BENCH_TARGETS)


def run_bench(name: str, scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Run one registered bench target and return its artifact payload."""
    _ensure_registered()
    if name not in BENCH_TARGETS:
        raise LinalgError(f"unknown bench target {name!r}; available: {available_benches()}")
    if scale not in SCALES:
        raise LinalgError(f"unknown bench scale {scale!r}; available: {list(SCALES)}")
    runner, _ = BENCH_TARGETS[name]
    return runner(scale=scale, seed=seed)


def write_bench_artifact(payload: Dict[str, Any], output_dir: str = ".") -> str:
    """Write the bench artifact under ``output_dir``; returns the path.

    Full-scale runs write the canonical ``BENCH_<name>.json`` (the
    committed baselines); other scales write
    ``BENCH_<name>_<scale>.json``, so a casual ``repro bench`` from the
    repository root can never clobber a committed full-scale baseline
    with smaller numbers.
    """
    import os

    os.makedirs(output_dir, exist_ok=True)
    scale = payload.get("scale", "full")
    suffix = "" if scale == "full" else f"_{scale}"
    path = os.path.join(output_dir, f"BENCH_{payload['name']}{suffix}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json_dumps(payload) + "\n")
    return path


__all__ = [
    "BENCH_SCHEMA",
    "BENCH_TARGETS",
    "SCALES",
    "available_benches",
    "bench_linalg",
    "bench_rebase",
    "environment_info",
    "register_bench",
    "run_bench",
    "write_bench_artifact",
]
