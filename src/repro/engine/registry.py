"""String-keyed scheme registry and spec parser.

One factory for every routing scheme in the repository, so the CLI, the
experiments, the TE simulation and the benchmarks stop hand-wiring
constructors.  Schemes are addressed by compact spec strings::

    build_router("semi-oblivious(racke, alpha=8)", network, rng=0)
    build_router("ksp(k=4)", network)
    build_router("optimal", network)

or by equivalent dicts (``{"scheme": "ksp", "k": 4}``).  Custom schemes
plug in through :func:`register_scheme`; anything satisfying the
:class:`~repro.engine.router.Router` protocol qualifies.

The registry threads an :class:`EngineContext` through every factory so
schemes built together share expensive state: one :class:`CutCache`, one
oblivious-source builder per (source, params) — and therefore one
per-pair distribution cache — and one memoizing optimal-MCF solver.
"""

from __future__ import annotations

import inspect
import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.demands.demand import Demand
from repro.exceptions import RoutingError
from repro.graphs.cuts import CutCache
from repro.graphs.network import Network
from repro.mcf.lp import min_congestion_lp
from repro.obs import trace_span
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.oblivious.electrical import ElectricalFlowRouting
from repro.oblivious.hop_constrained import HopConstrainedRouting
from repro.oblivious.racke import RaeckeTreeRouting
from repro.oblivious.shortest_path import KShortestPathRouting, ShortestPathRouting
from repro.oblivious.valiant import ValiantHypercubeRouting
from repro.oblivious.valiant_general import ValiantGeneralRouting
from repro.utils.rng import RngLike, ensure_rng

from repro.engine.adapters import (
    AdaptivePathRouter,
    FixedRatioRouter,
    OptimalRouter,
    SemiObliviousRouter,
)
from repro.engine.router import Router


class SchemeError(RoutingError):
    """Raised for unknown schemes, malformed specs, or bad scheme parameters."""


# --------------------------------------------------------------------- #
# Shared construction context
# --------------------------------------------------------------------- #
class MemoizedOptimalSolver:
    """Optimal-MCF congestion with per-demand memoization.

    Demands are immutable and hashable, so the engine can guarantee the
    LP is solved at most once per distinct snapshot even when several
    schemes (and the ratio normalization) all need the optimum.
    """

    def __init__(self, network: Network) -> None:
        self._network = network
        self._cache: Dict[Demand, float] = {}
        self.num_solves = 0

    def __call__(self, demand: Demand) -> float:
        if demand not in self._cache:
            self.num_solves += 1
            with trace_span("mcf.optimal_solve"):
                self._cache[demand] = min_congestion_lp(self._network, demand).congestion
        return self._cache[demand]

    def prime(self, demand: Demand, congestion: float) -> None:
        """Seed the memo with an optimum computed elsewhere.

        Callers that already solved the MCF for ``demand`` (e.g. a
        rerouting policy solving with ``return_routing=True``) register
        the congestion here so a later ``__call__`` is a cache hit, not
        a second LP.  Does not bump ``num_solves``.
        """
        self._cache[demand] = float(congestion)

    def clear(self) -> None:
        self._cache.clear()


@dataclass
class EngineContext:
    """State shared by every router built for one network.

    ``sources`` maps ``(canonical source name, frozen params)`` to a
    builder instance, so e.g. ``semi-oblivious(racke)`` and
    ``oblivious(racke)`` sample from and materialize *the same*
    :class:`RaeckeTreeRouting` — sharing its trees and its per-pair
    distribution cache.
    """

    network: Network
    cut_cache: CutCache = None  # type: ignore[assignment]
    optimal_solver: MemoizedOptimalSolver = None  # type: ignore[assignment]
    sources: Dict[Tuple[str, frozenset], ObliviousRoutingBuilder] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cut_cache is None:
            self.cut_cache = CutCache(self.network)
        if self.optimal_solver is None:
            self.optimal_solver = MemoizedOptimalSolver(self.network)


# --------------------------------------------------------------------- #
# Oblivious source registry (sampling/materialization sources)
# --------------------------------------------------------------------- #
def _infer_hypercube_dimension(network: Network) -> int:
    dimension = int(round(math.log2(max(network.num_vertices, 1))))
    if (1 << dimension) != network.num_vertices:
        raise SchemeError(
            f"valiant source needs a hypercube; {network.num_vertices} vertices is not a power of 2"
        )
    return dimension


def _make_valiant(network: Network, rng: RngLike = None, **params: Any) -> ObliviousRoutingBuilder:
    params.setdefault("dimension", _infer_hypercube_dimension(network))
    return ValiantHypercubeRouting(network, rng=rng, **params)


def _make_hop_constrained(network: Network, rng: RngLike = None, **params: Any) -> ObliviousRoutingBuilder:
    params.setdefault("hop_bound", network.diameter())
    return HopConstrainedRouting(network, rng=rng, **params)


#: name -> (factory, accepts rng?).  Aliases resolve in _SOURCE_ALIASES.
_SOURCES: Dict[str, Tuple[Callable[..., ObliviousRoutingBuilder], bool]] = {
    "racke": (RaeckeTreeRouting, True),
    "valiant": (_make_valiant, True),
    "valiant-general": (ValiantGeneralRouting, True),
    "electrical": (ElectricalFlowRouting, False),
    "shortest-path": (ShortestPathRouting, False),
    "ksp": (KShortestPathRouting, False),
    "hop-constrained": (_make_hop_constrained, True),
}

_SOURCE_ALIASES = {
    "raecke": "racke",
    "racke-trees": "racke",
    "raecke-trees": "racke",
    "trees": "racke",
    "valiant-hypercube": "valiant",
    "electrical-flow": "electrical",
    "spf": "shortest-path",
    "k-shortest-paths": "ksp",
}


def available_sources() -> List[str]:
    """Canonical names of the registered oblivious sampling sources."""
    return sorted(_SOURCES)


def build_oblivious_source(
    source: Union[str, ObliviousRoutingBuilder],
    network: Network,
    rng: RngLike = None,
    context: Optional[EngineContext] = None,
    **params: Any,
) -> ObliviousRoutingBuilder:
    """Resolve ``source`` (name or ready builder) into a builder instance.

    Named sources are cached in ``context.sources`` keyed by name and
    parameters, so repeated references share one builder (and its
    per-pair distribution cache).
    """
    if isinstance(source, ObliviousRoutingBuilder):
        if params:
            raise SchemeError(
                f"cannot apply parameters {sorted(params)} to an already-built source {source!r}"
            )
        return source
    canonical = _SOURCE_ALIASES.get(source, source)
    if canonical not in _SOURCES:
        raise SchemeError(
            f"unknown oblivious source {source!r}; available: {available_sources()}"
        )
    cache_key = (canonical, frozenset(params.items()))
    if context is not None and cache_key in context.sources:
        return context.sources[cache_key]
    factory, wants_rng = _SOURCES[canonical]
    kwargs = dict(params)
    if wants_rng:
        kwargs["rng"] = rng
    try:
        with trace_span("source.build", source=canonical):
            builder = factory(network, **kwargs)
    except TypeError as error:
        raise SchemeError(f"bad parameters for source {source!r}: {error}") from error
    if context is not None:
        context.sources[cache_key] = builder
    return builder


# --------------------------------------------------------------------- #
# Spec parsing
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SchemeSpec:
    """A parsed scheme spec: canonical name plus keyword parameters."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def spec_string(self) -> str:
        """Render back to the compact string form (round-trips via parse)."""
        if not self.params:
            return self.name
        rendered = ", ".join(f"{key}={_format_value(value)}" for key, value in self.params)
        return f"{self.name}({rendered})"

    def to_dict(self) -> Dict[str, Any]:
        return {"scheme": self.name, **self.param_dict}

    def __str__(self) -> str:
        return self.spec_string()


_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_+\-]*$")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value if _NAME_RE.match(value) else f"'{value}'"
    return repr(value)


def _parse_value(token: str) -> Any:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    lowered = token.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_args(body: str) -> List[str]:
    """Split a spec argument list on top-level commas (quote-aware)."""
    parts: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current = ""
    for char in body:
        if quote is not None:
            current += char
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current += char
            continue
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    if quote is not None:
        raise SchemeError(f"unterminated quote in scheme spec arguments {body!r}")
    if current.strip():
        parts.append(current)
    return [part.strip() for part in parts if part.strip()]


def parse_spec(spec: Union[str, Mapping[str, Any], SchemeSpec]) -> SchemeSpec:
    """Parse a scheme spec (string, dict, or :class:`SchemeSpec`).

    String grammar: ``name`` or ``name(arg, key=value, ...)``.  Bare
    positional arguments are mapped onto the scheme's declared
    positional parameter names (``semi-oblivious(racke, alpha=8)`` is
    ``semi-oblivious(oblivious=racke, alpha=8)``).  Values parse as
    int/float/bool/None when they look like one, strings otherwise.
    """
    if isinstance(spec, SchemeSpec):
        entry = _lookup(spec.name)
        return SchemeSpec(name=entry.name, params=spec.params)
    if isinstance(spec, Mapping):
        mapping = dict(spec)
        name = mapping.pop("scheme", None) or mapping.pop("name", None)
        if not name:
            raise SchemeError(f"dict spec needs a 'scheme' key: {spec!r}")
        entry = _lookup(name)
        return SchemeSpec(name=entry.name, params=tuple(mapping.items()))
    if not isinstance(spec, str):
        raise SchemeError(f"cannot parse scheme spec of type {type(spec).__name__}")

    text = spec.strip()
    match = re.match(r"^([A-Za-z_][A-Za-z0-9_+\-]*)\s*(?:\((.*)\))?$", text, re.DOTALL)
    if not match:
        raise SchemeError(f"malformed scheme spec {spec!r}")
    name, body = match.group(1), match.group(2)
    entry = _lookup(name)
    params: Dict[str, Any] = {}
    positional_index = 0
    for token in _split_args(body or ""):
        key_match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+)$", token, re.DOTALL)
        if key_match:
            params[key_match.group(1)] = _parse_value(key_match.group(2))
        else:
            if positional_index >= len(entry.positional):
                raise SchemeError(
                    f"scheme {entry.name!r} takes at most {len(entry.positional)} "
                    f"positional argument(s); got extra {token!r} in {spec!r}"
                )
            params[entry.positional[positional_index]] = _parse_value(token)
            positional_index += 1
    return SchemeSpec(name=entry.name, params=tuple(params.items()))


# --------------------------------------------------------------------- #
# Scheme registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SchemeEntry:
    name: str
    factory: Callable[..., Router]
    positional: Tuple[str, ...] = ()
    description: str = ""
    wants_context: bool = False


_REGISTRY: Dict[str, SchemeEntry] = {}
_ALIASES: Dict[str, str] = {}


def _lookup(name: str) -> SchemeEntry:
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise SchemeError(f"unknown scheme {name!r}; available: {available_schemes()}")
    return _REGISTRY[canonical]


def available_schemes() -> List[str]:
    """Canonical names of every registered scheme."""
    return sorted(_REGISTRY)


def scheme_descriptions() -> Dict[str, str]:
    return {name: _REGISTRY[name].description for name in available_schemes()}


def register_scheme(
    name: str,
    factory: Optional[Callable[..., Router]] = None,
    *,
    positional: Sequence[str] = (),
    aliases: Sequence[str] = (),
    description: str = "",
    overwrite: bool = False,
) -> Callable:
    """Register a router factory under ``name`` (usable as a decorator).

    ``factory(network, rng=None, **params)`` must return an object
    satisfying the :class:`Router` protocol.  Factories that declare a
    ``context`` parameter additionally receive the shared
    :class:`EngineContext`.
    """

    def _register(func: Callable[..., Router]) -> Callable[..., Router]:
        if (name in _REGISTRY or name in _ALIASES) and not overwrite:
            raise SchemeError(
                f"scheme name {name!r} is already registered (as a scheme or alias); "
                "pass overwrite=True"
            )
        # A direct registration takes the name over from any alias it shadowed.
        _ALIASES.pop(name, None)
        for alias in aliases:
            if (alias in _REGISTRY or alias in _ALIASES) and not overwrite:
                raise SchemeError(f"alias {alias!r} is already registered (pass overwrite=True)")
        try:
            wants_context = "context" in inspect.signature(func).parameters
        except (TypeError, ValueError):
            wants_context = False
        _REGISTRY[name] = SchemeEntry(
            name=name,
            factory=func,
            positional=tuple(positional),
            description=description,
            wants_context=wants_context,
        )
        for alias in aliases:
            _ALIASES[alias] = name
        return func

    if factory is not None:
        return _register(factory)
    return _register


def unregister_scheme(name: str) -> None:
    """Remove a scheme (and its aliases) — mainly for tests."""
    canonical = _ALIASES.get(name, name)
    _REGISTRY.pop(canonical, None)
    for alias in [alias for alias, target in _ALIASES.items() if target == canonical]:
        _ALIASES.pop(alias, None)


def build_router(
    spec: Union[str, Mapping[str, Any], SchemeSpec, Router],
    network: Network,
    rng: RngLike = None,
    context: Optional[EngineContext] = None,
) -> Router:
    """Construct a :class:`Router` for ``spec`` on ``network``.

    ``spec`` may be a spec string, a dict, a :class:`SchemeSpec`, or an
    already-built router (returned unchanged).  ``context`` carries the
    shared caches; one is created on the fly when omitted.
    """
    if not isinstance(spec, (str, Mapping, SchemeSpec)) and hasattr(spec, "route") and hasattr(spec, "install"):
        return spec  # already a Router
    parsed = parse_spec(spec)
    entry = _lookup(parsed.name)
    if context is None:
        context = EngineContext(network)
    # One generator per build: the source construction and the sampling
    # steps share a single stream, exactly like a hand-wired pipeline.
    rng = ensure_rng(rng)
    kwargs: Dict[str, Any] = dict(parsed.params)
    if entry.wants_context:
        kwargs["context"] = context
    try:
        with trace_span("scheme.build", scheme=parsed.name):
            return entry.factory(network, rng=rng, **kwargs)
    except TypeError as error:
        raise SchemeError(f"bad parameters for scheme {parsed.name!r}: {error}") from error


# --------------------------------------------------------------------- #
# Built-in schemes
# --------------------------------------------------------------------- #
@register_scheme(
    "semi-oblivious",
    positional=("oblivious",),
    aliases=("smore", "alpha-sample"),
    description="the paper's scheme: alpha-sample an oblivious routing, adapt rates per demand",
)
def _build_semi_oblivious(
    network: Network,
    rng: RngLike = None,
    context: Optional[EngineContext] = None,
    oblivious: Union[str, ObliviousRoutingBuilder] = "racke",
    alpha: int = 4,
    cut: bool = False,
    method: str = "lp",
    **source_params: Any,
) -> Router:
    source = build_oblivious_source(oblivious, network, rng=rng, context=context, **source_params)
    return SemiObliviousRouter(
        network,
        source,
        alpha=alpha,
        cut=cut,
        cut_cache=context.cut_cache if context is not None else None,
        method=method,
        rng=rng,
    )


@register_scheme(
    "oblivious",
    positional=("oblivious",),
    aliases=("fixed-ratio",),
    description="a fixed-ratio oblivious routing, no online adaptation",
)
def _build_oblivious(
    network: Network,
    rng: RngLike = None,
    context: Optional[EngineContext] = None,
    oblivious: Union[str, ObliviousRoutingBuilder] = "racke",
    backend: str = "dict",
    **source_params: Any,
) -> Router:
    source = build_oblivious_source(oblivious, network, rng=rng, context=context, **source_params)
    return FixedRatioRouter(network, source, name="oblivious", backend=backend)


@register_scheme(
    "ksp",
    positional=("k",),
    aliases=("k-shortest-paths",),
    description="adaptive rates over k shortest paths (classical TE baseline)",
)
def _build_ksp(
    network: Network,
    rng: RngLike = None,
    context: Optional[EngineContext] = None,
    k: int = 4,
    method: str = "lp",
    inverse_capacity_weight: bool = False,
) -> Router:
    builder = build_oblivious_source(
        "ksp", network, rng=rng, context=context, k=k,
        inverse_capacity_weight=inverse_capacity_weight,
    )
    return AdaptivePathRouter(network, builder, method=method, name="ksp")


@register_scheme(
    "spf",
    aliases=("shortest-path",),
    description="single shortest path, no adaptation and no diversity",
)
def _build_spf(
    network: Network,
    rng: RngLike = None,
    context: Optional[EngineContext] = None,
    backend: str = "dict",
) -> Router:
    builder = build_oblivious_source("shortest-path", network, rng=rng, context=context)
    return FixedRatioRouter(network, builder, name="spf", backend=backend)


@register_scheme(
    "realized",
    positional=("scheme",),
    aliases=("ecmp",),
    description="ECMP realization of another scheme: quantized 1/k next-hop splits, "
    "optional discrete-flow hashing; realized(oblivious(racke), buckets=8)",
)
def _build_realized(
    network: Network,
    rng: RngLike = None,
    context: Optional[EngineContext] = None,
    scheme: str = "spf",
    buckets: int = 8,
    flows: Optional[int] = None,
    on_cycle: str = "decompose",
    backend: str = "auto",
) -> Router:
    # Imported lazily: the registry is a lower layer than the forwarding
    # package, and suite specs parse `realized(...)` strings before any
    # forwarding import happens (same pattern as the extension axes).
    from repro.forwarding.router import RealizedRouter

    inner = build_router(scheme, network, rng=rng, context=context)
    return RealizedRouter(
        network,
        inner,
        buckets=buckets,
        flows=flows,
        on_cycle=on_cycle,
        backend=backend,
        rng=ensure_rng(rng),
    )


@register_scheme(
    "optimal",
    aliases=("mcf", "opt"),
    description="the per-snapshot optimal MCF (ratio 1 by definition)",
)
def _build_optimal(
    network: Network,
    rng: RngLike = None,
    context: Optional[EngineContext] = None,
) -> Router:
    solver = context.optimal_solver if context is not None else None
    return OptimalRouter(network, solver=solver)


__all__ = [
    "SchemeError",
    "SchemeSpec",
    "SchemeEntry",
    "EngineContext",
    "MemoizedOptimalSolver",
    "parse_spec",
    "register_scheme",
    "unregister_scheme",
    "available_schemes",
    "available_sources",
    "scheme_descriptions",
    "build_router",
    "build_oblivious_source",
]
