"""Unified routing engine: Router protocol, scheme registry, batch facade.

The paper's observation (Section 1.1) is that many routing schemes share
one operational shape — install candidate paths once, then re-optimize
rates per revealed demand.  This package turns that observation into the
repository's public API:

* :class:`~repro.engine.router.Router` / :class:`~repro.engine.router.RouteResult`
  — the protocol every scheme implements,
* :mod:`~repro.engine.adapters` — adapters wrapping every existing
  construction (semi-oblivious sampling, fixed-ratio oblivious routings,
  adaptive KSP, per-demand optimal MCF),
* :func:`~repro.engine.registry.build_router` and the string-keyed
  scheme registry (``"semi-oblivious(racke, alpha=8)"``, ``"ksp(k=4)"``,
  ``"optimal"``) with :func:`~repro.engine.registry.register_scheme`
  for user extensions,
* :class:`~repro.engine.engine.RoutingEngine` — the batch facade that
  shares cut caches, builder distribution caches and optimal-MCF solves
  across schemes and demands.
"""

from repro.engine.router import Router, RouteResult, congestion_ratio
from repro.engine.adapters import (
    AdaptivePathRouter,
    BaseRouter,
    FixedRatioRouter,
    OptimalRouter,
    SemiObliviousRouter,
)
from repro.engine.registry import (
    EngineContext,
    MemoizedOptimalSolver,
    SchemeError,
    SchemeSpec,
    available_schemes,
    available_sources,
    build_oblivious_source,
    build_router,
    parse_spec,
    register_scheme,
    scheme_descriptions,
    unregister_scheme,
)
from repro.engine.engine import RoutingEngine, SchemeResult, SimulationReport

__all__ = [
    "Router",
    "RouteResult",
    "congestion_ratio",
    "BaseRouter",
    "SemiObliviousRouter",
    "AdaptivePathRouter",
    "FixedRatioRouter",
    "OptimalRouter",
    "EngineContext",
    "MemoizedOptimalSolver",
    "SchemeError",
    "SchemeSpec",
    "parse_spec",
    "register_scheme",
    "unregister_scheme",
    "available_schemes",
    "available_sources",
    "scheme_descriptions",
    "build_router",
    "build_oblivious_source",
    "RoutingEngine",
    "SchemeResult",
    "SimulationReport",
]
