"""Concrete :class:`~repro.engine.router.Router` adapters.

Each adapter wraps one of the repository's existing constructions behind
the uniform install/route shape:

* :class:`SemiObliviousRouter` — the paper's scheme: α-sample (or
  (α + cut)-sample) a competitive oblivious routing once, then adapt
  rates per demand (Definition 5.2 + Section 2.1 stage 4),
* :class:`AdaptivePathRouter` — the full support of any builder as the
  candidate set with adaptive rates (the classical k-shortest-paths TE
  baseline when wrapping :class:`KShortestPathRouting`),
* :class:`FixedRatioRouter` — a materialized oblivious routing with
  *fixed* splitting ratios, no adaptation (covers Räcke, Valiant,
  electrical, shortest-path and hop-constrained sources),
* :class:`OptimalRouter` — the per-demand optimal MCF (ratio 1 by
  definition; the normalizer every other scheme is measured against).

Contracts
---------

**Determinism.**  All randomness is consumed from the ``rng`` handed to
the constructor (via :func:`repro.utils.rng.ensure_rng`), during
``install()`` only — ``route()`` never draws random bits.  Two routers
constructed with identically seeded generators therefore install
identical candidate paths and produce identical results forever after;
this is the property the engine's scheme-insertion-order seeding and
the scenario sweeps' bit-identical artifacts are built on.  The
sampling-free adapters (:class:`FixedRatioRouter` over deterministic
sources, :class:`OptimalRouter`) ignore ``rng`` entirely.

**Units.**  ``RouteResult.congestion`` is always a capacity-normalized
*utilization*: maximum over edges of load divided by edge capacity, so
1.0 means the busiest link runs exactly at capacity and values are
comparable across topologies with heterogeneous capacities.
``RouteResult.ratio`` divides that utilization by the same demand's
optimal-MCF utilization (>= 1 up to solver tolerance; NaN when the
optimum is unknown).

**Install-once.**  ``install()`` is the only slow step and the only
state change; calling it again re-materializes paths for the new pair
set.  ``route()`` must be preceded by ``install()`` and raises
:class:`~repro.exceptions.SolverError` otherwise.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, List, Optional

from repro.core.path_system import PathSystem
from repro.core.rate_adaptation import optimal_rates
from repro.core.routing import Routing
from repro.core.sampling import alpha_plus_cut_sample, alpha_sample, support_system
from repro.demands.demand import Demand
from repro.exceptions import RoutingError, SolverError
from repro.graphs.cuts import CutCache
from repro.graphs.network import Network
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.utils.rng import RngLike, ensure_rng

from repro.engine.router import Pair, RouteResult


class BaseRouter(abc.ABC):
    """Shared install-once bookkeeping for the bundled adapters."""

    def __init__(self, network: Network, name: str) -> None:
        self._network = network
        self.name = name
        self._installed = False

    @property
    def network(self) -> Network:
        return self._network

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self, pairs: Optional[Iterable[Pair]] = None) -> None:
        if pairs is None:
            pairs = list(self._network.vertex_pairs(ordered=True))
        else:
            pairs = list(pairs)
        self._install(pairs)
        self._installed = True

    def route(self, demand: Demand) -> RouteResult:
        if not self._installed:
            raise SolverError(f"router {self.name!r}: call install() before route()")
        return self._route(demand)

    @abc.abstractmethod
    def _install(self, pairs: List[Pair]) -> None:
        """Materialize candidate paths for ``pairs``."""

    @abc.abstractmethod
    def _route(self, demand: Demand) -> RouteResult:
        """Route ``demand`` over the installed paths."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, installed={self._installed})"


class SemiObliviousRouter(BaseRouter):
    """The paper's scheme: sample few paths once, adapt rates per demand.

    Parameters
    ----------
    network:
        The topology.
    oblivious:
        Builder for the oblivious routing to sample from.
    alpha:
        Samples per pair (α); SMORE uses 4.
    cut:
        When True, draw ``alpha + cut_G(s, t)`` samples per pair (the
        (α + cut)-sample of Definition 5.2, needed for arbitrary
        demands).
    cut_cache:
        Shared min-cut oracle (the engine passes one cache for all
        schemes; a private one is created otherwise).
    method:
        Rate-adaptation engine, ``"lp"`` (exact) or ``"greedy"``.
    rng:
        Randomness for the sampling step.
    """

    def __init__(
        self,
        network: Network,
        oblivious: ObliviousRoutingBuilder,
        alpha: int = 4,
        cut: bool = False,
        cut_cache: Optional[CutCache] = None,
        method: str = "lp",
        rng: RngLike = None,
        name: str = "semi-oblivious",
    ) -> None:
        super().__init__(network, name)
        self._oblivious = oblivious
        self._alpha = alpha
        self._cut = cut
        self._cut_cache = cut_cache
        self._method = method
        self._rng = ensure_rng(rng)
        self._system: Optional[PathSystem] = None

    @property
    def alpha(self) -> int:
        return self._alpha

    @property
    def method(self) -> str:
        """Rate-adaptation engine; may be reassigned between routes."""
        return self._method

    @method.setter
    def method(self, method: str) -> None:
        self._method = method

    @property
    def oblivious(self) -> ObliviousRoutingBuilder:
        return self._oblivious

    @property
    def system(self) -> PathSystem:
        if self._system is None:
            raise SolverError(f"router {self.name!r}: call install() before reading the system")
        return self._system

    def _install(self, pairs: List[Pair]) -> None:
        if self._cut:
            oracle = self._cut_cache if self._cut_cache is not None else CutCache(self._network)
            self._system = alpha_plus_cut_sample(
                self._oblivious, self._alpha, cut_oracle=oracle, pairs=pairs, rng=self._rng
            )
        else:
            self._system = alpha_sample(self._oblivious, self._alpha, pairs=pairs, rng=self._rng)

    def _route(self, demand: Demand) -> RouteResult:
        adaptation = optimal_rates(self._system, demand, method=self._method)
        return RouteResult(
            scheme=self.name,
            congestion=adaptation.congestion,
            routing=adaptation.routing,
            method=adaptation.method,
            extra={"alpha": self._alpha, "sparsity": self._system.sparsity()},
        )


class AdaptivePathRouter(BaseRouter):
    """Adaptive rates over the full support of a path-distribution builder.

    Wrapping :class:`~repro.oblivious.shortest_path.KShortestPathRouting`
    yields the classical adaptive k-shortest-paths TE baseline.
    """

    def __init__(
        self,
        network: Network,
        builder: ObliviousRoutingBuilder,
        method: str = "lp",
        name: str = "adaptive",
    ) -> None:
        super().__init__(network, name)
        self._builder = builder
        self._method = method
        self._system: Optional[PathSystem] = None

    @property
    def builder(self) -> ObliviousRoutingBuilder:
        return self._builder

    @property
    def method(self) -> str:
        """Rate-adaptation engine; may be reassigned between routes."""
        return self._method

    @method.setter
    def method(self, method: str) -> None:
        self._method = method

    @property
    def system(self) -> PathSystem:
        if self._system is None:
            raise SolverError(f"router {self.name!r}: call install() before reading the system")
        return self._system

    def _install(self, pairs: List[Pair]) -> None:
        self._system = support_system(self._builder, pairs=pairs)

    def _route(self, demand: Demand) -> RouteResult:
        adaptation = optimal_rates(self._system, demand, method=self._method)
        return RouteResult(
            scheme=self.name,
            congestion=adaptation.congestion,
            routing=adaptation.routing,
            method=adaptation.method,
        )


class FixedRatioRouter(BaseRouter):
    """A materialized oblivious routing with fixed splitting ratios.

    No online adaptation: the congestion of a demand is read off the
    fixed path distributions.  Covers the plain-oblivious and
    single-shortest-path TE baselines.

    ``backend`` selects the evaluation backend used to read congestion
    off the fixed distributions: ``"dict"`` (reference loops, default),
    ``"sparse"``/``"dense"``/``"auto"`` (compiled linear algebra — the
    fast path when many demands stream through the same routing).  It
    may be reassigned between routes; the compiled forms are cached on
    the routing itself.

    ``tile_pairs`` / ``memory_budget_mb`` bound the peak memory of the
    compiled backends by tiling the pair dimension (see
    :mod:`repro.linalg.tiled`); they are ignored on the ``dict``
    backend, which holds no matrices to tile.  Like ``backend``, both
    may be reassigned between routes (typically pinned engine-wide via
    ``RoutingEngine(..., memory_budget_mb=...)``).
    """

    def __init__(
        self,
        network: Network,
        builder: ObliviousRoutingBuilder,
        name: str = "oblivious",
        backend: str = "dict",
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        super().__init__(network, name)
        self._builder = builder
        self._routing: Optional[Routing] = None
        self.backend = backend
        self.tile_pairs = tile_pairs
        self.memory_budget_mb = memory_budget_mb

    @property
    def builder(self) -> ObliviousRoutingBuilder:
        return self._builder

    @property
    def routing(self) -> Routing:
        if self._routing is None:
            raise SolverError(f"router {self.name!r}: call install() before reading the routing")
        return self._routing

    def _install(self, pairs: List[Pair]) -> None:
        self._routing = self._builder.routing(pairs=pairs)

    def _route(self, demand: Demand) -> RouteResult:
        for source, target in demand.pairs():
            if not self._routing.covers(source, target):
                raise RoutingError(
                    f"router {self.name!r} was installed without pair {(source, target)!r}"
                )
        if self.backend == "dict" or (
            self.tile_pairs is None and self.memory_budget_mb is None
        ):
            evaluator = self._routing.evaluator(self.backend)
        else:
            evaluator = self._routing.evaluator(
                self.backend,
                tile_pairs=self.tile_pairs,
                memory_budget_mb=self.memory_budget_mb,
            )
        return RouteResult(
            scheme=self.name,
            congestion=evaluator.congestion(demand),
            routing=self._routing,
            method="fixed",
        )


class OptimalRouter(BaseRouter):
    """The per-demand optimal MCF (the normalizer; ratio 1 by definition).

    ``solver`` lets the engine inject a shared memoizing solver so the
    LP runs at most once per snapshot even when the optimum is also
    needed to normalize other schemes.
    """

    def __init__(
        self,
        network: Network,
        solver: Optional[Callable[[Demand], float]] = None,
        name: str = "optimal",
    ) -> None:
        super().__init__(network, name)
        self._solver = solver

    def _install(self, pairs: List[Pair]) -> None:
        pass  # nothing to install: the MCF uses every edge of the network

    def _route(self, demand: Demand) -> RouteResult:
        if self._solver is not None:
            congestion = self._solver(demand)
        else:
            congestion = min_congestion_lp(self._network, demand).congestion
        return RouteResult(
            scheme=self.name,
            congestion=congestion,
            optimal_congestion=congestion,
            method="mcf",
        )


__all__ = [
    "BaseRouter",
    "SemiObliviousRouter",
    "AdaptivePathRouter",
    "FixedRatioRouter",
    "OptimalRouter",
]
