"""The :class:`RoutingEngine` facade: many schemes, many demands, shared work.

The engine is the batch entry point of the redesigned API.  It owns one
:class:`~repro.engine.registry.EngineContext` — a single
:class:`~repro.graphs.cuts.CutCache`, one oblivious-source builder (and
per-pair distribution cache) per source spec, and a memoizing
optimal-MCF solver — and builds every requested scheme through the
registry so all of them share that state.  Candidate paths are
materialized **once** (``install``); demands then stream through
``route_many`` / ``evaluate_matrix_series`` with the per-snapshot
optimum solved at most once and reused across schemes::

    engine = RoutingEngine(net, ["semi-oblivious(racke, alpha=4)", "ksp(k=4)", "spf"], rng=0)
    report = engine.evaluate_matrix_series(series)   # installs lazily
    print(report.ranking(), report.to_json())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.demands.demand import Demand
from repro.demands.traffic_matrix import TrafficMatrixSeries
from repro.graphs.cuts import CutCache
from repro.graphs.network import Network
from repro.obs import trace_span
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serialization import dumps as _json_dumps

from repro.engine.registry import (
    EngineContext,
    SchemeError,
    SchemeSpec,
    build_router,
    parse_spec,
)
from repro.engine.router import Pair, RouteResult, Router


@dataclass
class SchemeResult:
    """Per-scheme outcome of a TE simulation.

    ``utilization_ratios`` holds, per snapshot, the scheme's maximum link
    utilization divided by the per-snapshot optimum (>= 1).
    """

    scheme: str
    utilization_ratios: List[float] = field(default_factory=list)
    max_utilizations: List[float] = field(default_factory=list)

    def worst_ratio(self) -> float:
        return max(self.utilization_ratios, default=float("nan"))

    def mean_ratio(self) -> float:
        finite = [r for r in self.utilization_ratios if np.isfinite(r)]
        return float(np.mean(finite)) if finite else float("nan")

    def percentile_ratio(self, percentile: float) -> float:
        finite = [r for r in self.utilization_ratios if np.isfinite(r)]
        return float(np.percentile(finite, percentile)) if finite else float("nan")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "utilization_ratios": list(self.utilization_ratios),
            "max_utilizations": list(self.max_utilizations),
            "mean_ratio": self.mean_ratio(),
            "p90_ratio": self.percentile_ratio(90.0),
            "worst_ratio": self.worst_ratio(),
        }


@dataclass
class SimulationReport:
    """Full TE simulation output: one :class:`SchemeResult` per scheme."""

    network_name: str
    num_snapshots: int
    results: Dict[str, SchemeResult] = field(default_factory=dict)

    def ranking(self) -> List[str]:
        """Schemes ordered from best to worst mean utilization ratio."""
        return sorted(self.results, key=lambda scheme: self.results[scheme].mean_ratio())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "network": self.network_name,
            "num_snapshots": self.num_snapshots,
            "schemes": {label: result.to_dict() for label, result in self.results.items()},
            "ranking": self.ranking(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON rendering (NaN/inf become null per strict JSON)."""
        return _json_dumps(self.to_dict(), indent=indent)


SpecLike = Union[str, Mapping[str, Any], SchemeSpec, Router]


def _spec_sets_backend(spec: SpecLike) -> bool:
    """True when a scheme spec pins its evaluation backend explicitly."""
    if not isinstance(spec, (str, Mapping, SchemeSpec)):
        return False
    try:
        return "backend" in dict(parse_spec(spec).params)
    except SchemeError:
        return False


class RoutingEngine:
    """Batch facade routing many demands through many registry-built schemes.

    Parameters
    ----------
    network:
        The topology every scheme routes on.
    schemes:
        Scheme specs (strings, dicts, :class:`SchemeSpec`, or ready
        :class:`Router` objects), or a mapping ``label -> spec`` to
        control result labels.
    rng:
        Randomness shared by all sampling-based schemes (construction
        and installation consume it in scheme insertion order, so two
        engines built with the same seed and schemes are identical).
    cut_cache:
        Optional pre-warmed min-cut oracle to share.
    backend:
        Evaluation backend applied to every scheme that exposes one
        (``"dict"`` reference loops, ``"sparse"``/``"dense"`` compiled
        linear algebra, ``"auto"``).  ``None`` keeps each scheme's own
        default.  Schemes without a pluggable evaluator (LP-based rate
        adaptation) are unaffected.  See :mod:`repro.linalg`.
    """

    def __init__(
        self,
        network: Network,
        schemes: Union[Sequence[SpecLike], Mapping[str, SpecLike]] = (),
        rng: RngLike = None,
        cut_cache: Optional[CutCache] = None,
        backend: Optional[str] = None,
        tile_pairs: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        self._network = network
        self._rng = ensure_rng(rng)
        self._context = EngineContext(network, cut_cache=cut_cache)
        self._routers: Dict[str, Router] = {}
        self._pairs: Optional[List[Pair]] = None
        self._installed = False
        self._backend = backend
        self._tile_pairs = tile_pairs
        self._memory_budget_mb = memory_budget_mb
        if isinstance(schemes, Mapping):
            for label, spec in schemes.items():
                self.add_scheme(spec, label=label)
        else:
            for spec in schemes:
                self.add_scheme(spec)

    # ------------------------------------------------------------------ #
    # Scheme management
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> Network:
        return self._network

    @property
    def context(self) -> EngineContext:
        return self._context

    @property
    def backend(self) -> Optional[str]:
        """Engine-wide evaluation backend (``None`` = per-scheme defaults)."""
        return self._backend

    @property
    def tile_pairs(self) -> Optional[int]:
        """Engine-wide pair-tile width for compiled evaluation (``None`` = untiled)."""
        return self._tile_pairs

    @property
    def memory_budget_mb(self) -> Optional[float]:
        """Engine-wide evaluation memory budget in MB (``None`` = unbounded)."""
        return self._memory_budget_mb

    @property
    def routers(self) -> Dict[str, Router]:
        """Label -> router, in registration order (a copy)."""
        return dict(self._routers)

    def labels(self) -> List[str]:
        return list(self._routers)

    def __contains__(self, label: str) -> bool:
        return label in self._routers

    def __getitem__(self, label: str) -> Router:
        if label not in self._routers:
            raise SchemeError(f"engine has no scheme {label!r}; available: {self.labels()}")
        return self._routers[label]

    def add_scheme(self, spec: SpecLike, label: Optional[str] = None) -> Router:
        """Build ``spec`` through the registry and add it under ``label``.

        The default label is the router's ``name``.  Schemes added after
        :meth:`install` are installed immediately on the same pairs.
        """
        router = build_router(spec, self._network, rng=self._rng, context=self._context)
        if (
            self._backend is not None
            and isinstance(spec, (str, Mapping, SchemeSpec))
            and hasattr(router, "backend")
            and not _spec_sets_backend(spec)
        ):
            # The engine-wide default applies only where the spec did not
            # pin a backend: the more specific setting wins, and pre-built
            # Router instances (the most specific form) are never touched.
            router.backend = self._backend
        if (
            (self._tile_pairs is not None or self._memory_budget_mb is not None)
            and isinstance(spec, (str, Mapping, SchemeSpec))
            and hasattr(router, "tile_pairs")
        ):
            # Memory-bounded tiled evaluation is engine-wide policy:
            # pinned onto every spec-built router that evaluates through
            # the compiled backends (same specificity rule as backend).
            router.tile_pairs = self._tile_pairs
            router.memory_budget_mb = self._memory_budget_mb
        label = label if label is not None else router.name
        if label in self._routers:
            raise SchemeError(f"engine already has a scheme labelled {label!r}")
        self._routers[label] = router
        if self._installed:
            router.install(self._pairs)
        return router

    # ------------------------------------------------------------------ #
    # Offline phase
    # ------------------------------------------------------------------ #
    def install(self, pairs: Optional[Iterable[Pair]] = None) -> None:
        """Install candidate paths for every scheme (slow, offline, once).

        Shared oblivious sources are prewarmed in bulk first, so each
        distinct builder computes its per-pair distributions exactly
        once no matter how many schemes sample from or materialize it.
        """
        self._pairs = (
            list(self._network.vertex_pairs(ordered=True)) if pairs is None else list(pairs)
        )
        with trace_span("engine.install", schemes=len(self._routers)) as span:
            span.add("pairs", len(self._pairs))
            for builder in self._context.sources.values():
                if not hasattr(builder, "sample_path"):  # samplers bypass the cache
                    with trace_span("source.prewarm", source=type(builder).__name__):
                        builder.prewarm(self._pairs)
            for label, router in self._routers.items():
                with trace_span("engine.install_scheme", scheme=label):
                    router.install(self._pairs)
        self._installed = True

    @property
    def installed(self) -> bool:
        return self._installed

    def _ensure_installed(self) -> None:
        if not self._installed:
            self.install()

    # ------------------------------------------------------------------ #
    # Online phase
    # ------------------------------------------------------------------ #
    def optimal_congestion(self, demand: Demand) -> float:
        """Memoized per-snapshot optimal MCF congestion."""
        return self._context.optimal_solver(demand)

    @property
    def num_optimal_solves(self) -> int:
        """How many MCF LPs actually ran (cache misses)."""
        return self._context.optimal_solver.num_solves

    def route(
        self,
        demand: Demand,
        labels: Optional[Sequence[str]] = None,
        with_optimal: bool = True,
    ) -> Dict[str, RouteResult]:
        """Route one demand through the selected schemes.

        With ``with_optimal`` (default) the per-demand optimum is solved
        once — memoized across schemes and repeated calls — and stamped
        onto every result so ``result.ratio`` is meaningful.
        """
        self._ensure_installed()
        chosen = self.labels() if labels is None else list(labels)
        with trace_span("engine.route", schemes=len(chosen)):
            optimum = self._context.optimal_solver(demand) if with_optimal else None
            results: Dict[str, RouteResult] = {}
            for label in chosen:
                result = self[label].route(demand)
                if result.optimal_congestion is None:
                    result.optimal_congestion = optimum
                results[label] = result
            return results

    def route_many(
        self,
        demands: Iterable[Demand],
        labels: Optional[Sequence[str]] = None,
        with_optimal: bool = True,
    ) -> List[Dict[str, RouteResult]]:
        """Route a batch of demands; one result dict per demand, in order."""
        self._ensure_installed()
        return [self.route(demand, labels=labels, with_optimal=with_optimal) for demand in demands]

    def evaluate_matrix_series(
        self,
        series: Union[TrafficMatrixSeries, Sequence[Demand]],
        labels: Optional[Sequence[str]] = None,
    ) -> SimulationReport:
        """Replay a traffic-matrix series and aggregate per-scheme ratios.

        Empty snapshots are skipped (matching the TE simulator); the
        optimal MCF is solved at most once per distinct snapshot.
        """
        self._ensure_installed()
        chosen = self.labels() if labels is None else list(labels)
        report = SimulationReport(network_name=self._network.name, num_snapshots=len(series))
        for label in chosen:
            _ = self[label]  # validate before running anything
            report.results[label] = SchemeResult(scheme=label)
        with trace_span("engine.evaluate_series", schemes=len(chosen)) as span:
            for snapshot in series:
                if snapshot.is_empty():
                    continue
                span.add("snapshots", 1)
                results = self.route(snapshot, labels=chosen)
                for label in chosen:
                    result = results[label]
                    report.results[label].utilization_ratios.append(result.ratio)
                    report.results[label].max_utilizations.append(result.congestion)
        return report

    # ------------------------------------------------------------------ #
    # Streaming replay
    # ------------------------------------------------------------------ #
    def run_stream(
        self,
        stream,
        policies: Union[str, Sequence[str]] = "static",
        label: Optional[str] = None,
        backend: Optional[str] = None,
        window: int = 16,
        threshold: float = 1.0,
        with_optimal: bool = False,
        record_steps: bool = True,
        on_step=None,
        track_loads: bool = False,
        churn_buckets=None,
    ):
        """Replay a demand stream through one scheme under rerouting policies.

        The temporal entry point of the engine (see :mod:`repro.stream`):
        the chosen scheme's routing is compiled once per policy re-solve
        and every timestep in between is evaluated *incrementally* from
        the stream's delta.  ``policies`` may be a single spec string
        (returns a :class:`~repro.stream.runner.StreamRunResult`) or a
        sequence of specs (returns a
        :class:`~repro.stream.runner.StreamComparison` in which every
        policy replays bit-identical updates).  ``label`` picks the
        scheme (default: the first registered one); ``backend`` the
        compiled representation (default: the engine backend, else
        ``"auto"``).  With ``with_optimal`` each step is normalized by
        the per-snapshot optimal MCF congestion — solved through the
        engine's memoized solver, so repeated snapshots are free.
        ``churn_buckets`` additionally charges each policy re-solve its
        ECMP forwarding-table churn (see :func:`repro.stream.run_stream`).
        """
        from repro.stream.runner import run_stream, run_stream_comparison

        self._ensure_installed()
        if label is None:
            labels = self.labels()
            if not labels:
                raise SchemeError("engine has no schemes to stream through")
            label = labels[0]
        router = self[label]
        resolved_backend = backend if backend is not None else (self._backend or "auto")
        if resolved_backend == "dict":
            resolved_backend = "auto"  # streaming has no dict form; pick compiled
        optimal = self.optimal_congestion if with_optimal else None

        from repro.linalg._matrix import HAVE_SCIPY

        optimal_routing = None
        if HAVE_SCIPY:
            def optimal_routing(demand):
                # One LP serves both consumers: the policy needs the
                # routing, the ratio normalization needs the congestion —
                # prime the engine's memoized solver so ``optimal(demand)``
                # right after a re-solve is a cache hit, not a second LP.
                from repro.mcf.lp import min_congestion_lp

                result = min_congestion_lp(self._network, demand, return_routing=True)
                self._context.optimal_solver.prime(demand, result.congestion)
                return result.routing

        common = dict(
            backend=resolved_backend,
            window=window,
            threshold=threshold,
            optimal=optimal,
            optimal_routing=optimal_routing,
            record_steps=record_steps,
            track_loads=track_loads,
            churn_buckets=churn_buckets,
        )
        if isinstance(policies, str):
            return run_stream(
                self._network, stream, router, policy=policies, on_step=on_step, **common
            )
        if on_step is not None:
            raise SchemeError(
                "on_step hooks apply to single-policy streaming runs; a "
                "comparison replays several policies through one hook state"
            )
        return run_stream_comparison(
            self._network, stream, router, policies=list(policies), **common
        )

    # ------------------------------------------------------------------ #
    # Closed-loop demand estimation
    # ------------------------------------------------------------------ #
    def run_odme(
        self,
        series,
        label: Optional[str] = None,
        noise: float = 0.0,
        coverage: float = 1.0,
        granularity: str = "ingress",
        method: str = "auto",
        prior=None,
        regularization: float = 0.0,
        seed: int = 0,
        backend: Optional[str] = None,
    ):
        """Run the telemetry closed loop on one scheme (see :mod:`repro.telemetry`).

        Per snapshot of ``series`` the chosen scheme routes the *true*
        demand, the resulting link loads are observed through a noisy
        partial-coverage telemetry model, the demand is re-estimated
        from those observations, the scheme re-routes **on the
        estimate**, and the estimate-driven routing is scored on the
        truth.  Returns a
        :class:`~repro.telemetry.OdmeLoopResult`; its summary's
        congestion gap is what estimation error costs the scheme.

        ``label`` picks the scheme (default: the first registered one);
        ``backend`` the compiled representation (default: the engine
        backend, else ``"auto"``).
        """
        from repro.telemetry.pipeline import run_odme_loop

        self._ensure_installed()
        if label is None:
            labels = self.labels()
            if not labels:
                raise SchemeError("engine has no schemes to estimate through")
            label = labels[0]
        router = self[label]
        resolved_backend = backend if backend is not None else (self._backend or "auto")
        if resolved_backend == "dict":
            resolved_backend = "auto"  # the loop compiles; pick a compiled form
        return run_odme_loop(
            self._network,
            series,
            router,
            noise=noise,
            coverage=coverage,
            granularity=granularity,
            method=method,
            prior=prior,
            regularization=regularization,
            seed=seed,
            representation=resolved_backend,
        )

    # ------------------------------------------------------------------ #
    # Real-network ingestion
    # ------------------------------------------------------------------ #
    @classmethod
    def load_network(
        cls,
        source: str,
        schemes: Union[Sequence[SpecLike], Mapping[str, SpecLike]] = (),
        rng: RngLike = None,
        cut_cache: Optional[CutCache] = None,
        backend: Optional[str] = None,
    ) -> "RoutingEngine":
        """Build an engine on a real network resolved by the ingestion layer.

        ``source`` is anything :func:`repro.net.load_network` accepts: a
        bundled catalog name (``"zoo(abilene)"``, ``"sndlib(geant)"``) or
        a path to a GraphML / SNDlib file.  The remaining parameters are
        the normal engine constructor arguments::

            engine = RoutingEngine.load_network(
                "sndlib(geant)", ["semi-oblivious(racke, alpha=4)", "spf"], rng=0
            )
        """
        from repro.net import load_network as _load_network

        return cls(
            _load_network(source), schemes, rng=rng, cut_cache=cut_cache, backend=backend
        )

    # ------------------------------------------------------------------ #
    # Installed-state transport (shared-memory sweep workers)
    # ------------------------------------------------------------------ #
    def export_compiled(self, backend: str) -> Dict[str, Any]:
        """Compile every fixed-ratio scheme once; ``label -> CompiledRouting``.

        The parent side of the shared-memory sweep handshake: the
        returned compiled routings expose :meth:`~repro.linalg.compiled.
        CompiledRouting.export_arrays`, whose arrays travel to workers
        through ``multiprocessing.shared_memory`` while the (lean —
        :meth:`~repro.core.routing.Routing.__getstate__` strips evaluator
        caches) pickled engine travels through pool initargs.  Schemes
        without a fixed materialized routing (LP rate adaptation, the
        optimal MCF) have nothing to compile and are skipped.
        """
        from repro.engine.adapters import FixedRatioRouter

        self._ensure_installed()
        compiled: Dict[str, Any] = {}
        for label, router in self._routers.items():
            if isinstance(router, FixedRatioRouter):
                compiled[label] = router.routing.evaluator(backend).compiled
        return compiled

    def attach_compiled(self, label: str, compiled: Any) -> None:
        """Seed scheme ``label`` with a compiled routing rebuilt elsewhere.

        The worker side of the handshake: ``compiled`` is typically
        :meth:`~repro.linalg.compiled.CompiledRouting.from_arrays` over
        zero-copy shared-memory views.  The scheme's routing caches a
        :class:`~repro.linalg.evaluator.SparseEvaluator` under the
        compiled representation, so routing demands through the scheme
        hits the attached operators instead of recompiling.
        """
        from repro.linalg.evaluator import SparseEvaluator

        routing = self[label].routing
        routing.attach_evaluator(
            compiled.representation, SparseEvaluator(compiled, source_routing=routing)
        )

    # ------------------------------------------------------------------ #
    # Scenario sweeps
    # ------------------------------------------------------------------ #
    @staticmethod
    def run_suite(
        suite,
        workers: int = 1,
        backend: str = "dict",
        executor: str = "auto",
        artifact_dir=None,
        resume=None,
    ):
        """Execute a :class:`~repro.scenarios.spec.ScenarioSuite` grid.

        The batch entry point of the scenario-sweep subsystem: every cell
        of the failure × demand × topology grid is routed through one
        engine per topology (candidate paths installed once, the optimal
        MCF memoized per snapshot), fanned out over ``workers``
        processes.  Returns a :class:`~repro.scenarios.report.SuiteResult`
        whose JSON artifact is bit-identical for any worker count.
        ``backend`` selects the evaluation backend for fixed-ratio
        schemes (``"dict"`` keeps the reference bit-exact artifacts;
        ``"sparse"`` evaluates through compiled linear algebra,
        numerically equivalent within 1e-9).  ``executor`` picks the
        fan-out strategy (``"shared"`` compiles once and publishes
        operators via shared memory), ``artifact_dir`` streams per-cell
        results into a resumable on-disk store, and ``resume`` points at
        such a store to skip already-completed cells — see
        :func:`repro.scenarios.runner.run_suite`.
        """
        from repro.scenarios.runner import run_suite as _run_suite

        return _run_suite(
            suite,
            workers=workers,
            backend=backend,
            executor=executor,
            artifact_dir=artifact_dir,
            resume=resume,
        )

    def __repr__(self) -> str:
        return (
            f"RoutingEngine(network={self._network.name!r}, schemes={self.labels()}, "
            f"installed={self._installed})"
        )


__all__ = ["RoutingEngine", "SchemeResult", "SimulationReport"]
