"""The :class:`Router` protocol and its :class:`RouteResult` outcome.

Every routing scheme in the repository — semi-oblivious sampling,
fixed-ratio oblivious routings, adaptive k-shortest-paths, the
per-demand optimal MCF — shares one operational shape (Section 1.1 /
[KYY+18]): *install* a candidate path system once (the slow, offline
step that updates forwarding state), then *route* each revealed demand
by re-optimizing only the sending rates.  The :class:`Router` protocol
captures exactly that shape so that the TE simulator, the CLI, the
experiments and the benchmarks can treat all schemes uniformly::

    router = build_router("semi-oblivious(racke, alpha=4)", network, rng=0)
    router.install()                   # offline: materialize paths
    result = router.route(demand)      # online: adapt rates
    print(result.congestion, result.ratio)

Concrete implementations live in :mod:`repro.engine.adapters`; they are
normally constructed through the scheme registry
(:mod:`repro.engine.registry`) rather than by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Protocol, Tuple, runtime_checkable

from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.graphs.network import Vertex

Pair = Tuple[Vertex, Vertex]


def congestion_ratio(achieved: float, optimal: Optional[float]) -> float:
    """``achieved / optimal`` with the TE-simulator edge-case conventions.

    A zero optimum means the demand is routable at no cost: the ratio is
    1 when the scheme also achieves (essentially) zero congestion and
    infinite otherwise.  ``None``/missing optimum yields NaN.
    """
    if optimal is None:
        return float("nan")
    if optimal > 0:
        return achieved / optimal
    return 1.0 if achieved <= 0 else float("inf")


@dataclass
class RouteResult:
    """Outcome of routing one demand through one scheme.

    Attributes
    ----------
    scheme:
        Label of the scheme that produced the result.
    congestion:
        Maximum link utilization achieved by the scheme.
    optimal_congestion:
        The per-demand MCF optimum, when known (filled in by
        :class:`~repro.engine.engine.RoutingEngine`, which solves it at
        most once per snapshot and shares it across schemes).
    routing:
        The realizing fractional routing, when the scheme exposes one.
    method:
        Rate-adaptation engine used (``"lp"``, ``"greedy"``, ``"fixed"``,
        ``"mcf"``), informational.
    extra:
        Free-form scheme-specific metadata (e.g. sparsity).
    """

    scheme: str
    congestion: float
    optimal_congestion: Optional[float] = None
    routing: Optional[Routing] = None
    method: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Utilization ratio vs the optimum (>= 1; NaN when unknown)."""
        return congestion_ratio(self.congestion, self.optimal_congestion)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (the routing itself is not embedded)."""
        payload: Dict[str, Any] = {
            "scheme": self.scheme,
            "congestion": self.congestion,
            "optimal_congestion": self.optimal_congestion,
            "ratio": None if self.optimal_congestion is None else self.ratio,
            "method": self.method,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload


@runtime_checkable
class Router(Protocol):
    """Structural interface every routing scheme implements.

    Anything with a ``name``, an ``install()`` and a
    ``route(demand) -> RouteResult`` is a router — user code can
    register plain classes with the scheme registry without inheriting
    from the package's base classes.
    """

    name: str

    def install(self, pairs: Optional[Iterable[Pair]] = None) -> None:
        """Materialize candidate paths (the slow, offline step)."""
        ...

    def route(self, demand: Demand) -> RouteResult:
        """Route one revealed demand over the installed paths."""
        ...


__all__ = ["Router", "RouteResult", "congestion_ratio", "Pair"]
