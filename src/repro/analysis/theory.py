"""Closed-form predicted bounds from the paper's theorem statements.

These formulas give the *shape* of the guarantees (constants are not
specified by the asymptotic statements, so every function takes an
explicit ``constant`` knob with a default of 1).  The experiment harness
plots measured competitive ratios against these predictions so the
qualitative claims — polylog at logarithmic sparsity, exponential
improvement with α, the n^{1/(2α)}/α lower bound — are directly visible
in the output tables.
"""

from __future__ import annotations

import math
from typing import List, Tuple


def logarithmic_sparsity(n: int) -> int:
    """The Theorem 2.3 sparsity level ``Theta(log n / log log n)`` (>= 1)."""
    if n < 4:
        return 1
    return max(1, int(round(math.log2(n) / math.log2(max(math.log2(n), 2.0)))))


def predicted_competitiveness(n: int, alpha: int, constant: float = 1.0) -> float:
    """The Theorem 5.3 / Corollary 6.2 upper-bound shape.

    ``constant * log^2(n) * (alpha + n^{1/alpha})`` — we use exponent
    ``1/alpha`` for the ``n^{O(1/alpha)}`` term.
    """
    if n < 2 or alpha < 1:
        raise ValueError("need n >= 2 and alpha >= 1")
    logn = math.log2(n)
    return constant * (logn**2) * (alpha + n ** (1.0 / alpha))


def predicted_lower_bound(n: int, alpha: int) -> float:
    """The Lemma 8.1 lower bound ``floor(n^{1/(2 alpha)}) / alpha``."""
    if n < 2 or alpha < 1:
        raise ValueError("need n >= 2 and alpha >= 1")
    return math.floor(n ** (1.0 / (2.0 * alpha))) / alpha


def sparsity_tradeoff_curve(n: int, alphas: List[int], constant: float = 1.0) -> List[Tuple[int, float, float]]:
    """Upper- and lower-bound predictions per α.

    Returns tuples ``(alpha, upper_prediction, lower_prediction)``.
    """
    return [
        (alpha, predicted_competitiveness(n, alpha, constant), predicted_lower_bound(n, alpha))
        for alpha in alphas
    ]


def deterministic_single_path_barrier(n: int, max_degree: int) -> float:
    """The [KKT91] barrier for 1-path deterministic oblivious routing: ``sqrt(n) / degree``.

    (The theorem states congestion at least Omega(sqrt(n) / Delta) on some
    permutation demand.)
    """
    if n < 2 or max_degree < 1:
        raise ValueError("need n >= 2 and max_degree >= 1")
    return math.sqrt(n) / max_degree


def completion_time_sparsity(n: int) -> int:
    """The Lemma 2.8 sparsity ``Theta((log n / log log n)^2)``."""
    base = logarithmic_sparsity(n)
    return base * base


__all__ = [
    "logarithmic_sparsity",
    "predicted_competitiveness",
    "predicted_lower_bound",
    "sparsity_tradeoff_curve",
    "deterministic_single_path_barrier",
    "completion_time_sparsity",
]
