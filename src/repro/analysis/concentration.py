"""Concentration bounds used by the paper's analysis (Appendix B).

The proof of the Main Lemma relies on Chernoff bounds for sums of
*negatively associated* 0/1 random variables (Lemmas B.5 and B.6) and on
the product rule for lower-tail events on disjoint index sets (Lemma
B.4).  The functions here implement those closed forms so that the
experiment E5 can compare the measured failure rates of the weak-routing
process against the analytical predictions, and so the rounding lemma's
certified bound can be cross-checked numerically.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def chernoff_upper_tail(mu: float, delta: float) -> float:
    """Lemma B.6: ``P[X >= (1 + delta) mu] <= exp(-delta^2 mu / (2 + delta))``.

    Valid for sums of negatively associated 0/1 variables with mean
    ``mu`` and any ``delta > 0``.
    """
    if mu < 0:
        raise ValueError("mu must be nonnegative")
    if delta <= 0:
        raise ValueError("delta must be positive")
    if mu == 0:
        return 0.0
    return math.exp(-(delta**2) * mu / (2.0 + delta))


def chernoff_large_deviation(mu: float, delta: float) -> float:
    """Lemma B.5: ``P[X >= delta * mu] <= exp(-delta mu ln(delta) / 4)`` for delta >= 2.

    This is the large-deviation form the low-sparsity case needs (the
    extra ``ln(delta)`` is what buys the ``n^{O(1/alpha)}`` trade-off).
    """
    if mu < 0:
        raise ValueError("mu must be nonnegative")
    if delta < 2:
        raise ValueError("the large-deviation bound requires delta >= 2")
    if mu == 0:
        return 0.0
    return math.exp(-delta * mu * math.log(delta) / 4.0)


def negatively_associated_product_bound(tail_probabilities: Iterable[float]) -> float:
    """Lemma B.4: the probability that *all* lower-bound events on disjoint
    index sets occur is at most the product of the individual probabilities."""
    product = 1.0
    for probability in tail_probabilities:
        if not (0.0 <= probability <= 1.0):
            raise ValueError("probabilities must lie in [0, 1]")
        product *= probability
    return product


def empirical_tail_probability(samples: Sequence[float], threshold: float) -> float:
    """Fraction of ``samples`` that are >= ``threshold`` (empirical tail)."""
    samples = list(samples)
    if not samples:
        raise ValueError("need at least one sample")
    return sum(1 for value in samples if value >= threshold) / len(samples)


def union_bound(probabilities: Iterable[float]) -> float:
    """The union bound, clipped to 1."""
    return min(1.0, sum(probabilities))


def main_lemma_failure_bound(num_edges: int, h: float, support_size: int) -> float:
    """The Lemma 5.6 failure probability bound ``m^{-(h+3)|supp(d)|}``."""
    if num_edges < 2 or support_size < 1 or h < 1:
        raise ValueError("need m >= 2, |supp(d)| >= 1, h >= 1")
    return float(num_edges) ** (-(h + 3.0) * support_size)


__all__ = [
    "chernoff_upper_tail",
    "chernoff_large_deviation",
    "negatively_associated_product_bound",
    "empirical_tail_probability",
    "union_bound",
    "main_lemma_failure_bound",
]
