"""Bad-pattern counting (Definition 5.11 and Lemma 5.13).

A *bad pattern* is an m-tuple of nonnegative integers ``(b_1, ..., b_m)``
with ``D/4 <= sum_k gamma * b_k <= D``.  Lemma 5.13 bounds their number
by ``m^{6 D / alpha}`` (after the proof's accounting the exponent is
``4 D / alpha``; the statement keeps the looser 6).  This module provides
the analytic bound and an exact count for tiny parameters, which the test
suite compares against each other.
"""

from __future__ import annotations

import math
from functools import lru_cache


def bad_pattern_count_bound(num_edges: int, demand_size: float, gamma: float, alpha: int) -> float:
    """The Lemma 5.13 style upper bound ``(m + 2m^3)^{D / gamma} <= m^{4 D / alpha}``.

    We return the intermediate quantity ``(m + 2 m^3) ** floor(D / gamma)``
    (as a float; it can be astronomically large, in which case ``inf`` is
    returned) together with the cleaner exponent form accessible through
    :func:`bad_pattern_exponent_bound`.
    """
    if num_edges < 1 or gamma <= 0 or alpha < 1:
        raise ValueError("need m >= 1, gamma > 0, alpha >= 1")
    slots = int(math.floor(demand_size / gamma))
    if slots <= 0:
        return 1.0
    base = num_edges + 2 * num_edges**3
    try:
        return float(base**slots)
    except OverflowError:
        return float("inf")


def bad_pattern_exponent_bound(num_edges: int, demand_size: float, alpha: int) -> float:
    """log_m of the Lemma 5.13 bound: ``4 D / alpha`` (using m^4 >= m + 2m^3)."""
    if num_edges < 2 or alpha < 1:
        raise ValueError("need m >= 2 and alpha >= 1")
    return 4.0 * demand_size / alpha


@lru_cache(maxsize=None)
def _compositions_at_most(total: int, parts: int) -> int:
    """Number of tuples of ``parts`` nonnegative integers summing to <= total."""
    # stars and bars: sum_{s=0}^{total} C(s + parts - 1, parts - 1) = C(total + parts, parts)
    return math.comb(total + parts, parts)


def count_bad_patterns_exact(num_edges: int, demand_size: int, gamma: int) -> int:
    """Exact number of bad patterns for integer parameters.

    Counts m-tuples of nonnegative integers ``b`` with
    ``D/4 <= gamma * sum(b) <= D``, i.e. ``ceil(D / (4 gamma)) <= sum(b)
    <= floor(D / gamma)``.  Intended for tiny parameters in tests.
    """
    if num_edges < 1 or gamma <= 0:
        raise ValueError("need m >= 1 and gamma > 0")
    low = math.ceil(demand_size / (4 * gamma))
    high = math.floor(demand_size / gamma)
    if high < low:
        return 0
    def compositions_equal(total: int) -> int:
        return math.comb(total + num_edges - 1, num_edges - 1)
    return sum(compositions_equal(total) for total in range(low, high + 1))


__all__ = [
    "bad_pattern_count_bound",
    "bad_pattern_exponent_bound",
    "count_bad_patterns_exact",
]
