"""Theory-side utilities: concentration bounds, bad patterns, predicted curves."""

from repro.analysis.concentration import (
    chernoff_upper_tail,
    chernoff_large_deviation,
    negatively_associated_product_bound,
    empirical_tail_probability,
)
from repro.analysis.bad_patterns import bad_pattern_count_bound, count_bad_patterns_exact
from repro.analysis.theory import (
    predicted_competitiveness,
    predicted_lower_bound,
    logarithmic_sparsity,
    sparsity_tradeoff_curve,
)

__all__ = [
    "chernoff_upper_tail",
    "chernoff_large_deviation",
    "negatively_associated_product_bound",
    "empirical_tail_probability",
    "bad_pattern_count_bound",
    "count_bad_patterns_exact",
    "predicted_competitiveness",
    "predicted_lower_bound",
    "logarithmic_sparsity",
    "sparsity_tradeoff_curve",
]
