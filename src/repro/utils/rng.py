"""Reproducible randomness helpers.

Every randomized routine in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng`
normalizes all three into a ``Generator`` so call sites never touch the
global numpy random state, and experiments are reproducible from their
declared seeds alone.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh non-deterministic generator), an integer seed, or
        an existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator or seed")


def spawn_rngs(rng: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are derived through ``Generator.spawn`` so that parallel or
    per-trial streams do not overlap.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    return parent.spawn(count)


def random_permutation(rng: RngLike, items: Sequence) -> list:
    """Return a uniformly random permutation of ``items`` as a list."""
    generator = ensure_rng(rng)
    order = generator.permutation(len(items))
    items = list(items)
    return [items[i] for i in order]


def weighted_choice(rng: RngLike, items: Sequence, weights: Sequence[float]):
    """Choose one element of ``items`` with probability proportional to ``weights``."""
    generator = ensure_rng(rng)
    weights = np.asarray(weights, dtype=float)
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    probabilities = weights / total
    index = generator.choice(len(items), p=probabilities)
    return items[int(index)]


__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "random_permutation", "weighted_choice"]
