"""Shared utilities: reproducible randomness, tables, and timing helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import Table, format_float, format_series
from repro.utils.timing import Stopwatch, Timer

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Table",
    "format_float",
    "format_series",
    "Stopwatch",
    "Timer",
]
