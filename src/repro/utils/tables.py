"""ASCII table formatting used by the experiment harness.

The experiment harness prints the same rows/series that EXPERIMENTS.md
records, so the formatting lives in one small module that both the
benchmarks and the example scripts share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


def format_float(value: float, precision: int = 3) -> str:
    """Format a float compactly: integers without decimals, others rounded."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)  # "inf", "-inf", "nan"
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e12:
        return str(int(round(value)))
    if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
        return f"{value:.{precision}e}"
    return f"{value:.{precision}f}"


def format_series(values: Iterable[float], precision: int = 3) -> str:
    """Format a numeric series as a comma-separated string."""
    return ", ".join(format_float(v, precision) for v in values)


@dataclass
class Table:
    """A simple column-aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    title:
        Optional title printed above the table.
    """

    headers: Sequence[str]
    title: str = ""
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append a row; numeric values are formatted with :func:`format_float`."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values, got {len(values)}"
            )
        formatted = []
        for value in values:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                formatted.append(format_float(value))
            else:
                formatted.append(str(value))
        self.rows.append(formatted)

    def render(self) -> str:
        """Render the table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header_line)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


__all__ = ["Table", "format_float", "format_series"]
