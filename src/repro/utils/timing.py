"""Small timing helper used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Timer:
    """Accumulates wall-clock time per named section.

    Usage::

        timer = Timer()
        with timer.section("lp"):
            solve()
        print(timer.totals["lp"])
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def record(self, name: str, elapsed: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    def summary(self) -> List[str]:
        lines = []
        for name in sorted(self.totals):
            total = self.totals[name]
            count = self.counts[name]
            lines.append(f"{name}: {total:.3f}s over {count} call(s)")
        return lines


class _Section:
    def __init__(self, timer: Timer, name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.record(self._name, time.perf_counter() - self._start)


__all__ = ["Timer"]
