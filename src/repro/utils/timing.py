"""Timing helpers shared by the harness and the benchmark targets.

All wall-clock measurement in the repository goes through
``time.perf_counter`` (monotonic, highest available resolution) — either
via :class:`Stopwatch` for one-off measurements or via
:class:`Timer` for named, accumulated sections.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


class Stopwatch:
    """Context manager measuring one block with ``time.perf_counter``.

    The bench targets (``repro bench linalg|rebase|stream``) all time
    their measured loops through this class::

        with Stopwatch() as watch:
            run_workload()
        print(watch.elapsed)

    ``elapsed`` is live while the block runs and freezes on exit.
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self._elapsed: float = 0.0
        self._running = False

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self._running = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._elapsed = time.perf_counter() - self._start
        self._running = False

    @property
    def elapsed(self) -> float:
        """Seconds measured so far (final once the block has exited)."""
        if self._running:
            return time.perf_counter() - self._start
        return self._elapsed


@dataclass
class Timer:
    """Accumulates wall-clock time per named section.

    Usage::

        timer = Timer()
        with timer.section("lp"):
            solve()
        print(timer.totals["lp"])
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def record(self, name: str, elapsed: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    def summary(self) -> List[str]:
        lines = []
        for name in sorted(self.totals):
            total = self.totals[name]
            count = self.counts[name]
            lines.append(f"{name}: {total:.3f}s over {count} call(s)")
        return lines


class _Section:
    def __init__(self, timer: Timer, name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.record(self._name, time.perf_counter() - self._start)


__all__ = ["Stopwatch", "Timer"]
