"""Timing helpers shared by the harness and the benchmark targets.

All wall-clock measurement in the repository goes through
``time.perf_counter`` (monotonic, highest available resolution) — either
via :class:`Stopwatch` for one-off measurements or via
:class:`Timer` for named, accumulated sections.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Stopwatch:
    """Context manager measuring one block with ``time.perf_counter``.

    The bench targets (``repro bench linalg|rebase|stream``) and the
    tracing spans (:mod:`repro.obs`) all time their measured blocks
    through this class::

        with Stopwatch() as watch:
            run_workload()
        print(watch.elapsed)

    ``elapsed`` is live while the block runs and freezes on exit.
    ``clock`` swaps the time source — the overhead bench passes
    ``time.process_time`` so a stolen vCPU slice or a descheduled
    window does not count against the measured leg.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._start: float = 0.0
        self._elapsed: float = 0.0
        self._running = False

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock()
        self._running = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._elapsed = self._clock() - self._start
        self._running = False

    @property
    def elapsed(self) -> float:
        """Seconds measured so far (final once the block has exited)."""
        if self._running:
            return self._clock() - self._start
        return self._elapsed

    @property
    def started_at(self) -> float:
        """``perf_counter`` value at ``__enter__`` (0.0 before entry).

        Trace spans use this to place themselves on the tracer's
        monotonic timeline without a second ``perf_counter`` call.
        """
        return self._start


@dataclass
class Timer:
    """Accumulates wall-clock time per named section.

    Usage::

        timer = Timer()
        with timer.section("lp"):
            solve()
        print(timer.totals["lp"])
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def record(self, name: str, elapsed: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    def summary(self) -> List[str]:
        lines = []
        for name in sorted(self.totals):
            total = self.totals[name]
            count = self.counts[name]
            lines.append(f"{name}: {total:.3f}s over {count} call(s)")
        return lines


class _Section:
    def __init__(self, timer: Timer, name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.record(self._name, time.perf_counter() - self._start)


class PeakMemory:
    """Context manager sampling tracemalloc peak allocation over a block.

    The same primitive the tracing spans use (:mod:`repro.obs` marks
    memory spans with ``tracemalloc.reset_peak()`` on entry), packaged
    for the bench targets: ``peak_kb`` is the block's allocation
    high-water mark *above the entry baseline*, which is exactly what a
    memory budget bounds::

        with PeakMemory() as mem, Stopwatch() as watch:
            evaluate()
        entry = timing_entry(watch.elapsed, mem_peak_kb=mem.peak_kb)

    Tracemalloc is started if not already running (and stopped again on
    exit if this instance started it).  numpy routes its allocations
    through ``PyTraceMalloc_Track``, so array workloads are visible.
    ``peak_kb`` is ``None`` until the block exits.
    """

    def __init__(self) -> None:
        self.peak_kb: Optional[float] = None
        self._started_tracing = False
        self._baseline = 0

    def __enter__(self) -> "PeakMemory":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        tracemalloc.reset_peak()
        self._baseline = tracemalloc.get_traced_memory()[0]
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        peak = tracemalloc.get_traced_memory()[1]
        self.peak_kb = max(0.0, (peak - self._baseline) / 1024.0)
        if self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False


def timing_entry(
    seconds: float,
    count: int | None = None,
    rate_key: str | None = None,
    mem_peak_kb: float | None = None,
    **extra: object,
) -> Dict[str, object]:
    """Build one ``backends``-style timing record for a bench artifact.

    Every bench target stores per-backend measurements as a dict with a
    ``seconds`` field plus an optional throughput field derived from an
    item count (``demands_per_sec``, ``steps_per_sec``, ...).  This
    helper is the single place that derivation lives so the artifact
    schema (``repro-bench/v1``) stays consistent across targets::

        timing_entry(watch.elapsed, count=num_steps, rate_key="steps_per_sec")
        # -> {"seconds": ..., "steps_per_sec": ...}

    ``mem_peak_kb`` (typically from :class:`PeakMemory`) adds the peak
    tracemalloc allocation of the measured block, so any target can
    report memory with the same primitive the obs spans use.  ``extra``
    keys are copied through verbatim (after the rate, matching the
    historical key order of the committed artifacts).
    """
    entry: Dict[str, object] = {"seconds": seconds}
    if count is not None:
        if rate_key is None:
            raise ValueError("timing_entry needs rate_key when count is given")
        entry[rate_key] = count / seconds if seconds > 0 else None
    if mem_peak_kb is not None:
        entry["mem_peak_kb"] = float(mem_peak_kb)
    entry.update(extra)
    return entry


__all__ = ["PeakMemory", "Stopwatch", "Timer", "timing_entry"]
