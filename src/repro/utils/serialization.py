"""Strict-JSON serialization helpers.

``json.dumps`` happily emits ``NaN``/``Infinity`` literals, which most
strict parsers (``jq``, ``JSON.parse``) reject.  Utilization ratios and
experiment tables legitimately contain non-finite floats (empty demand
buckets, zero optima), so every JSON-producing path in the package —
report ``to_json`` methods and the CLI ``--json`` flags — routes through
these helpers, which map non-finite floats to ``null``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Optional


def json_sanitize(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_sanitize(item) for item in value]
    return value


def dumps(value: Any, indent: Optional[int] = 2) -> str:
    """``json.dumps`` with non-finite cleanup and a ``str`` fallback."""
    return json.dumps(json_sanitize(value), indent=indent, default=str)


__all__ = ["json_sanitize", "dumps"]
