"""Scenario-axis registration for the telemetry layer.

Imported lazily by :mod:`repro.scenarios.spec` (see
``_EXTENSION_AXIS_MODULES``); importing it registers the demand kind
``estimated`` — what a telemetry-only controller *believes* the demand
is.  Each snapshot of a base demand model (default ``fitted-gravity``)
is routed by a shortest-path measurement routing, observed through the
telemetry model (noise, sensor coverage, granularity), and replaced by
its ODME estimate:

    DemandSpec("estimated", params=(("base", "fitted-gravity"),
                                    ("noise", 0.05), ("coverage", 0.75)))

Sweeping ``estimated(...)`` against its own base kind gives scenario
grids an estimated-vs-true axis: the difference between the two cells
is exactly the competitive-ratio cost of demand estimation error.

Randomness is consumed from the runner-passed generator in a fixed
order (base series first, then one observation per snapshot), so the
axis obeys the suite determinism contract for any worker count.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.demands.traffic_matrix import TrafficMatrixSeries
from repro.graphs.network import Network
from repro.linalg.compiled import CompiledRouting
from repro.scenarios.spec import DemandSpec, register_demand_kind

from repro.telemetry.observation import ObservationModel
from repro.telemetry.odme import estimate_demand

#: Base-model parameters forwarded from estimated(...) to the base kind.
_FORWARDED_PARAMS = ("total", "jitter")


def _series_estimated(
    network: Network, snapshots: int, rng, params: Dict[str, Any]
) -> TrafficMatrixSeries:
    base_kind = str(params.get("base", "fitted-gravity"))
    base_params = tuple(
        (key, params[key]) for key in _FORWARDED_PARAMS if key in params
    )
    truth = DemandSpec(base_kind, params=base_params).series(network, snapshots, rng)

    # The measurement routing is the spf baseline: demand-independent,
    # deterministic, and per-source shortest-path trees keep the
    # ingress-telemetry inverse problems well-posed.
    from repro.linalg.bench import _shortest_path_routing

    compiled = CompiledRouting.from_routing(_shortest_path_routing(network))
    model = ObservationModel(
        noise=float(params.get("noise", 0.05)),
        coverage=float(params.get("coverage", 1.0)),
        granularity=str(params.get("granularity", "ingress")),
    )
    method = str(params.get("method", "auto"))
    regularization = float(params.get("regularization", 0.0))
    estimated = []
    for snapshot in truth:
        observation = model.observe(compiled, snapshot, rng=rng)
        estimate = estimate_demand(
            compiled, observation, method=method, regularization=regularization
        )
        estimated.append(estimate.demand)
    return TrafficMatrixSeries(snapshots=estimated)


# overwrite=True keeps registration idempotent: if this module's import
# fails partway once, the spec layer retries it on the next axis use.
register_demand_kind("estimated", _series_estimated, overwrite=True)
