"""Windowed online estimation: re-estimate demand from streaming loads.

The streaming runner (:mod:`repro.stream`) maintains a
:class:`~repro.stream.RollingStreamStats` reduction over per-step link
loads; a controller doing online ODME re-estimates the demand from
exactly that window — smoothing out step noise at the cost of lagging
the stream.  :class:`WindowedOdmeEstimator` packages that loop as a
``run_stream(..., on_step=estimator, track_loads=True)`` hook:

    from repro.stream import run_stream
    from repro.telemetry import WindowedOdmeEstimator

    estimator = WindowedOdmeEstimator(every=8)
    run_stream(network, stream, router, on_step=estimator, track_loads=True)
    for step, estimate in estimator.estimates:
        ...

Every ``every`` steps the estimator reads the window-mean load vector
from the rolling statistics, wraps it as an aggregate-link observation
against the evaluator's *current* compiled routing, and runs the same
:func:`~repro.telemetry.estimate_demand` pass as the batch pipeline.
Aggregate link loads are underdetermined, so windowed estimates are
validated by load reproduction (the estimate's ``residual``), not by
pairwise recovery; pass a ``prior``/``regularization`` to pin down the
pairwise split.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import TelemetryError

from repro.telemetry.observation import LinkLoadObservation
from repro.telemetry.odme import OdmeEstimate, estimate_demand


def observation_from_loads(compiled, loads: np.ndarray) -> LinkLoadObservation:
    """Wrap a raw per-edge load vector as a full-coverage link observation."""
    loads = np.asarray(loads, dtype=float)
    if loads.shape != (compiled.num_edges,):
        raise TelemetryError(
            f"load vector has shape {loads.shape}, expected "
            f"({compiled.num_edges},) for the compiled routing"
        )
    return LinkLoadObservation(
        loads=loads,
        observed=np.ones(compiled.num_edges, dtype=bool),
        granularity="link",
        noise=0.0,
        coverage=1.0,
        sources=(),
        edges=tuple(compiled.network.edges),
    )


def estimate_from_stats(
    stats,
    compiled,
    method: str = "auto",
    prior: Optional[np.ndarray] = None,
    regularization: float = 0.0,
) -> OdmeEstimate:
    """One ODME pass from a rolling window's mean link loads.

    ``stats`` must have been built with ``track_loads=True`` (the
    runner's ``track_loads`` flag); otherwise there is no load window
    to estimate from and a :class:`TelemetryError` explains the fix.
    """
    loads = stats.windowed_mean_loads()
    if loads is None:
        raise TelemetryError(
            "streaming statistics carry no load window — run the stream "
            "with track_loads=True to enable windowed estimation"
        )
    return estimate_demand(
        compiled,
        observation_from_loads(compiled, loads),
        method=method,
        prior=prior,
        regularization=regularization,
    )


class WindowedOdmeEstimator:
    """An ``on_step`` hook that periodically re-estimates the demand.

    Parameters
    ----------
    every:
        Re-estimate on steps ``every-1, 2·every-1, …`` (after the
        window has absorbed ``every`` fresh observations).
    method / prior / regularization:
        Forwarded to :func:`~repro.telemetry.estimate_demand`.

    Collected ``(step, OdmeEstimate)`` pairs live on :attr:`estimates`.
    """

    def __init__(
        self,
        every: int = 8,
        method: str = "auto",
        prior: Optional[np.ndarray] = None,
        regularization: float = 0.0,
    ) -> None:
        if every < 1:
            raise TelemetryError(f"estimation period must be >= 1 steps, got {every}")
        self.every = int(every)
        self.method = method
        self.prior = prior
        self.regularization = float(regularization)
        self.estimates: List[Tuple[int, OdmeEstimate]] = []

    def __call__(self, step: int, evaluator, stats) -> None:
        """The runner hook: called once per replayed step."""
        if (step + 1) % self.every:
            return
        self.estimates.append(
            (
                step,
                estimate_from_stats(
                    stats,
                    evaluator.compiled,
                    method=self.method,
                    prior=self.prior,
                    regularization=self.regularization,
                ),
            )
        )

    def latest(self) -> Optional[OdmeEstimate]:
        """The most recent estimate, or ``None`` before the first one."""
        return self.estimates[-1][1] if self.estimates else None

    def __repr__(self) -> str:
        return (
            f"WindowedOdmeEstimator(every={self.every}, method={self.method!r}, "
            f"estimates={len(self.estimates)})"
        )


__all__ = [
    "WindowedOdmeEstimator",
    "estimate_from_stats",
    "observation_from_loads",
]
