"""The ``odme`` bench target: demand estimation across the real catalog.

Registered with the :mod:`repro.linalg.bench` target registry (the
``repro bench odme`` CLI path).  For each bundled real topology the
bench compiles the shortest-path routing, generates fitted-gravity truth
snapshots, observes them through noise-free full-coverage ingress
telemetry, and times the two estimator legs against each other:

* ``nnls`` — per-source non-negative least squares on the compiled
  pair × edge operator (the scipy leg, or the numpy active-set
  fallback on scipy-free installs), and
* ``entropy`` — marginal extraction plus IPF projection, the
  numpy-only inference leg.

``max_abs_difference`` is the worst NNLS recovery error against the
known truth over the whole catalog — the committed baseline therefore
doubles as a standing proof that noise-free closed-loop estimation is
exact on every bundled real topology, not just the test trio.

The aggregate ``backends`` / ``speedup`` / ``max_abs_difference`` keys
follow the ``repro-bench/v1`` schema; the per-topology breakdown lives
under the additive ``topologies`` key.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.linalg.bench import BENCH_SCHEMA, environment_info, register_bench
from repro.linalg.compiled import CompiledRouting
from repro.net.catalog import catalog_entries, load_catalog_topology
from repro.net.fitting import fitted_gravity_series
from repro.utils.timing import Stopwatch, timing_entry

from repro.telemetry.observation import ObservationModel
from repro.telemetry.odme import estimate_demand

#: Truth snapshots estimated per topology, per scale.
_ODME_SCALES: Dict[str, int] = {"smoke": 1, "small": 2, "full": 4}

#: The smoke scale trims the catalog to its smallest entries so the CI
#: leg stays in seconds; other scales sweep the full catalog.
_SMOKE_TOPOLOGIES = 3


def bench_odme(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Time NNLS vs entropy-IPF demand estimation on the real catalog."""
    from repro.linalg.bench import _shortest_path_routing

    num_snapshots = _ODME_SCALES[scale]
    entries = sorted(catalog_entries(), key=lambda entry: (entry.nodes, entry.name))
    if scale == "smoke":
        entries = entries[:_SMOKE_TOPOLOGIES]

    model = ObservationModel(noise=0.0, coverage=1.0, granularity="ingress")
    per_topology: List[Dict[str, Any]] = []
    observe_total = 0.0
    nnls_total = 0.0
    entropy_total = 0.0
    compile_total = 0.0
    max_error = 0.0
    total_nodes = 0
    total_edges = 0
    total_pairs = 0
    nnls_method = "nnls"
    representation = "sparse"
    for index, entry in enumerate(entries):
        network = load_catalog_topology(entry.qualified_name)
        routing = _shortest_path_routing(network)
        with Stopwatch() as compile_watch:
            compiled = CompiledRouting.from_routing(routing)
        representation = compiled.representation
        rng = np.random.default_rng(np.random.SeedSequence([int(seed), index]))
        truths = [
            snapshot
            for snapshot in fitted_gravity_series(network, num_snapshots, rng=rng)
        ]

        with Stopwatch() as observe_watch:
            observations = [
                model.observe(compiled, truth, rng=rng) for truth in truths
            ]

        topology_error = 0.0
        with Stopwatch() as nnls_watch:
            for truth, observation in zip(truths, observations):
                estimate = estimate_demand(compiled, observation, method="nnls")
                nnls_method = estimate.method
                truth_vector = compiled.demand_vector(truth, missing="drop")
                topology_error = max(
                    topology_error,
                    float(np.max(np.abs(estimate.vector - truth_vector), initial=0.0)),
                )
        with Stopwatch() as entropy_watch:
            for observation in observations:
                estimate_demand(compiled, observation, method="entropy")

        per_topology.append(
            {
                "name": entry.qualified_name,
                "format": entry.format,
                "n": network.num_vertices,
                "m": network.num_edges,
                "num_pairs": compiled.num_pairs,
                "num_snapshots": num_snapshots,
                "compile_seconds": compile_watch.elapsed,
                "observe_seconds": observe_watch.elapsed,
                "nnls_seconds": nnls_watch.elapsed,
                "entropy_seconds": entropy_watch.elapsed,
                "max_recovery_error": topology_error,
            }
        )
        compile_total += compile_watch.elapsed
        observe_total += observe_watch.elapsed
        nnls_total += nnls_watch.elapsed
        entropy_total += entropy_watch.elapsed
        max_error = max(max_error, topology_error)
        total_nodes += network.num_vertices
        total_edges += network.num_edges
        total_pairs += compiled.num_pairs

    estimations = num_snapshots * len(entries)
    return {
        "schema": BENCH_SCHEMA,
        "name": "odme",
        "scale": scale,
        "seed": seed,
        "network": {"name": "catalog", "n": total_nodes, "m": total_edges},
        "workload": {
            "num_topologies": len(entries),
            "num_snapshots": num_snapshots,
            "num_estimations": estimations,
            "num_pairs": total_pairs,
            "granularity": "ingress",
            "representation": representation,
            "compile_seconds": compile_total,
            "observe_seconds": observe_total,
        },
        "backends": {
            "entropy": {
                "backend": "entropy-ipf",
                **timing_entry(entropy_total, count=estimations, rate_key="demands_per_sec"),
            },
            "nnls": {
                "backend": nnls_method,
                **timing_entry(nnls_total, count=estimations, rate_key="demands_per_sec"),
            },
        },
        "speedup_nnls_over_entropy": (
            entropy_total / nnls_total if nnls_total > 0 else None
        ),
        "max_abs_difference": max_error,
        "topologies": per_topology,
        "environment": environment_info(),
    }


register_bench(
    "odme",
    bench_odme,
    "demand estimation: NNLS vs entropy-IPF over the real-topology catalog",
)

__all__ = ["bench_odme"]
