"""The closed estimation loop: route truth, observe, estimate, re-route.

:func:`run_odme_loop` is the subsystem's end-to-end pipeline and the
engine behind ``repro net odme``.  Per traffic-matrix snapshot:

1. the **true** demand is routed by the installed scheme (this is the
   forwarding state whose counters a controller would read),
2. the resulting link loads are *observed* through an
   :class:`~repro.telemetry.ObservationModel` (noise, dropout,
   granularity),
3. an :func:`~repro.telemetry.estimate_demand` pass inverts the
   compiled pair × edge operator into an **estimated** demand,
4. the scheme **re-routes on the estimate** — the routing a controller
   that only sees telemetry would actually install — and
5. that estimate-driven routing is evaluated **on the truth**: the
   congestion gap between steps 1 and 5 is precisely what demand
   estimation error costs the scheme.

Noise-free full-coverage ingress telemetry closes the loop exactly
(estimate ≡ truth, gap ≡ 0); sweeping noise/coverage then maps how the
competitive story of the paper degrades under realistic observability.

Seeding: snapshot ``k`` observes under a generator derived from
``SeedSequence([seed, k])``, so artifacts are bit-identical across
repeated runs and independent of any evaluation order.  Results carry
no wall-clock fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.exceptions import TelemetryError
from repro.graphs.network import Network
from repro.linalg.compiled import CompiledRouting
from repro.obs import trace_span
from repro.utils.serialization import dumps as _json_dumps

from repro.telemetry.observation import ObservationModel
from repro.telemetry.odme import estimate_demand


@dataclass
class OdmeLoopResult:
    """Outcome of one closed-loop run over a traffic-matrix series."""

    network: str
    scheme: str
    method: str
    granularity: str
    noise: float
    coverage: float
    seed: int
    num_snapshots: int
    records: List[Dict[str, Any]] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self, include_steps: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "network": self.network,
            "scheme": self.scheme,
            "method": self.method,
            "granularity": self.granularity,
            "noise": self.noise,
            "coverage": self.coverage,
            "seed": self.seed,
            "num_snapshots": self.num_snapshots,
            "summary": dict(self.summary),
        }
        if include_steps:
            payload["snapshots"] = [dict(record) for record in self.records]
        return payload

    def to_json(self, indent: Optional[int] = 2, include_steps: bool = True) -> str:
        """JSON rendering (NaN/inf become null per strict JSON)."""
        return _json_dumps(self.to_dict(include_steps=include_steps), indent=indent)

    def render(self) -> str:
        """Plain-text snapshot table plus the summary line."""
        header = (
            f"{'snap':>4s} {'est.err':>9s} {'residual':>9s} {'cong.true':>10s} "
            f"{'cong.est':>9s} {'gap':>9s}"
        )
        lines = [
            f"{self.network}: {self.scheme} x {self.method} "
            f"({self.granularity}, noise={self.noise:g}, coverage={self.coverage:g})",
            header,
            "-" * len(header),
        ]
        for record in self.records:
            lines.append(
                f"{record['snapshot']:4d} {record['demand_error_l2']:9.2e} "
                f"{record['residual']:9.2e} {record['congestion_true']:10.4f} "
                f"{record['congestion_estimated']:9.4f} {record['congestion_gap']:+9.2e}"
            )
        summary = self.summary
        lines.append(
            f"mean est.err={summary['mean_demand_error']:.2e} "
            f"max est.err={summary['max_demand_error']:.2e} "
            f"max |gap|={summary['max_abs_congestion_gap']:.2e}"
        )
        return "\n".join(lines)


def _routing_of(result, scheme: str):
    routing = result.routing
    if routing is None:
        raise TelemetryError(
            f"scheme {scheme!r} did not expose a routing to compile — the "
            "closed loop needs one to measure and re-route (pick a "
            "fixed-ratio, spf, or semi-oblivious scheme)"
        )
    return routing


def run_odme_loop(
    network: Network,
    series,
    router,
    noise: float = 0.0,
    coverage: float = 1.0,
    granularity: str = "ingress",
    method: str = "auto",
    prior: Optional[np.ndarray] = None,
    regularization: float = 0.0,
    seed: int = 0,
    representation: str = "auto",
) -> OdmeLoopResult:
    """Run the closed estimation loop over every snapshot of ``series``.

    ``router`` is an installed scheme router (see
    :meth:`repro.engine.RoutingEngine.run_odme` for the facade that
    builds one); it is asked to route twice per snapshot — once on the
    truth (the measured forwarding state) and once on the estimate (what
    a telemetry-only controller would install).  Both routings are
    compiled and the estimate-driven one is scored **on the truth**.
    """
    model = ObservationModel(noise=noise, coverage=coverage, granularity=granularity)
    scheme = getattr(router, "name", str(router))
    records: List[Dict[str, Any]] = []
    resolved_method: Optional[str] = None
    for index, truth in enumerate(series):
        if truth.is_empty():
            continue
        with trace_span("odme.snapshot", snapshot=index):
            routing_true = _routing_of(router.route(truth), scheme)
            compiled = CompiledRouting.from_routing(routing_true, representation=representation)
            rng = np.random.default_rng(np.random.SeedSequence([int(seed), index]))
            observation = model.observe(compiled, truth, rng=rng)
            with trace_span("odme.estimate", method=method) as estimate_span:
                estimate = estimate_demand(
                    compiled,
                    observation,
                    method=method,
                    prior=prior,
                    regularization=regularization,
                )
                estimate_span.set("resolved_method", estimate.method)
                estimate_span.add("converged", 1 if estimate.converged else 0)
            resolved_method = estimate.method

            truth_vector = compiled.demand_vector(truth, missing="drop")
            truth_norm = float(np.linalg.norm(truth_vector))
            error_l2 = float(np.linalg.norm(estimate.vector - truth_vector)) / max(
                truth_norm, 1e-12
            )
            error_max = float(np.max(np.abs(estimate.vector - truth_vector), initial=0.0))

            congestion_true = compiled.congestion(truth, missing="drop")
            routing_estimated = _routing_of(router.route(estimate.demand), scheme)
            compiled_estimated = CompiledRouting.from_routing(
                routing_estimated, representation=representation
            )
            # The controller installs the estimate-driven routing; the real
            # traffic is still the truth — score it there.  Truth pairs the
            # re-routed state no longer covers are dropped (they would show
            # as infinite congestion, drowning the gap signal).
            congestion_estimated = compiled_estimated.congestion(truth, missing="drop")
            gap = congestion_estimated - congestion_true
            records.append(
                {
                    "snapshot": index,
                    "demand_error_l2": error_l2,
                    "demand_error_max": error_max,
                    "residual": estimate.residual,
                    "converged": estimate.converged,
                    "congestion_true": congestion_true,
                    "congestion_estimated": congestion_estimated,
                    "congestion_gap": gap,
                    "congestion_ratio": (
                        congestion_estimated / congestion_true
                        if congestion_true > 0
                        else None
                    ),
                    "estimated_volume": float(estimate.vector.sum()),
                    "true_volume": float(truth_vector.sum()),
                }
            )
    if not records:
        raise TelemetryError("cannot run the ODME loop on an all-empty series")
    errors = [record["demand_error_l2"] for record in records]
    gaps = [abs(record["congestion_gap"]) for record in records]
    ratios = [
        record["congestion_ratio"]
        for record in records
        if record["congestion_ratio"] is not None and np.isfinite(record["congestion_ratio"])
    ]
    summary = {
        "num_snapshots": len(records),
        "mean_demand_error": float(np.mean(errors)),
        "max_demand_error": float(np.max(errors)),
        "mean_abs_congestion_gap": float(np.mean(gaps)),
        "max_abs_congestion_gap": float(np.max(gaps)),
        "mean_congestion_ratio": float(np.mean(ratios)) if ratios else None,
        "all_converged": bool(all(record["converged"] for record in records)),
    }
    return OdmeLoopResult(
        network=network.name,
        scheme=scheme,
        method=resolved_method or method,
        granularity=granularity,
        noise=float(noise),
        coverage=float(coverage),
        seed=int(seed),
        num_snapshots=len(records),
        records=records,
        summary=summary,
    )


__all__ = ["OdmeLoopResult", "run_odme_loop"]
