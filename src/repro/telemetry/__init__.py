"""Telemetry & demand estimation: closed-loop ODME from observed link loads.

Everything below the scenario layer works from the *true* demand matrix;
real controllers only ever see link-load telemetry.  This package closes
that gap with three pieces:

* :class:`ObservationModel` — turn any compiled routing plus a demand
  into the per-link measurements a counter infrastructure would report,
  with configurable noise, sensor coverage, and granularity
  (per-ingress NetFlow-style rows or aggregate SNMP-style totals).
* :func:`estimate_demand` — origin–destination matrix estimation (ODME)
  by inverting the compiled pair × edge operator: non-negative least
  squares (scipy, with a deterministic numpy active-set fallback) or
  entropy projection via IPF on the inferred node marginals, optionally
  warm-started from the gravity prior (:func:`gravity_prior`).
* :func:`run_odme_loop` — the closed loop (route truth → observe →
  estimate → re-route on the estimate → score on the truth) behind
  ``repro net odme`` and :meth:`repro.engine.RoutingEngine.run_odme`;
  :class:`WindowedOdmeEstimator` runs the same estimation online from a
  :class:`~repro.stream.RollingStreamStats` load window.

Importing :mod:`repro.telemetry.scenario_axes` registers the
``estimated(...)`` demand kind; :mod:`repro.telemetry.bench` registers
the ``odme`` bench target.  Both are pulled in lazily by the scenario
and bench registries.
"""

from repro.telemetry.observation import (
    GRANULARITIES,
    LinkLoadObservation,
    ObservationModel,
)
from repro.telemetry.odme import (
    METHODS,
    OdmeEstimate,
    estimate_demand,
    gravity_prior,
)
from repro.telemetry.pipeline import OdmeLoopResult, run_odme_loop
from repro.telemetry.windowed import (
    WindowedOdmeEstimator,
    estimate_from_stats,
    observation_from_loads,
)

__all__ = [
    "GRANULARITIES",
    "METHODS",
    "LinkLoadObservation",
    "ObservationModel",
    "OdmeEstimate",
    "OdmeLoopResult",
    "WindowedOdmeEstimator",
    "estimate_demand",
    "estimate_from_stats",
    "gravity_prior",
    "observation_from_loads",
    "run_odme_loop",
]
