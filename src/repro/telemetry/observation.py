"""The observation model: per-link load telemetry from a compiled routing.

Real controllers never see the demand matrix — they see what the
network's counters report: per-link byte counts (SNMP-style aggregate
telemetry) or per-ingress per-link flow counts (NetFlow/IPFIX-style
attribution).  :class:`ObservationModel` turns any
:class:`~repro.linalg.CompiledRouting` plus a true demand into exactly
those measurements, with the imperfections that make estimation hard:

* **granularity** — ``"ingress"`` reports one load vector per source
  node (each row is the traffic *originating* at that node, per edge);
  ``"link"`` collapses them into the aggregate per-edge load a plain
  counter would show.  Ingress telemetry keeps the per-source inverse
  problems well-posed; aggregate link loads are heavily underdetermined
  (``m`` equations for ``n·(n-1)`` unknowns) and force prior-regularized
  estimation.
* **coverage** — a sensor-dropout mask: only a seeded random subset of
  edges reports.  Masks are *nested* in the coverage level (a prefix of
  one seeded edge permutation), so sweeping coverage with a fixed seed
  compares supersets of the same sensors.
* **noise** — multiplicative Gaussian error per counter
  (``measured = true · (1 + noise · g)``, clipped at zero), drawn for
  every edge regardless of the mask so two coverage levels under one
  seed see identical noise on their common sensors.

All randomness flows through the passed generator
(:func:`~repro.utils.rng.ensure_rng`), so observations obey the same
SeedSequence determinism contract as every other sampled object in the
package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import TelemetryError
from repro.graphs.network import Vertex
from repro.utils.rng import RngLike, ensure_rng

#: Observation granularities understood by :class:`ObservationModel`.
GRANULARITIES = ("ingress", "link")


@dataclass(frozen=True)
class LinkLoadObservation:
    """One snapshot of link-load telemetry.

    ``loads`` is ``(num_edges,)`` for ``"link"`` granularity and
    ``(num_sources, num_edges)`` for ``"ingress"`` (row order given by
    ``sources``).  ``observed`` marks the edges whose counters reported;
    unobserved columns still hold values but estimators must ignore
    them (:attr:`observed_indices` is the canonical selector).
    """

    loads: np.ndarray
    observed: np.ndarray
    granularity: str
    noise: float
    coverage: float
    sources: Tuple[Vertex, ...] = ()
    edges: Tuple[Tuple[Vertex, Vertex], ...] = field(default=(), repr=False)

    @property
    def num_edges(self) -> int:
        return int(self.observed.size)

    @property
    def observed_indices(self) -> np.ndarray:
        """Indices of reporting edges (network edge-index order)."""
        return np.flatnonzero(self.observed)

    @property
    def observed_fraction(self) -> float:
        return float(self.observed.sum()) / max(self.num_edges, 1)

    def aggregate_loads(self) -> np.ndarray:
        """Per-edge total load (``(num_edges,)``; ingress rows summed)."""
        if self.loads.ndim == 1:
            return np.asarray(self.loads, dtype=float)
        return np.asarray(self.loads.sum(axis=0), dtype=float)

    def observed_edge_loads(self) -> Dict[Tuple[Vertex, Vertex], float]:
        """``edge -> aggregate load`` over the reporting edges only."""
        aggregate = self.aggregate_loads()
        return {
            self.edges[index]: float(aggregate[index])
            for index in self.observed_indices
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "granularity": self.granularity,
            "noise": self.noise,
            "coverage": self.coverage,
            "num_edges": self.num_edges,
            "num_observed": int(self.observed.sum()),
            "observed_fraction": self.observed_fraction,
        }


class ObservationModel:
    """Turn (compiled routing, demand) into noisy, partial link telemetry.

    Parameters
    ----------
    noise:
        Relative standard deviation of the multiplicative Gaussian
        counter error (``0`` = exact counters).
    coverage:
        Fraction of edges whose counters report, in ``(0, 1]``.  The
        reporting subset is a seeded-permutation prefix, so masks are
        nested across coverage levels under one seed.
    granularity:
        ``"ingress"`` (per-source per-edge loads) or ``"link"``
        (aggregate per-edge loads).
    """

    def __init__(
        self,
        noise: float = 0.0,
        coverage: float = 1.0,
        granularity: str = "ingress",
    ) -> None:
        if noise < 0:
            raise TelemetryError(f"observation noise must be nonnegative, got {noise}")
        if not (0.0 < coverage <= 1.0):
            raise TelemetryError(
                f"sensor coverage must be in (0, 1], got {coverage}"
            )
        if granularity not in GRANULARITIES:
            raise TelemetryError(
                f"unknown observation granularity {granularity!r}; "
                f"available: {GRANULARITIES}"
            )
        self.noise = float(noise)
        self.coverage = float(coverage)
        self.granularity = granularity

    def observe(self, compiled, demand, rng: RngLike = None) -> LinkLoadObservation:
        """Measure ``demand`` routed by ``compiled``.

        The generator is consumed in a fixed order — edge permutation
        first, then one noise draw per counter over *all* edges — so a
        fixed seed yields nested masks and shared noise across coverage
        levels.  Demand on pairs the routing does not cover is dropped
        (an uncovered pair carries no traffic for counters to see).
        """
        generator = ensure_rng(rng)
        num_edges = compiled.num_edges
        operator = compiled.pair_edge_operator
        vector = compiled.demand_vector(demand, missing="drop")
        if self.granularity == "ingress":
            sources = tuple(compiled.network.vertices)
            source_index = {vertex: i for i, vertex in enumerate(sources)}
            loads = np.zeros((len(sources), num_edges), dtype=float)
            if len(vector):
                # Scatter the demand vector into one row per source, then
                # a single (n × pairs) @ (pairs × m) product yields every
                # per-ingress load vector at once.
                pair_source = np.array(
                    [source_index[source] for source, _ in compiled.pairs],
                    dtype=np.int64,
                )
                per_source = np.zeros((len(sources), len(vector)), dtype=float)
                per_source[pair_source, np.arange(len(vector))] = vector
                loads = np.asarray(per_source @ operator, dtype=float)
        else:
            sources = ()
            loads = np.asarray(vector @ operator, dtype=float).ravel()

        observed = np.ones(num_edges, dtype=bool)
        permutation = generator.permutation(num_edges)
        if self.coverage < 1.0:
            keep = int(np.ceil(self.coverage * num_edges))
            observed = np.zeros(num_edges, dtype=bool)
            observed[permutation[:keep]] = True
        if self.noise > 0.0:
            factors = 1.0 + self.noise * generator.standard_normal(loads.shape)
            loads = np.maximum(loads * factors, 0.0)
        return LinkLoadObservation(
            loads=loads,
            observed=observed,
            granularity=self.granularity,
            noise=self.noise,
            coverage=self.coverage,
            sources=sources,
            edges=tuple(compiled.network.edges),
        )

    def __repr__(self) -> str:
        return (
            f"ObservationModel(noise={self.noise}, coverage={self.coverage}, "
            f"granularity={self.granularity!r})"
        )


__all__ = ["GRANULARITIES", "LinkLoadObservation", "ObservationModel"]
