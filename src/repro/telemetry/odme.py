"""ODME estimators: demand matrices from observed link loads.

Origin–destination matrix estimation is the linear inverse problem at
the heart of the telemetry loop: the compiled pair × edge operator
``M`` of a :class:`~repro.linalg.CompiledRouting` is exactly the
assignment-matrix Jacobian (``loads = demand @ M``), so estimating the
demand from measured loads means solving ``d >= 0, d @ M ≈ y`` over the
reporting counters.  Two estimator families are provided:

* **non-negative least squares** (:func:`estimate_demand` with
  ``method="nnls"``/``"auto"``): solve the restricted system directly.
  With scipy, ``scipy.optimize.nnls`` does the work; on numpy-only
  installs a deterministic Lawson–Hanson active-set implementation
  takes over, so the estimator runs on both CI dependency legs.  Under
  ``"ingress"`` telemetry the problem decomposes into one small
  well-posed system per source node (shortest-path rows per source form
  a tree, hence an invertible path matrix) and noise-free recovery is
  exact; under aggregate ``"link"`` telemetry the system is heavily
  underdetermined and a Tikhonov anchor toward a prior
  (``regularization > 0``) picks among the solutions.
* **entropy projection** (``method="entropy"``): aggregate the observed
  loads into node marginals (:func:`~repro.net.marginals_from_link_loads`)
  and fit the maximum-entropy demand matching them — IPF on the pair
  simplex, optionally warm-started from a gravity ``prior``.  Pure
  numpy, coarse but robust: the tomogravity-style fallback when the
  routing operator is unavailable or untrusted.

:func:`gravity_prior` builds the standard warm start from the ingestion
layer's gravity fit (PR 5), aligned to a compiled pair index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.demands.demand import Demand
from repro.exceptions import TelemetryError
from repro.linalg import _matrix
from repro.linalg._matrix import to_dense
from repro.telemetry.observation import LinkLoadObservation

#: Estimator method names accepted by :func:`estimate_demand`.
METHODS = ("auto", "nnls", "entropy")

#: Below this relative magnitude an estimated entry is treated as zero.
_VALUE_CUTOFF = 1e-12


@dataclass(frozen=True)
class OdmeEstimate:
    """One estimated demand matrix plus estimation diagnostics.

    ``vector`` is aligned to the compiled pair index the estimate was
    produced against; ``residual`` is the relative load-reproduction
    error over the reporting counters (``||d̂ @ M − y|| / ||y||``), the
    figure a controller can check *without* knowing the true demand.
    """

    demand: Demand
    vector: np.ndarray = field(repr=False)
    method: str
    residual: float
    converged: bool
    observed_fraction: float
    granularity: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "residual": self.residual,
            "converged": self.converged,
            "observed_fraction": self.observed_fraction,
            "granularity": self.granularity,
            "total_volume": float(self.vector.sum()),
        }


def _nnls_numpy(
    A: np.ndarray, b: np.ndarray, max_iterations: Optional[int] = None
) -> np.ndarray:
    """Lawson–Hanson active-set NNLS in plain numpy.

    Deterministic (ties broken by lowest index via ``argmax``), solving
    the passive-set least-squares subproblems with ``lstsq``.  Intended
    for the small per-source systems of ingress telemetry (tens of
    unknowns); scipy's Fortran implementation takes over when available.
    """
    m, n = A.shape
    if max_iterations is None:
        max_iterations = 3 * n
    x = np.zeros(n)
    passive = np.zeros(n, dtype=bool)
    gradient = A.T @ (b - A @ x)
    tolerance = 10 * np.finfo(float).eps * np.linalg.norm(A, 1) * (max(m, n) + 1)
    iterations = 0
    while (not passive.all()) and np.any(gradient[~passive] > tolerance):
        iterations += 1
        if iterations > max_iterations:
            break  # return the best iterate found so far
        candidates = np.where(~passive, gradient, -np.inf)
        passive[int(np.argmax(candidates))] = True
        while True:
            z = np.zeros(n)
            z[passive], *_ = np.linalg.lstsq(A[:, passive], b, rcond=None)
            if np.all(z[passive] > 0):
                x = z
                break
            # Step toward z only as far as feasibility allows, then
            # drop the variables that hit zero from the passive set.
            blocking = passive & (z <= 0)
            denominator = np.where(blocking, np.maximum(x - z, 1e-300), 1.0)
            steps = np.where(blocking, x / denominator, np.inf)
            alpha = float(np.min(steps[blocking]))
            x = x + alpha * (z - x)
            passive &= x > tolerance
            x[~passive] = 0.0
        gradient = A.T @ (b - A @ x)
    return x


def _nnls(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dispatch to scipy's NNLS when present, the numpy fallback otherwise.

    ``HAVE_SCIPY`` is read from the module at call time (not import
    time) so the dependency-leg tests that monkeypatch it exercise the
    numpy path on a scipy-equipped machine.
    """
    if _matrix.HAVE_SCIPY:
        from scipy.optimize import nnls as _scipy_nnls

        solution, _ = _scipy_nnls(A, b)
        return solution
    return _nnls_numpy(A, b)


def _anchored(A: np.ndarray, b: np.ndarray, regularization: float, anchor: np.ndarray):
    """Row-stack the Tikhonov anchor ``sqrt(λ)·(x − anchor) → 0``."""
    weight = float(np.sqrt(regularization))
    stacked_A = np.vstack([A, weight * np.eye(A.shape[1])])
    stacked_b = np.concatenate([b, weight * anchor])
    return stacked_A, stacked_b


def gravity_prior(compiled, total: Optional[float] = None) -> np.ndarray:
    """A gravity-fit demand vector over ``compiled``'s pair index.

    The warm start for regularized/entropy estimation: the ingestion
    layer's capacity-weighted gravity fit (:func:`repro.net.fit_gravity`),
    vectorized against the compiled pair order.  ``total`` defaults to
    the gravity model's own default volume.
    """
    from repro.net.fitting import fit_gravity

    demand = fit_gravity(
        compiled.network, total=float(total) if total is not None else 10.0
    )
    return compiled.demand_vector(demand, missing="drop")


def _vector_to_demand(compiled, vector: np.ndarray) -> Demand:
    cutoff = _VALUE_CUTOFF * max(float(vector.max(initial=0.0)), 1.0)
    values = {
        pair: float(value)
        for pair, value in zip(compiled.pairs, vector)
        if value > cutoff
    }
    return Demand(values, network=compiled.network)


def _check_observation(compiled, observation: LinkLoadObservation) -> None:
    if observation.num_edges != compiled.num_edges:
        raise TelemetryError(
            f"observation covers {observation.num_edges} edges but the compiled "
            f"routing has {compiled.num_edges}; it measures a different network"
        )
    if observation.granularity == "ingress":
        if observation.loads.ndim != 2 or observation.loads.shape[0] != len(
            observation.sources
        ):
            raise TelemetryError(
                "ingress observation loads must be (num_sources, num_edges)"
            )
    elif observation.loads.ndim != 1:
        raise TelemetryError("link observation loads must be one-dimensional")
    if not observation.observed.any():
        raise TelemetryError("observation has no reporting counters to estimate from")


def _estimate_nnls(
    compiled,
    observation: LinkLoadObservation,
    prior: Optional[np.ndarray],
    regularization: float,
) -> np.ndarray:
    operator = to_dense(compiled.pair_edge_operator)
    columns = observation.observed_indices
    if observation.granularity == "ingress":
        vector = np.zeros(compiled.num_pairs)
        source_rows: Dict[Any, list] = {}
        for index, (source, _target) in enumerate(compiled.pairs):
            source_rows.setdefault(source, []).append(index)
        source_index = {vertex: i for i, vertex in enumerate(observation.sources)}
        for source, rows in source_rows.items():
            row_of_source = source_index.get(source)
            if row_of_source is None:
                raise TelemetryError(
                    f"observation reports no ingress row for source {source!r}"
                )
            A = operator[np.ix_(rows, columns)].T
            b = observation.loads[row_of_source, columns]
            if regularization > 0.0 and prior is not None:
                A, b = _anchored(A, b, regularization, prior[rows])
            vector[rows] = _nnls(A, b)
        return vector
    A = operator[:, columns].T
    b = observation.loads[columns]
    if regularization > 0.0:
        anchor = prior if prior is not None else np.zeros(compiled.num_pairs)
        A, b = _anchored(A, b, regularization, anchor)
    return _nnls(A, b)


def _estimate_entropy(
    compiled,
    observation: LinkLoadObservation,
    prior: Optional[np.ndarray],
    total: Optional[float],
) -> Demand:
    from repro.net.fitting import marginals_from_link_loads, max_entropy_demand

    marginals = marginals_from_link_loads(
        compiled.network, observation.observed_edge_loads()
    )
    if total is None:
        # Every routed demand unit contributes one load unit per hop, so
        # total load ≈ volume · mean hops; partial coverage scales the
        # observed load sum down by the reporting fraction.
        operator = to_dense(compiled.pair_edge_operator)
        hops_per_pair = np.asarray(operator.sum(axis=1), dtype=float).ravel()
        mean_hops = float(hops_per_pair.mean()) if hops_per_pair.size else 1.0
        observed_sum = float(
            observation.aggregate_loads()[observation.observed_indices].sum()
        )
        scale = observation.num_edges / max(int(observation.observed.sum()), 1)
        total = observed_sum * scale / max(mean_hops, 1e-12)
    prior_demand: Optional[Mapping] = None
    if prior is not None:
        prior_demand = {
            pair: float(value)
            for pair, value in zip(compiled.pairs, prior)
            if value > 0
        }
    return max_entropy_demand(
        compiled.network, marginals, total=float(total), prior=prior_demand
    )


def estimate_demand(
    compiled,
    observation: LinkLoadObservation,
    method: str = "auto",
    prior: Optional[np.ndarray] = None,
    regularization: float = 0.0,
    total: Optional[float] = None,
) -> OdmeEstimate:
    """Estimate the demand that produced ``observation`` under ``compiled``.

    Parameters
    ----------
    compiled:
        The routing the observed traffic was forwarded by — its
        pair × edge operator is the estimation Jacobian.
    observation:
        The telemetry snapshot (see :class:`ObservationModel`).
    method:
        ``"auto"``/``"nnls"`` (non-negative least squares; scipy when
        available, numpy active-set otherwise) or ``"entropy"``
        (marginal aggregation + IPF projection).
    prior:
        Optional demand vector over ``compiled.pairs`` used as warm
        start: the Tikhonov anchor for regularized NNLS, the IPF seed
        for the entropy projection (see :func:`gravity_prior`).
    regularization:
        Tikhonov weight anchoring the NNLS solution toward ``prior``
        (ignored by the entropy method; required for a unique answer
        under aggregate ``"link"`` telemetry).
    total:
        Total volume for the entropy projection (default: inferred from
        the observed load sum and the operator's mean hop count).
    """
    if method not in METHODS:
        raise TelemetryError(
            f"unknown ODME method {method!r}; available: {METHODS}"
        )
    if regularization < 0:
        raise TelemetryError(f"regularization must be nonnegative, got {regularization}")
    if prior is not None:
        prior = np.asarray(prior, dtype=float)
        if prior.shape != (compiled.num_pairs,):
            raise TelemetryError(
                f"prior vector has shape {prior.shape}, expected "
                f"({compiled.num_pairs},) to match the compiled pair index"
            )
    _check_observation(compiled, observation)

    if method == "entropy":
        demand = _estimate_entropy(compiled, observation, prior, total)
        vector = compiled.demand_vector(demand, missing="drop")
        diagnostics = getattr(demand, "fit_diagnostics", None)
        converged = bool(diagnostics.converged) if diagnostics is not None else True
        name = "entropy-ipf"
    else:
        vector = _estimate_nnls(compiled, observation, prior, regularization)
        demand = _vector_to_demand(compiled, vector)
        converged = True
        name = "nnls-scipy" if _matrix.HAVE_SCIPY else "nnls-numpy"

    operator = to_dense(compiled.pair_edge_operator)
    columns = observation.observed_indices
    reproduced = np.asarray(vector @ operator, dtype=float).ravel()[columns]
    target = observation.aggregate_loads()[columns]
    norm = float(np.linalg.norm(target))
    residual = float(np.linalg.norm(reproduced - target)) / max(norm, 1e-12)
    return OdmeEstimate(
        demand=demand,
        vector=vector,
        method=name,
        residual=residual,
        converged=converged,
        observed_fraction=observation.observed_fraction,
        granularity=observation.granularity,
    )


__all__ = [
    "METHODS",
    "OdmeEstimate",
    "estimate_demand",
    "gravity_prior",
]
