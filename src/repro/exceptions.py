"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so that
callers can distinguish library failures from programming errors with a
single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised when a graph is malformed for the requested operation.

    Examples include disconnected graphs passed to routines that require
    connectivity, or vertex identifiers that are not present in the graph.
    """


class DemandError(ReproError):
    """Raised when a demand matrix is malformed.

    Examples include negative demand values, demand between identical
    vertices, or demands referencing vertices outside the graph.
    """


class PathError(ReproError):
    """Raised when a path is malformed.

    Examples include non-simple paths, paths whose consecutive vertices
    are not adjacent in the graph, or paths with wrong endpoints.
    """


class RoutingError(ReproError):
    """Raised when a routing object is inconsistent.

    Examples include path distributions that do not sum to one, or
    routings queried for pairs they do not cover.
    """


class SolverError(ReproError):
    """Raised when an LP or combinatorial solver fails to produce a solution."""


class InfeasibleError(SolverError):
    """Raised when a routing/flow problem has no feasible solution.

    Typically caused by demands between vertices in different connected
    components, or by hop bounds smaller than the graph distance.
    """
