"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so that
callers can distinguish library failures from programming errors with a
single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised when a graph is malformed for the requested operation.

    Examples include disconnected graphs passed to routines that require
    connectivity, or vertex identifiers that are not present in the graph.
    """


class DemandError(ReproError):
    """Raised when a demand matrix is malformed.

    Examples include negative demand values, demand between identical
    vertices, or demands referencing vertices outside the graph.
    """


class PathError(ReproError):
    """Raised when a path is malformed.

    Examples include non-simple paths, paths whose consecutive vertices
    are not adjacent in the graph, or paths with wrong endpoints.
    """


class RoutingError(ReproError):
    """Raised when a routing object is inconsistent.

    Examples include path distributions that do not sum to one, or
    routings queried for pairs they do not cover.
    """


class SolverError(ReproError):
    """Raised when an LP or combinatorial solver fails to produce a solution."""


class LinalgError(ReproError):
    """Raised when the compiled linear-algebra evaluation backend is misused.

    Examples include unknown backend or bench-target names and using a
    compiled evaluator whose routing has mutated since compilation.
    (Requesting ``"sparse"`` without scipy is *not* an error: it falls
    back to the dense numpy representation by design; the evaluator's
    ``backend`` attribute records what actually ran.)
    """


class StreamError(ReproError):
    """Raised when the streaming traffic-replay subsystem is misused.

    Examples include unknown stream or policy names, malformed policy
    specs, non-positive step counts, and rerouting policies that need
    the LP solver on an install without one.  (A routing that stops
    covering a streamed pair is *not* an error: the runner treats it as
    a forced re-solve so controllers keep running through demand
    shifts.)
    """


class NetError(ReproError):
    """Raised when the real-network ingestion subsystem is misused.

    Examples include unknown catalog entries, unresolvable network
    sources, and demand-fitting calls with inconsistent marginals.
    """


class TelemetryError(ReproError):
    """Raised when the telemetry / demand-estimation subsystem is misused.

    Examples include unknown observation granularities or estimator
    names, observations whose shape does not match the compiled routing
    they claim to measure, and windowed estimation against streaming
    statistics that were not asked to track link loads.  (An estimator
    that fails to converge is *not* an error: the estimate records a
    ``converged=False`` diagnostic so closed-loop pipelines keep
    running on the best iterate.)
    """


class ObsError(ReproError):
    """Raised when the observability / tracing subsystem is misused.

    Examples include installing a second process-global tracer without
    uninstalling the first, loading a trace file that is not
    line-delimited JSON span records, and exporting a trace to an
    unsupported format.  (A crash-truncated final line in a streamed
    trace is *not* an error: workers flush one record per line, so the
    loader drops an unparsable final line by design.)
    """


class ForwardingError(ReproError):
    """Raised when a routing cannot be realized as ECMP forwarding state.

    Examples include per-pair path weights that do not sum to one within
    1e-9 (the quantizer refuses to renormalize silently), directed
    cycles in a pair's next-hop graph under ``on_cycle="error"``, bucket
    counts below one, and realization requests against schemes that do
    not materialize a routing (the optimal MCF router).  (A cyclic or
    non-confluent pair under the default ``on_cycle="decompose"`` is
    *not* an error: it falls back to per-path weight quantization and is
    reported through the table's ``fallback_pairs`` diagnostic.)
    """


class ArtifactError(ReproError):
    """Raised when an on-disk sweep artifact store is inconsistent.

    Examples include opening a store whose manifest hash does not match
    the suite/backend being resumed, duplicate per-cell completion
    records, and corrupt chunk data that is *not* explainable as a
    crash-truncated final line.  (A truncated final line in the last
    chunk is **not** an error: that is the expected signature of a
    killed writer, and the store drops it on resume by design.)
    """


class TopologyFormatError(NetError):
    """Raised when a topology file cannot be parsed into a :class:`Network`.

    Carries the offending ``source`` (file name or description) and,
    when known, the 1-based ``line`` of the problem, so CLI users see
    ``geant.txt:41: link references unknown node 'xx1.xx'`` instead of a
    bare parser traceback.
    """

    def __init__(self, message: str, source: str = "", line: int = 0) -> None:
        self.source = source
        self.line = line
        prefix = ""
        if source:
            prefix = f"{source}:{line}: " if line else f"{source}: "
        super().__init__(prefix + message)


class InfeasibleError(SolverError):
    """Raised when a routing/flow problem has no feasible solution.

    Typically caused by demands between vertices in different connected
    components, or by hop bounds smaller than the graph distance.
    """
