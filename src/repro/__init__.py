"""repro — Sparse Semi-Oblivious Routing: Few Random Paths Suffice.

A full reproduction of the PODC 2023 paper by Zuzic ® Haeupler ® Roeyskoe
(arXiv:2301.06647): semi-oblivious routings built by sampling a few paths
per vertex pair from a competitive oblivious routing, with demand-adaptive
rate optimization, randomized rounding to integral routings, the
completion-time extension, the lower-bound constructions, and a
traffic-engineering simulator exercising the SMORE consequence.

Quick start::

    from repro import topologies, SemiObliviousRouting, RaeckeTreeRouting
    from repro.demands import random_permutation_demand

    net = topologies.hypercube(4)
    router = SemiObliviousRouting.sample(
        net, alpha=4, oblivious=RaeckeTreeRouting(net, rng=0), rng=0
    )
    demand = random_permutation_demand(net, rng=1)
    report = router.evaluate(demand)
    print(report.ratio)
"""

from repro.core import (
    PathSystem,
    Routing,
    SemiObliviousRouting,
    alpha_plus_cut_sample,
    alpha_sample,
    competitive_ratio,
    evaluate_path_system,
    optimal_rates,
    randomized_rounding,
)
from repro.demands import Demand
from repro.graphs import Network
from repro.graphs import topologies
from repro.mcf import min_congestion_lp, min_congestion_on_paths
from repro.oblivious import (
    ElectricalFlowRouting,
    HopConstrainedRouting,
    KShortestPathRouting,
    RaeckeTreeRouting,
    ShortestPathRouting,
    ValiantHypercubeRouting,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Network",
    "topologies",
    "Demand",
    "PathSystem",
    "Routing",
    "SemiObliviousRouting",
    "alpha_sample",
    "alpha_plus_cut_sample",
    "optimal_rates",
    "randomized_rounding",
    "competitive_ratio",
    "evaluate_path_system",
    "min_congestion_lp",
    "min_congestion_on_paths",
    "RaeckeTreeRouting",
    "ElectricalFlowRouting",
    "ValiantHypercubeRouting",
    "ShortestPathRouting",
    "KShortestPathRouting",
    "HopConstrainedRouting",
]
