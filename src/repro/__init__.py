"""repro — Sparse Semi-Oblivious Routing: Few Random Paths Suffice.

A full reproduction of the PODC 2023 paper by Zuzic ® Haeupler ® Roeyskoe
(arXiv:2301.06647): semi-oblivious routings built by sampling a few paths
per vertex pair from a competitive oblivious routing, with demand-adaptive
rate optimization, randomized rounding to integral routings, the
completion-time extension, the lower-bound constructions, and a
traffic-engineering simulator exercising the SMORE consequence.

Quick start — every scheme is addressed through the registry::

    from repro import RoutingEngine, build_router, topologies
    from repro.demands import random_permutation_demand

    net = topologies.hypercube(4)
    router = build_router("semi-oblivious(racke, alpha=4)", net, rng=0)
    router.install()                            # offline: materialize paths
    demand = random_permutation_demand(net, rng=1)
    result = router.route(demand)               # online: adapt rates
    print(result.congestion)

Batch evaluation over many demands shares the cut cache, the sampled
path systems, and the per-snapshot optimal-MCF solves::

    engine = RoutingEngine(net, ["semi-oblivious(racke, alpha=4)", "ksp(k=4)", "spf"], rng=0)
    report = engine.evaluate_matrix_series(series)
    print(report.ranking())

The lower-level objects (:class:`SemiObliviousRouting`,
:func:`alpha_sample`, the oblivious builders) remain available for code
that wants to wire the pipeline by hand.
"""

from repro.core import (
    PathSystem,
    Routing,
    SemiObliviousRouting,
    alpha_plus_cut_sample,
    alpha_sample,
    competitive_ratio,
    evaluate_path_system,
    optimal_rates,
    randomized_rounding,
)
from repro.demands import Demand
from repro.engine import (
    RouteResult,
    Router,
    RoutingEngine,
    SchemeError,
    SchemeSpec,
    SemiObliviousRouter,
    available_schemes,
    build_router,
    parse_spec,
    register_scheme,
)
from repro.graphs import Network
from repro.graphs import topologies
from repro.linalg import CompiledRouting, available_backends, build_evaluator
from repro.mcf import min_congestion_lp, min_congestion_on_paths
from repro.oblivious import (
    ElectricalFlowRouting,
    HopConstrainedRouting,
    KShortestPathRouting,
    RaeckeTreeRouting,
    ShortestPathRouting,
    ValiantHypercubeRouting,
)
from repro.scenarios import (
    DemandSpec,
    FailureSpec,
    ScenarioSuite,
    SuiteResult,
    TopologySpec,
    get_suite,
    run_suite,
)
from repro.stream import (
    DemandStream,
    StreamComparison,
    StreamRunResult,
    build_policy,
    build_stream,
    run_stream,
    run_stream_comparison,
)

__version__ = "1.2.0"

#: Backwards-compatible alias: the pre-engine name for the sampled-paths
#: pipeline object.  New code should build routers through the registry
#: (``build_router("semi-oblivious(...)")``) and get a
#: :class:`~repro.engine.adapters.SemiObliviousRouter` back.
SemiOblivious = SemiObliviousRouting

__all__ = [
    "__version__",
    "Network",
    "topologies",
    "Demand",
    "PathSystem",
    "Routing",
    "SemiObliviousRouting",
    "SemiOblivious",
    "alpha_sample",
    "alpha_plus_cut_sample",
    "optimal_rates",
    "randomized_rounding",
    "competitive_ratio",
    "evaluate_path_system",
    "min_congestion_lp",
    "min_congestion_on_paths",
    # Engine API (the unified entry points)
    "Router",
    "RouteResult",
    "RoutingEngine",
    "SemiObliviousRouter",
    "SchemeSpec",
    "SchemeError",
    "parse_spec",
    "build_router",
    "register_scheme",
    "available_schemes",
    # Oblivious sampling sources
    "RaeckeTreeRouting",
    "ElectricalFlowRouting",
    "ValiantHypercubeRouting",
    "ShortestPathRouting",
    "KShortestPathRouting",
    "HopConstrainedRouting",
    # Compiled evaluation backends
    "CompiledRouting",
    "available_backends",
    "build_evaluator",
    # Scenario sweeps
    "ScenarioSuite",
    "TopologySpec",
    "DemandSpec",
    "FailureSpec",
    "SuiteResult",
    "run_suite",
    "get_suite",
    # Streaming traffic replay
    "DemandStream",
    "StreamRunResult",
    "StreamComparison",
    "build_stream",
    "build_policy",
    "run_stream",
    "run_stream_comparison",
]
