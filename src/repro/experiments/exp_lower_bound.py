"""E3 — the lower bound (Lemmas 8.1/8.2, Corollary 8.3, Figure 1).

Build the gadget ``C(n, k)`` with ``k = floor(n^{1/(2α)})``, sample an
α-sparse semi-oblivious routing from a competitive oblivious routing, run
the Lemma 8.1 adversary, and verify the measured congestion of the best
adaptive routing on the sampled paths exceeds the guaranteed bound
``|matching| / α`` while the offline optimum is 1.
"""

from __future__ import annotations

from repro.analysis.theory import predicted_lower_bound
from repro.core.rate_adaptation import optimal_rates
from repro.core.sampling import alpha_sample
from repro.demands.adversarial import lower_bound_adversary
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs.lower_bound import ascii_render_gadget, gadget_size_k, lower_bound_gadget
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.racke import RaeckeTreeRouting
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"n": 16, "alphas": [1, 2]},
    "small": {"n": 64, "alphas": [1, 2, 3]},
    "paper": {"n": 144, "alphas": [1, 2, 3, 4]},
}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E3_lower_bound")
    n = config.param("n", _DEFAULTS)
    alphas = config.param("alphas", _DEFAULTS)

    for alpha in alphas:
        k = max(gadget_size_k(n, alpha), 1)
        network, layout = lower_bound_gadget(n, k)
        oblivious = RaeckeTreeRouting(network, rng=rng)
        pairs = [
            (source, target)
            for source in layout.left_leaves
            for target in layout.right_leaves
        ]
        system = alpha_sample(oblivious, alpha, pairs=pairs, rng=rng)
        adversary = lower_bound_adversary(system, layout)
        adaptation = optimal_rates(system, adversary.demand)
        optimum = min_congestion_lp(network, adversary.demand).congestion
        measured_ratio = adaptation.congestion / max(optimum, 1e-12)
        result.add_row(
            "lower_bound",
            n=n,
            alpha=alpha,
            k=k,
            gadget_vertices=network.num_vertices,
            matching_size=len(adversary.matching),
            guaranteed_bound=round(adversary.congestion_lower_bound, 3),
            measured_congestion=round(adaptation.congestion, 3),
            offline_optimum=round(optimum, 3),
            measured_ratio=round(measured_ratio, 3),
            theory_bound=round(predicted_lower_bound(n, alpha), 3),
        )

    # Figure 1: structural check of C(256, 4) at paper scale (smaller otherwise).
    fig_n = 256 if config.scale == "paper" else n
    fig_network, fig_layout = lower_bound_gadget(fig_n, 4)
    result.add_row(
        "figure1_structure",
        n=fig_n,
        k=4,
        vertices=fig_network.num_vertices,
        edges=fig_network.num_edges,
        expected_vertices=2 * fig_n + 2 + 4,
        expected_edges=2 * fig_n + 8,
    )
    result.add_note(ascii_render_gadget(fig_layout))
    result.add_note(
        "measured_congestion should be >= guaranteed_bound = matching/|S'| while the offline "
        "optimum is 1 (Lemma 8.1); the ratio grows like n^{1/(2 alpha)} / alpha."
    )
    return result


__all__ = ["run"]
