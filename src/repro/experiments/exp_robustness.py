"""E12 — robustness to link failures (the SMORE robustness claim, §1.1).

SMORE's second empirical argument for sampling candidate paths from an
oblivious routing is robustness: the sampled paths are diverse, so after a
link failure the surviving candidates still cover most pairs and the
re-optimized rates stay close to the (failed-network) optimum.  This
experiment sweeps all single-link failures on an ISP-like topology and
compares, at equal sparsity:

* α-samples of the Räcke-style oblivious routing (the paper/SMORE rule),
* k-shortest-path candidate sets (paths tend to share the same few links),
* the single shortest path (no redundancy at all),

reporting coverage after failure (fraction of demanded pairs that still
have a candidate path) and the congestion ratio of re-optimized rates
versus the failed-network optimum.
"""

from __future__ import annotations

from repro.core.path_system import PathSystem
from repro.core.sampling import alpha_sample
from repro.demands.generators import gravity_demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs.generators import waxman_isp
from repro.oblivious.racke import RaeckeTreeRouting
from repro.oblivious.shortest_path import KShortestPathRouting, ShortestPathRouting
from repro.te.failures import failure_sweep
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"n": 10, "alpha": 2, "total_demand": 5.0, "max_failures": 6},
    "small": {"n": 14, "alpha": 4, "total_demand": 10.0, "max_failures": 10},
    "paper": {"n": 18, "alpha": 4, "total_demand": 20.0, "max_failures": None},
}


def _ksp_system(network, pairs, k):
    builder = KShortestPathRouting(network, k=k)
    system = PathSystem(network)
    for source, target in pairs:
        system.add_paths(source, target, builder.pair_distribution(source, target).keys())
    return system


def _spf_system(network, pairs):
    builder = ShortestPathRouting(network)
    system = PathSystem(network)
    for source, target in pairs:
        system.add_paths(source, target, builder.pair_distribution(source, target).keys())
    return system


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E12_robustness")

    n = config.param("n", _DEFAULTS)
    alpha = config.param("alpha", _DEFAULTS)
    total = config.param("total_demand", _DEFAULTS)
    max_failures = config.param("max_failures", _DEFAULTS)

    network = waxman_isp(n, rng=rng)
    demand = gravity_demand(network, total=total, rng=rng)
    # Keep the heaviest pairs so the LP stays small but the demand stays realistic.
    threshold = sorted((v for _, v in demand.items()), reverse=True)
    keep = threshold[: min(len(threshold), 4 * n)]
    demand = demand.filtered(lambda pair, value: value >= keep[-1]) if keep else demand
    pairs = demand.pairs()

    systems = {
        "semi-oblivious-sample": alpha_sample(
            RaeckeTreeRouting(network, rng=rng), alpha, pairs=pairs, rng=rng
        ),
        "ksp": _ksp_system(network, pairs, alpha),
        "spf": _spf_system(network, pairs),
    }

    edges = network.edges
    if max_failures is not None:
        edges = edges[:max_failures]

    for scheme, system in systems.items():
        summary = failure_sweep(system, demand, edges=edges)
        result.add_row(
            "failure_robustness",
            topology=network.name,
            n=network.num_vertices,
            m=network.num_edges,
            failures_swept=summary.num_failures,
            scheme=scheme,
            sparsity=system.sparsity(),
            mean_coverage=round(summary.mean_coverage(), 3),
            full_coverage_fraction=round(summary.full_coverage_fraction(), 3),
            mean_ratio=(round(summary.mean_ratio(), 3) if summary.mean_ratio() is not None else "-"),
            worst_ratio=(round(summary.worst_ratio(), 3) if summary.worst_ratio() is not None else "-"),
        )
    result.add_note(
        "Diverse sampled candidates keep (near-)full coverage under single-link failures and a "
        "small congestion ratio after re-optimizing rates, while spf loses coverage whenever its "
        "only path dies — the robustness argument SMORE makes for sampling from oblivious routings."
    )
    return result


__all__ = ["run"]
