"""E9 — arbitrary integral demands need (α + cut)-sparsity (Lemma 2.7 / Lemma 5.9).

Two measurements:

* on the two-cliques-bridged gadget of Section 2.1, a plain α-sample can
  be badly non-competitive for a single high-cut pair, while the
  (α + cut)-sample stays competitive — the reason the paper switches to
  (α + cut)-sparsity for fractional/arbitrary demands;
* on an expander with heterogeneous integral demands, the (α + cut)-sample's
  competitive ratio stays small, and the Lemma 5.9 bucketing reduction
  (route each ratio bucket separately, then combine via Lemma 5.15)
  is measured against routing the demand directly on the same system.
"""

from __future__ import annotations

from repro.core.competitive import evaluate_path_system
from repro.core.rate_adaptation import optimal_rates
from repro.core.routing import Routing
from repro.core.sampling import alpha_plus_cut_sample, alpha_sample
from repro.demands.demand import Demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.graphs.cuts import CutCache
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.racke import RaeckeTreeRouting
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"clique_size": 4, "bridges": 4, "expander_n": 12, "alpha": 2, "num_pairs": 4},
    "small": {"clique_size": 6, "bridges": 6, "expander_n": 20, "alpha": 3, "num_pairs": 8},
    "paper": {"clique_size": 12, "bridges": 12, "expander_n": 48, "alpha": 4, "num_pairs": 20},
}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E9_arbitrary_demands")

    clique_size = config.param("clique_size", _DEFAULTS)
    bridges = config.param("bridges", _DEFAULTS)
    expander_n = config.param("expander_n", _DEFAULTS)
    alpha = config.param("alpha", _DEFAULTS)
    num_pairs = config.param("num_pairs", _DEFAULTS)

    # Part 1: the Section 2.1 motivating example.
    gadget = topologies.two_cliques_bridged(clique_size, bridges)
    cuts = CutCache(gadget)
    oblivious = RaeckeTreeRouting(gadget, rng=rng)
    source, target = ("L", clique_size - 1), ("R", clique_size - 1)
    heavy_demand = Demand({(source, target): float(bridges)})
    optimum = min_congestion_lp(gadget, heavy_demand).congestion

    plain = alpha_sample(oblivious, alpha, pairs=[(source, target)], rng=rng)
    with_cut = alpha_plus_cut_sample(
        oblivious, alpha, cut_oracle=cuts, pairs=[(source, target)], rng=rng
    )
    plain_report = evaluate_path_system(plain, heavy_demand, optimal_congestion=optimum)
    cut_report = evaluate_path_system(with_cut, heavy_demand, optimal_congestion=optimum)
    result.add_row(
        "cut_sparsity_necessity",
        graph=gadget.name,
        pair_cut=int(cuts(source, target)),
        demand=float(bridges),
        optimum=round(optimum, 3),
        alpha=alpha,
        plain_sample_sparsity=plain.sparsity(),
        plain_sample_ratio=round(plain_report.ratio, 3),
        cut_sample_sparsity=with_cut.sparsity(),
        cut_sample_ratio=round(cut_report.ratio, 3),
    )

    # Part 2: heterogeneous integral demand on an expander + bucketing reduction.
    expander = topologies.random_regular_expander(expander_n, degree=4, rng=rng)
    expander_cuts = CutCache(expander)
    expander_oblivious = RaeckeTreeRouting(expander, rng=rng)
    vertices = expander.vertices
    values = {}
    for index in range(num_pairs):
        pair = (vertices[index % len(vertices)], vertices[(index * 5 + 2) % len(vertices)])
        if pair[0] == pair[1]:
            continue
        values[pair] = float(1 + (index % 4) * 3)  # heterogeneous integral values 1..10
    demand = Demand(values, network=expander)
    optimum = min_congestion_lp(expander, demand).congestion
    system = alpha_plus_cut_sample(
        expander_oblivious, alpha, cut_oracle=expander_cuts, pairs=demand.pairs(), rng=rng
    )
    direct = optimal_rates(system, demand)

    # Lemma 5.9 bucketing: route each ratio bucket separately and combine (Lemma 5.15).
    buckets = demand.buckets_by_ratio(
        lambda pair: alpha + expander_cuts(pair[0], pair[1])
    )
    bucket_routings = []
    bucket_demands = []
    for bucket in buckets.values():
        adaptation = optimal_rates(system, bucket)
        if adaptation.routing is not None:
            bucket_routings.append(adaptation.routing)
            bucket_demands.append(bucket)
    if bucket_routings:
        combined = Routing.demand_weighted_mix(bucket_routings, bucket_demands)
        combined_congestion = combined.congestion(demand)
    else:
        combined_congestion = float("nan")

    result.add_row(
        "arbitrary_integral",
        graph=expander.name,
        n=expander.num_vertices,
        alpha=alpha,
        pairs=demand.support_size(),
        max_demand=demand.max_value(),
        optimum=round(optimum, 3),
        direct_ratio=round(direct.congestion / max(optimum, 1e-12), 3),
        num_buckets=len(buckets),
        bucketed_ratio=round(combined_congestion / max(optimum, 1e-12), 3),
    )
    result.add_note(
        "plain_sample_ratio should be around bridges/alpha (non-competitive) while "
        "cut_sample_ratio stays O(1) — the Section 2.1 argument for (alpha+cut)-sparsity. "
        "bucketed_ratio exceeds direct_ratio by at most the O(log m) factor Lemma 5.9 pays."
    )
    return result


__all__ = ["run"]
