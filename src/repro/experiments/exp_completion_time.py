"""E7 — completion-time semi-oblivious routing (Section 7, Lemmas 2.8/2.9).

On topologies where congestion-optimal routings can have poor dilation
(ring of cliques, path of expanders), compare:

* congestion-only α-samples (from the Räcke-style routing),
* multi-scale hop-constrained samples (the Lemma 2.8 construction),

on the completion-time objective ``congestion + dilation``, against the
congestion-optimal MCF baseline.  The hop-constrained construction should
match or beat the congestion-only sample on completion time, with bounded
dilation; the measured hop stretch of the hop-constrained source is also
reported.
"""

from __future__ import annotations

from repro.core.completion_time import (
    MultiScaleHopSample,
    best_completion_time_on_system,
    completion_time_competitive_ratio,
)
from repro.core.sampling import alpha_sample
from repro.demands.generators import random_pairs_demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.oblivious.hop_constrained import HopConstrainedRouting
from repro.oblivious.racke import RaeckeTreeRouting
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"alpha": 2, "num_pairs": 4, "ring": (3, 3), "blocks": (2, 6)},
    "small": {"alpha": 3, "num_pairs": 6, "ring": (4, 4), "blocks": (3, 8)},
    "paper": {"alpha": 4, "num_pairs": 12, "ring": (6, 6), "blocks": (4, 12)},
}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E7_completion_time")

    alpha = config.param("alpha", _DEFAULTS)
    num_pairs = config.param("num_pairs", _DEFAULTS)
    ring_cliques, ring_size = config.param("ring", _DEFAULTS)
    num_blocks, block_size = config.param("blocks", _DEFAULTS)

    networks = [
        topologies.ring_of_cliques(ring_cliques, ring_size),
        topologies.path_of_expanders(num_blocks, block_size, rng=rng),
    ]

    for network in networks:
        demand = random_pairs_demand(network, num_pairs=num_pairs, rng=rng)
        if demand.is_empty():
            continue

        congestion_only = alpha_sample(
            RaeckeTreeRouting(network, rng=rng), alpha, pairs=demand.pairs(), rng=rng
        )
        congestion_result = best_completion_time_on_system(congestion_only, demand)
        congestion_ratio, _, baseline_total = completion_time_competitive_ratio(
            congestion_only, demand
        )

        hop_sample = MultiScaleHopSample.build(
            network, alpha=alpha, pairs=demand.pairs(), rng=rng
        )
        hop_ratio, hop_result, _ = completion_time_competitive_ratio(hop_sample, demand)

        hop_builder = HopConstrainedRouting(network, hop_bound=max(network.diameter(), 1), rng=rng)
        measured_stretch = hop_builder.measured_hop_stretch(pairs=demand.pairs())

        result.add_row(
            "completion_time",
            graph=network.name,
            n=network.num_vertices,
            demand_size=int(demand.size()),
            alpha=alpha,
            baseline_ct=round(baseline_total, 3),
            congestion_only_ct=round(congestion_result.completion_time, 3),
            congestion_only_ratio=round(congestion_ratio, 3),
            hop_scales=len(hop_sample.scales),
            hop_sample_sparsity=hop_sample.sparsity(),
            hop_sample_ct=round(hop_result.completion_time, 3),
            hop_sample_ratio=round(hop_ratio, 3),
            measured_hop_stretch=round(measured_stretch, 3),
        )
    result.add_note(
        "The multi-scale hop-constrained sample should achieve completion time within a small "
        "factor of the baseline and never much worse than the congestion-only sample, at the cost "
        "of roughly (number of scales) x alpha sparsity (Lemma 2.8)."
    )
    return result


__all__ = ["run"]
