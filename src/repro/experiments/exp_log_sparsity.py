"""E2 — logarithmic sparsity suffices (Theorems 2.3 and 5.3).

With α = Θ(log n / log log n) sampled paths, the competitive ratio should
stay polylogarithmic as n grows (flat or slowly growing in the measured
table), across several topology families.
"""

from __future__ import annotations

from repro.analysis.theory import logarithmic_sparsity
from repro.core.competitive import evaluate_path_system
from repro.core.sampling import alpha_sample
from repro.demands.generators import random_permutation_demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.racke import RaeckeTreeRouting
from repro.oblivious.valiant import ValiantHypercubeRouting
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"hypercube_dims": [3], "torus_sizes": [3], "expander_sizes": [12], "num_demands": 1},
    "small": {"hypercube_dims": [3, 4], "torus_sizes": [3, 4], "expander_sizes": [16, 24], "num_demands": 2},
    "paper": {
        "hypercube_dims": [4, 5, 6],
        "torus_sizes": [4, 5, 6],
        "expander_sizes": [24, 48, 96],
        "num_demands": 4,
    },
}


def _evaluate(network, oblivious, num_demands, rng, result, family):
    alpha = max(2, logarithmic_sparsity(network.num_vertices))
    demands = [random_permutation_demand(network, rng=rng) for _ in range(num_demands)]
    pairs = {pair for demand in demands for pair in demand.pairs()}
    system = alpha_sample(oblivious, alpha, pairs=pairs, rng=rng)
    worst = 0.0
    for demand in demands:
        optimum = min_congestion_lp(network, demand).congestion
        report = evaluate_path_system(system, demand, optimal_congestion=optimum)
        worst = max(worst, report.ratio)
    result.add_row(
        "log_sparsity",
        family=family,
        n=network.num_vertices,
        m=network.num_edges,
        alpha=alpha,
        sparsity=system.sparsity(),
        worst_ratio=round(worst, 3),
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E2_log_sparsity")
    num_demands = config.param("num_demands", _DEFAULTS)

    for dim in config.param("hypercube_dims", _DEFAULTS):
        network = topologies.hypercube(dim)
        oblivious = ValiantHypercubeRouting(network, dim, rng=rng)
        _evaluate(network, oblivious, num_demands, rng, result, family="hypercube")

    for size in config.param("torus_sizes", _DEFAULTS):
        network = topologies.torus_2d(size)
        oblivious = RaeckeTreeRouting(network, rng=rng)
        _evaluate(network, oblivious, num_demands, rng, result, family="torus")

    for size in config.param("expander_sizes", _DEFAULTS):
        network = topologies.random_regular_expander(size, degree=4, rng=rng)
        oblivious = RaeckeTreeRouting(network, rng=rng)
        _evaluate(network, oblivious, num_demands, rng, result, family="expander")

    result.add_note(
        "With alpha = Theta(log n / log log n) the worst measured ratio should stay small and "
        "grow at most polylogarithmically with n (Theorem 2.3)."
    )
    return result


__all__ = ["run"]
