"""E4 — deterministic routing on hypercubes (Section 1.1 consequence, [KKT91]).

Compare, on adversarial hypercube permutations (bit reversal, transpose):

* the deterministic 1-path bit-fixing routing (KKT91 barrier ~ sqrt(n)/d),
* a deterministic selection of α = Θ(log n) heaviest Valiant paths,
* a randomized α-sample of the Valiant routing.

The claim: few (deterministically or randomly selected) paths with
adaptive rates break the single-path deterministic barrier.
"""

from __future__ import annotations

import math

from repro.analysis.theory import deterministic_single_path_barrier
from repro.core.competitive import evaluate_path_system
from repro.core.path_system import PathSystem
from repro.core.sampling import alpha_sample
from repro.demands.generators import bit_reversal_demand, transpose_demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.valiant import ValiantHypercubeRouting, bit_fixing_path
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"dims": [3]},
    "small": {"dims": [4]},
    "paper": {"dims": [4, 5, 6]},
}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E4_deterministic_hypercube")

    for dim in config.param("dims", _DEFAULTS):
        network = topologies.hypercube(dim)
        n = network.num_vertices
        # The deterministic-routing consequence selects Theta(log n) paths.
        alpha = max(2, int(math.ceil(math.log2(n))))
        valiant = ValiantHypercubeRouting(network, dim, rng=rng)

        demands = {"bit-reversal": bit_reversal_demand(network, dim)}
        if dim % 2 == 0:
            demands["transpose"] = transpose_demand(network, dim)

        for demand_name, demand in demands.items():
            if demand.is_empty():
                continue
            optimum = min_congestion_lp(network, demand).congestion

            # Deterministic single bit-fixing path per pair (no adaptation possible:
            # one path is one path, so its congestion is just the load it induces).
            single = PathSystem(network)
            for source, target in demand.pairs():
                single.add_path(source, target, bit_fixing_path(source, target, dim))
            single_report = evaluate_path_system(single, demand, optimal_congestion=optimum)

            # Randomized alpha-sample from Valiant's routing.
            sampled = alpha_sample(valiant, alpha, pairs=demand.pairs(), rng=rng)
            sampled_report = evaluate_path_system(sampled, demand, optimal_congestion=optimum)

            result.add_row(
                "deterministic_vs_sampled",
                dim=dim,
                n=n,
                demand=demand_name,
                alpha=alpha,
                optimum=round(optimum, 3),
                single_path_ratio=round(single_report.ratio, 3),
                sampled_ratio=round(sampled_report.ratio, 3),
                kkt_barrier=round(deterministic_single_path_barrier(n, network.max_degree()), 3),
            )
    result.add_note(
        "single_path_ratio should grow roughly like sqrt(n)/log(n) on the adversarial "
        "permutations, while sampled_ratio stays polylogarithmic — the separation the paper "
        "highlights for deterministic routing via a few paths."
    )
    return result


__all__ = ["run"]
