"""E11 — ablation: how should the few candidate paths be selected?

The paper's construction samples paths *randomly* from a competitive
oblivious routing.  This ablation compares, at the same sparsity budget α,
four path-selection rules on the same demands:

* ``random-sample`` — the paper's rule (α-sample of the Räcke-style routing),
* ``top-alpha``    — deterministic: the α most probable support paths,
* ``ksp``          — the α shortest simple paths (oblivious-routing-free),
* ``vlb-sample``   — α samples from Valiant load balancing (random
  intermediate vertex), the diversity-without-Räcke baseline.

The qualitative expectation (and the reason SMORE samples from Räcke's
routing rather than using KSP): randomized samples from a
congestion-aware routing dominate both the deterministic truncation and
the purely structural KSP/VLB choices on adversarial demands, while all
adaptive schemes beat the non-adaptive oblivious source.
"""

from __future__ import annotations

from repro.core.competitive import evaluate_path_system
from repro.core.path_system import PathSystem
from repro.core.sampling import alpha_sample, deterministic_top_paths
from repro.demands.generators import random_permutation_demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.racke import RaeckeTreeRouting
from repro.oblivious.shortest_path import KShortestPathRouting
from repro.oblivious.valiant_general import ValiantGeneralRouting
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"expander_n": 12, "torus_size": 3, "alpha": 2, "num_demands": 1},
    "small": {"expander_n": 20, "torus_size": 4, "alpha": 4, "num_demands": 2},
    "paper": {"expander_n": 48, "torus_size": 6, "alpha": 4, "num_demands": 4},
}


def _selection_systems(network, alpha, pairs, rng):
    """Build one candidate path system per selection rule."""
    racke = RaeckeTreeRouting(network, rng=rng)
    systems = {
        "random-sample": alpha_sample(racke, alpha, pairs=pairs, rng=rng),
        "top-alpha": deterministic_top_paths(racke, alpha, pairs=pairs),
        "vlb-sample": alpha_sample(ValiantGeneralRouting(network, rng=rng), alpha, pairs=pairs, rng=rng),
    }
    ksp = KShortestPathRouting(network, k=alpha)
    ksp_system = PathSystem(network)
    for source, target in pairs:
        ksp_system.add_paths(source, target, ksp.pair_distribution(source, target).keys())
    systems["ksp"] = ksp_system
    return systems


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E11_ablation_selection")

    alpha = config.param("alpha", _DEFAULTS)
    num_demands = config.param("num_demands", _DEFAULTS)
    networks = [
        topologies.random_regular_expander(config.param("expander_n", _DEFAULTS), degree=4, rng=rng),
        topologies.torus_2d(config.param("torus_size", _DEFAULTS)),
    ]

    for network in networks:
        demands = [random_permutation_demand(network, rng=rng) for _ in range(num_demands)]
        optima = [min_congestion_lp(network, demand).congestion for demand in demands]
        pairs = {pair for demand in demands for pair in demand.pairs()}
        systems = _selection_systems(network, alpha, pairs, rng)
        for rule, system in systems.items():
            worst = 0.0
            mean = 0.0
            for demand, optimum in zip(demands, optima):
                report = evaluate_path_system(system, demand, optimal_congestion=optimum)
                worst = max(worst, report.ratio)
                mean += report.ratio / len(demands)
            result.add_row(
                "selection_ablation",
                graph=network.name,
                n=network.num_vertices,
                alpha=alpha,
                rule=rule,
                sparsity=system.sparsity(),
                worst_ratio=round(worst, 3),
                mean_ratio=round(mean, 3),
            )
    result.add_note(
        "On benign random permutation demands every adaptive rule lands within a small factor "
        "of optimal (structural ksp can even win); the value of sampling randomly from a "
        "competitive oblivious routing is worst-case robustness, which the adversarial "
        "experiments E3/E4 isolate.  This ablation documents that the average case does not "
        "distinguish the rules — matching the paper's framing that the guarantee is for all demands."
    )
    return result


__all__ = ["run"]
