"""Declarative experiment harness.

Every experiment produces an :class:`ExperimentResult`: a set of named
tables (rows of dictionaries) plus free-form notes.  The harness renders
them in the same layout that EXPERIMENTS.md records so paper-vs-measured
comparisons are mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.utils.serialization import dumps as _json_dumps
from repro.utils.tables import Table


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes
    ----------
    seed:
        Master random seed (every experiment derives its randomness from it).
    scale:
        ``"small"`` (fast, used by the benchmark suite), ``"paper"``
        (the sizes recorded in EXPERIMENTS.md), or ``"smoke"`` (tiny,
        used by the test suite).
    overrides:
        Free-form per-experiment parameter overrides.
    """

    seed: int = 0
    scale: str = "small"
    overrides: Dict[str, Any] = field(default_factory=dict)

    def param(self, name: str, defaults: Dict[str, Any]) -> Any:
        """Look up ``name`` in overrides, else in ``defaults[scale]``."""
        if name in self.overrides:
            return self.overrides[name]
        scale_defaults = defaults.get(self.scale, defaults.get("small", {}))
        if name not in scale_defaults:
            raise KeyError(f"experiment parameter {name!r} missing for scale {self.scale!r}")
        return scale_defaults[name]


@dataclass
class ExperimentResult:
    """Output of one experiment: named row-tables plus notes."""

    experiment_id: str
    tables: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    config: Optional[ExperimentConfig] = None

    def add_row(self, table: str, **row: Any) -> None:
        self.tables.setdefault(table, []).append(row)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def table_columns(self, table: str) -> List[str]:
        rows = self.tables.get(table, [])
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form: id, tables, notes, and the config used."""
        payload: Dict[str, Any] = {
            "experiment_id": self.experiment_id,
            "tables": {name: [dict(row) for row in rows] for name, rows in self.tables.items()},
            "notes": list(self.notes),
        }
        if self.config is not None:
            payload["config"] = {
                "seed": self.config.seed,
                "scale": self.config.scale,
                "overrides": dict(self.config.overrides),
            }
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON rendering (non-finite floats become null per strict JSON)."""
        return _json_dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Render every table and note as plain text."""
        blocks: List[str] = [f"== {self.experiment_id} =="]
        for name, rows in self.tables.items():
            columns = self.table_columns(name)
            table = Table(headers=columns, title=f"-- {name} --")
            for row in rows:
                table.add_row(*[row.get(column, "-") for column in columns])
            blocks.append(table.render())
        if self.notes:
            blocks.append("Notes:")
            blocks.extend(f"  * {note}" for note in self.notes)
        return "\n\n".join(blocks)

    def __str__(self) -> str:
        return self.render()


def experiment_result_from_scenario(payload: Dict[str, Any]) -> ExperimentResult:
    """Ingest a scenario-sweep JSON artifact as an :class:`ExperimentResult`.

    ``payload`` is the dict form of a scenario artifact (what
    ``SuiteResult.to_dict()`` emits / ``json.loads`` of the CLI output).
    The per-cell grid and the per-scheme aggregate land in two tables
    (``scenario_grid`` and ``scenario_schemes``) so sweeps render and
    serialize exactly like the E1–E12 experiments.
    """
    from repro.scenarios.report import SuiteResult

    suite_result = SuiteResult.from_dict(payload)
    suite = suite_result.suite
    result = ExperimentResult(experiment_id=f"scenarios:{suite.name}")
    for row in suite_result.summary_rows():
        result.add_row("scenario_grid", **row)
    for row in suite_result.scheme_summary():
        result.add_row("scenario_schemes", **row)
    disconnected = sum(1 for cell in suite_result.cells if cell.get("disconnected"))
    result.add_note(
        f"suite {suite.name!r}: {suite.num_cells()} cells "
        f"({len(suite.topologies)} topologies x {len(suite.demands)} demands x "
        f"{len(suite.failures)} failures), {suite.num_snapshots} snapshot(s) per cell, "
        f"seed={suite.seed}"
    )
    if disconnected:
        result.add_note(
            f"{disconnected} cell(s) disconnected the network; their congestion is null "
            "and only coverage is meaningful"
        )
    return result


def run_experiment(
    runner: Callable[[ExperimentConfig], ExperimentResult],
    config: Optional[ExperimentConfig] = None,
    print_result: bool = False,
) -> ExperimentResult:
    """Run ``runner`` with ``config`` (default config when omitted)."""
    config = config or ExperimentConfig()
    result = runner(config)
    result.config = config
    if print_result:
        print(result.render())
    return result


__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "experiment_result_from_scenario",
]
