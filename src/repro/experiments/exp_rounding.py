"""E6 — randomized rounding (Lemma 6.3 / Corollary 6.4).

Round fractional optimal routings of {0,1}-demands to integral routings
and verify the measured integral congestion stays below the certified
bound ``2 * cong + 3 ln m`` across topologies, also reporting how loose
the bound is in practice.
"""

from __future__ import annotations

import math

from repro.core.rounding import randomized_rounding, rounding_bound
from repro.demands.generators import random_pairs_demand, random_permutation_demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.mcf.lp import min_congestion_lp
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"cases": [("hypercube", 3)], "num_demands": 1},
    "small": {"cases": [("hypercube", 4), ("torus", 4), ("expander", 20)], "num_demands": 2},
    "paper": {"cases": [("hypercube", 6), ("torus", 6), ("expander", 48)], "num_demands": 5},
}


def _build(case, rng):
    kind, size = case
    if kind == "hypercube":
        return topologies.hypercube(size)
    if kind == "torus":
        return topologies.torus_2d(size)
    if kind == "expander":
        return topologies.random_regular_expander(size, degree=4, rng=rng)
    raise ValueError(f"unknown case {case!r}")


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E6_rounding")

    for case in config.param("cases", _DEFAULTS):
        network = _build(case, rng)
        for demand_index in range(config.param("num_demands", _DEFAULTS)):
            if demand_index % 2 == 0:
                demand = random_permutation_demand(network, rng=rng)
            else:
                demand = random_pairs_demand(network, num_pairs=network.num_vertices, rng=rng)
            if demand.is_empty():
                continue
            lp = min_congestion_lp(network, demand, return_routing=True)
            rounded = randomized_rounding(lp.routing, demand, rng=rng)
            bound = rounding_bound(lp.congestion, network.num_edges)
            result.add_row(
                "rounding",
                graph=network.name,
                n=network.num_vertices,
                m=network.num_edges,
                demand_size=int(demand.size()),
                fractional=round(lp.congestion, 3),
                integral=round(rounded.congestion, 3),
                bound=round(bound, 3),
                slack=round(bound - rounded.congestion, 3),
                attempts=rounded.attempts,
            )
    result.add_note(
        "Every row must satisfy integral <= bound = 2*fractional + 3 ln m (Lemma 6.3); the slack "
        "column shows the bound is loose in practice — typical integral congestion is close to the "
        "fractional optimum plus a small additive term."
    )
    _ = math
    return result


__all__ = ["run"]
