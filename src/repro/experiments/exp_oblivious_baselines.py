"""E10 — competitiveness of the base oblivious routings (Section 3 context).

Theorem 5.3 is stated relative to the sampling source R; every upstream
experiment therefore depends on the base oblivious routings being
reasonably competitive.  This experiment measures, per topology and
random permutation demands, the congestion ratio of:

* the Räcke-style MWU-over-trees routing,
* the electrical-flow routing,
* Valiant's routing (hypercubes only),
* single shortest path and uniform k-shortest-paths,

establishing the quality of the substitution documented in DESIGN.md.
"""

from __future__ import annotations

from repro.core.competitive import evaluate_oblivious_routing
from repro.demands.generators import random_permutation_demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.electrical import ElectricalFlowRouting
from repro.oblivious.racke import RaeckeTreeRouting
from repro.oblivious.shortest_path import KShortestPathRouting, ShortestPathRouting
from repro.oblivious.valiant import ValiantHypercubeRouting
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"hypercube_dim": 3, "expander_n": 12, "num_demands": 1},
    "small": {"hypercube_dim": 4, "expander_n": 20, "num_demands": 2},
    "paper": {"hypercube_dim": 6, "expander_n": 48, "num_demands": 5},
}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E10_oblivious_baselines")

    dim = config.param("hypercube_dim", _DEFAULTS)
    expander_n = config.param("expander_n", _DEFAULTS)
    num_demands = config.param("num_demands", _DEFAULTS)

    cube = topologies.hypercube(dim)
    expander = topologies.random_regular_expander(expander_n, degree=4, rng=rng)

    scenarios = [
        ("hypercube", cube, {
            "valiant": ValiantHypercubeRouting(cube, dim, rng=rng),
            "raecke-trees": RaeckeTreeRouting(cube, rng=rng),
            "electrical": ElectricalFlowRouting(cube),
            "spf": ShortestPathRouting(cube),
            "ksp4": KShortestPathRouting(cube, k=4),
        }),
        ("expander", expander, {
            "raecke-trees": RaeckeTreeRouting(expander, rng=rng),
            "electrical": ElectricalFlowRouting(expander),
            "spf": ShortestPathRouting(expander),
            "ksp4": KShortestPathRouting(expander, k=4),
        }),
    ]

    for label, network, builders in scenarios:
        demands = [random_permutation_demand(network, rng=rng) for _ in range(num_demands)]
        optima = [min_congestion_lp(network, demand).congestion for demand in demands]
        for scheme, builder in builders.items():
            worst = 0.0
            mean = 0.0
            for demand, optimum in zip(demands, optima):
                routing = builder.routing_for_demand(demand)
                report = evaluate_oblivious_routing(
                    routing, demand, scheme=scheme, optimal_congestion=optimum
                )
                worst = max(worst, report.ratio)
                mean += report.ratio / len(demands)
            result.add_row(
                "oblivious_baselines",
                graph=label,
                n=network.num_vertices,
                scheme=scheme,
                worst_ratio=round(worst, 3),
                mean_ratio=round(mean, 3),
            )
    result.add_note(
        "The sampling sources (valiant, raecke-trees, electrical) should show small worst ratios "
        "on permutation demands; spf is the weak baseline the sampled systems must beat."
    )
    return result


__all__ = ["run"]
