"""Experiment harness reproducing every quantitative claim of the paper.

Each ``exp_*`` module exposes a ``run(config) -> ExperimentResult``
function; the benchmark suite wraps them with pytest-benchmark, and the
example scripts print the resulting tables.  The experiment ids match the
per-experiment index in DESIGN.md and the records in EXPERIMENTS.md.
"""

from repro.experiments.harness import ExperimentResult, ExperimentConfig, run_experiment
from repro.experiments import (
    exp_sparsity_tradeoff,
    exp_log_sparsity,
    exp_lower_bound,
    exp_deterministic,
    exp_weak_routing,
    exp_rounding,
    exp_completion_time,
    exp_smore_te,
    exp_arbitrary_demands,
    exp_oblivious_baselines,
    exp_ablation_selection,
    exp_robustness,
)

REGISTRY = {
    "E1_sparsity_tradeoff": exp_sparsity_tradeoff.run,
    "E2_log_sparsity": exp_log_sparsity.run,
    "E3_lower_bound": exp_lower_bound.run,
    "E4_deterministic_hypercube": exp_deterministic.run,
    "E5_weak_routing_process": exp_weak_routing.run,
    "E6_rounding": exp_rounding.run,
    "E7_completion_time": exp_completion_time.run,
    "E8_smore_te": exp_smore_te.run,
    "E9_arbitrary_demands": exp_arbitrary_demands.run,
    "E10_oblivious_baselines": exp_oblivious_baselines.run,
    "E11_ablation_selection": exp_ablation_selection.run,
    "E12_robustness": exp_robustness.run,
}

__all__ = ["ExperimentResult", "ExperimentConfig", "run_experiment", "REGISTRY"]
