"""E8 — SMORE-style traffic engineering (Section 1.1 consequence, [KYY+18]).

Replay a diurnal gravity-model traffic-matrix series on an ISP-like
topology and compare the maximum-link-utilization ratio (vs the
per-snapshot MCF optimum) of:

* α = 4 semi-oblivious routing (sample once, adapt rates per snapshot),
* the base oblivious routing with fixed splits,
* adaptive k-shortest-paths,
* single shortest path.

All schemes are built through the scheme registry and evaluated by one
:class:`~repro.engine.engine.RoutingEngine`, so the semi-oblivious and
fixed-ratio schemes share a single Räcke construction and the
per-snapshot optimum is solved exactly once.

The qualitative claim to reproduce: semi-oblivious is close to optimal
(ratio near 1), clearly better than the non-adaptive oblivious routing
and far better than single-path routing — which is why α ≈ 4 is the
practical sweet spot the paper explains.
"""

from __future__ import annotations

from repro.demands.traffic_matrix import diurnal_gravity_series
from repro.engine import RoutingEngine
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs.generators import waxman_isp
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"n": 10, "snapshots": 2, "alpha": 2},
    "small": {"n": 14, "snapshots": 4, "alpha": 4},
    "paper": {"n": 18, "snapshots": 8, "alpha": 4},
}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E8_smore_te")

    n = config.param("n", _DEFAULTS)
    snapshots = config.param("snapshots", _DEFAULTS)
    alpha = config.param("alpha", _DEFAULTS)

    network = waxman_isp(n, rng=rng)
    series = diurnal_gravity_series(network, num_snapshots=snapshots, rng=rng)
    engine = RoutingEngine(
        network,
        {
            "semi-oblivious": f"semi-oblivious(racke, alpha={alpha})",
            "oblivious": "oblivious(racke)",
            "ksp": f"ksp(k={alpha})",
            "spf": "spf",
        },
        rng=rng,
    )
    engine.install()
    report = engine.evaluate_matrix_series(series)

    for scheme, scheme_result in report.results.items():
        result.add_row(
            "te_utilization_ratios",
            topology=network.name,
            n=network.num_vertices,
            m=network.num_edges,
            snapshots=len(series),
            alpha=alpha,
            scheme=scheme,
            mean_ratio=round(scheme_result.mean_ratio(), 3),
            p90_ratio=round(scheme_result.percentile_ratio(90.0), 3),
            worst_ratio=round(scheme_result.worst_ratio(), 3),
        )
    semi_oblivious = engine["semi-oblivious"]
    result.add_row(
        "te_sparsity",
        scheme="semi-oblivious",
        installed_paths=semi_oblivious.system.num_paths(),
        sparsity=semi_oblivious.system.sparsity(),
        optimal_mcf_solves=engine.num_optimal_solves,
    )
    result.add_note(
        "Expected ordering of mean ratios: semi-oblivious <= ksp < oblivious << spf, with "
        "semi-oblivious close to 1 — the SMORE observation the paper gives a theoretical basis for."
    )
    return result


__all__ = ["run"]
