"""E5 — the weak-routing deletion process (Lemma 5.6 / Section 5.1).

Run the fixed-edge-order deletion process on α-special demands and
measure (a) the fraction of the demand that survives for varying
congestion allowances γ, and (b) the empirical failure rate of "route at
least half" across random samples, compared with the Chernoff-style
predictions of the analysis.
"""

from __future__ import annotations

from repro.analysis.concentration import main_lemma_failure_bound
from repro.core.sampling import alpha_plus_cut_sample
from repro.core.weak_routing import WeakRoutingProcess
from repro.demands.generators import special_demand_from_pairs
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.graphs.cuts import CutCache
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.racke import RaeckeTreeRouting
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"expander_n": 12, "alpha": 2, "num_pairs": 4, "trials": 3, "gammas": [2.0, 4.0]},
    "small": {"expander_n": 20, "alpha": 3, "num_pairs": 8, "trials": 5, "gammas": [1.0, 2.0, 4.0, 8.0]},
    "paper": {"expander_n": 48, "alpha": 4, "num_pairs": 16, "trials": 20, "gammas": [1.0, 2.0, 4.0, 8.0, 16.0]},
}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E5_weak_routing_process")

    n = config.param("expander_n", _DEFAULTS)
    alpha = config.param("alpha", _DEFAULTS)
    num_pairs = config.param("num_pairs", _DEFAULTS)
    trials = config.param("trials", _DEFAULTS)
    gammas = config.param("gammas", _DEFAULTS)

    network = topologies.random_regular_expander(n, degree=4, rng=rng)
    cuts = CutCache(network)
    oblivious = RaeckeTreeRouting(network, rng=rng)

    vertices = network.vertices
    pairs = []
    for index in range(num_pairs):
        source = vertices[index % len(vertices)]
        target = vertices[(index * 7 + 3) % len(vertices)]
        if source != target:
            pairs.append((source, target))
    demand = special_demand_from_pairs(pairs, alpha, cuts)
    optimum = min_congestion_lp(network, demand).congestion

    for gamma_multiplier in gammas:
        gamma = max(gamma_multiplier * optimum, 1e-9)
        successes = 0
        fractions = []
        for _ in range(trials):
            system = alpha_plus_cut_sample(oblivious, alpha, cut_oracle=cuts, pairs=pairs, rng=rng)
            process = WeakRoutingProcess(system)
            outcome = process.run(demand, gamma=gamma)
            fractions.append(outcome.routed_fraction)
            if outcome.succeeded:
                successes += 1
        failure_rate = 1.0 - successes / trials
        result.add_row(
            "weak_routing",
            n=n,
            alpha=alpha,
            support=demand.support_size(),
            gamma_over_opt=gamma_multiplier,
            mean_fraction_routed=round(sum(fractions) / len(fractions), 3),
            empirical_failure_rate=round(failure_rate, 3),
            lemma_bound_h1=f"{main_lemma_failure_bound(network.num_edges, 1, demand.support_size()):.1e}",
        )
    result.add_note(
        "As gamma grows past a small multiple of the optimum, the mean routed fraction should "
        "reach 1 and the empirical failure rate should collapse to 0, matching the exponential "
        "concentration the Main Lemma formalizes (the analytic bound shown is for h = 1)."
    )
    return result


__all__ = ["run"]
