"""E1 — sparsity-competitiveness trade-off (Theorem 2.5, "power of random choices").

Sweep α and measure the competitive ratio of α-samples against the
offline optimum on hypercubes and expanders, comparing the measured curve
against the ``n^{O(1/α)}`` prediction and the Lemma 8.1 lower-bound curve.
The qualitative claim to verify: each additional path yields a large
(multiplicative) improvement, flattening to near-optimal by α ≈ log n.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.theory import predicted_competitiveness, predicted_lower_bound
from repro.core.sampling import alpha_sample
from repro.core.competitive import evaluate_path_system
from repro.demands.generators import random_permutation_demand
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.graphs import topologies
from repro.mcf.lp import min_congestion_lp
from repro.oblivious.racke import RaeckeTreeRouting
from repro.oblivious.valiant import ValiantHypercubeRouting
from repro.utils.rng import ensure_rng

_DEFAULTS = {
    "smoke": {"hypercube_dim": 3, "expander_n": 12, "alphas": [1, 2, 4], "num_demands": 1},
    "small": {"hypercube_dim": 4, "expander_n": 20, "alphas": [1, 2, 3, 4, 6, 8], "num_demands": 2},
    "paper": {"hypercube_dim": 6, "expander_n": 48, "alphas": [1, 2, 3, 4, 6, 8, 12], "num_demands": 5},
}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)
    result = ExperimentResult(experiment_id="E1_sparsity_tradeoff")

    dim = config.param("hypercube_dim", _DEFAULTS)
    expander_n = config.param("expander_n", _DEFAULTS)
    alphas: List[int] = config.param("alphas", _DEFAULTS)
    num_demands = config.param("num_demands", _DEFAULTS)

    scenarios = []
    cube = topologies.hypercube(dim)
    scenarios.append(("hypercube", cube, ValiantHypercubeRouting(cube, dim, rng=rng)))
    expander = topologies.random_regular_expander(expander_n, degree=4, rng=rng)
    scenarios.append(("expander", expander, RaeckeTreeRouting(expander, rng=rng)))

    for label, network, oblivious in scenarios:
        demands = [random_permutation_demand(network, rng=rng) for _ in range(num_demands)]
        optima = {}
        for index, demand in enumerate(demands):
            optima[index] = min_congestion_lp(network, demand).congestion
        for alpha in alphas:
            pairs = {pair for demand in demands for pair in demand.pairs()}
            system = alpha_sample(oblivious, alpha, pairs=pairs, rng=rng)
            worst_ratio = 0.0
            mean_ratio = 0.0
            for index, demand in enumerate(demands):
                report = evaluate_path_system(
                    system, demand, optimal_congestion=optima[index]
                )
                worst_ratio = max(worst_ratio, report.ratio)
                mean_ratio += report.ratio / len(demands)
            result.add_row(
                "sparsity_tradeoff",
                graph=label,
                n=network.num_vertices,
                alpha=alpha,
                sparsity=system.sparsity(),
                worst_ratio=round(worst_ratio, 3),
                mean_ratio=round(mean_ratio, 3),
                upper_prediction=round(predicted_competitiveness(network.num_vertices, alpha), 1),
                lower_prediction=round(predicted_lower_bound(network.num_vertices, alpha), 3),
            )
    result.add_note(
        "Ratios should decrease sharply with alpha (exponential improvement, Theorem 2.5) "
        "and sit between the lower-bound curve and the polylog-times-n^{1/alpha} upper shape."
    )
    return result


__all__ = ["run"]
