"""Approximate min-congestion MCF via multiplicative weights.

A Fleischer / Garg–Könemann style maximum-concurrent-flow computation:
maintain exponential edge lengths, repeatedly push each commodity's
demand along its currently shortest path, and stop once every edge length
has grown past the budget.  After scaling, the sent flow is a
``(1 + epsilon)``-approximate maximum concurrent flow, and its inverse is
a ``(1 + epsilon)``-approximation of the optimum congestion.

This solver is LP-free, scales to instances where the exact edge-flow LP
becomes slow, and doubles as an independent cross-check of the LP results
in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.demands.demand import Demand
from repro.exceptions import InfeasibleError, SolverError
from repro.graphs.network import Network, Path, Vertex, edge_key, path_edges


@dataclass
class ApproximateCongestionResult:
    """Result of the multiplicative-weights min-congestion approximation."""

    congestion: float
    weighted_paths: List[Tuple[Tuple[Vertex, Vertex], Path, float]]
    iterations: int


def approximate_min_congestion(
    network: Network,
    demand: Demand,
    epsilon: float = 0.1,
    max_iterations: int = 100_000,
) -> ApproximateCongestionResult:
    """Approximate ``opt_{G,R}(d)`` within a ``(1 + epsilon)`` factor (upper bound).

    Returns the estimated congestion along with the weighted paths of the
    feasible routing achieving it (so the result is always an *upper*
    bound on the optimum, approaching it as epsilon shrinks).
    """
    commodities = [(pair, amount) for pair, amount in demand.items() if amount > 0]
    if not commodities:
        return ApproximateCongestionResult(congestion=0.0, weighted_paths=[], iterations=0)
    if epsilon <= 0 or epsilon >= 1:
        raise SolverError("epsilon must be in (0, 1)")

    m = network.num_edges
    delta = (m / (1.0 - epsilon)) ** (-1.0 / epsilon)
    capacities = {edge: network.capacity_of(edge) for edge in network.edges}
    lengths: Dict[Tuple[Vertex, Vertex], float] = {
        edge: delta / capacity for edge, capacity in capacities.items()
    }
    # Total flow sent per edge across all phases (before scaling).
    edge_flow: Dict[Tuple[Vertex, Vertex], float] = {edge: 0.0 for edge in capacities}
    sent: List[Tuple[Tuple[Vertex, Vertex], Path, float]] = []

    graph = nx.Graph()
    for (u, v), length in lengths.items():
        graph.add_edge(u, v, length=length)

    def shortest(source: Vertex, target: Vertex) -> Path:
        try:
            nodes = nx.shortest_path(graph, source, target, weight="length")
        except nx.NetworkXNoPath as exc:
            raise InfeasibleError(f"no path between {source!r} and {target!r}") from exc
        return tuple(nodes)

    budget = 1.0  # an edge is saturated once its length reaches delta * exp-ish budget -> use length >= 1
    phases = 0
    iterations = 0
    while True:
        # Stop when the shortest path for every commodity is already "long".
        min_length = min(
            sum(lengths[edge] for edge in path_edges(shortest(source, target)))
            for (source, target), _ in commodities
        )
        if min_length >= budget:
            break
        phases += 1
        for (source, target), amount in commodities:
            remaining = amount
            while remaining > 1e-12:
                iterations += 1
                if iterations > max_iterations:
                    raise SolverError("multiplicative-weights solver exceeded iteration budget")
                path = shortest(source, target)
                path_edge_list = path_edges(path)
                bottleneck = min(capacities[edge] for edge in path_edge_list)
                pushed = min(remaining, bottleneck)
                remaining -= pushed
                sent.append(((source, target), path, pushed))
                for edge in path_edge_list:
                    edge_flow[edge] += pushed
                    lengths[edge] *= 1.0 + epsilon * pushed / capacities[edge]
                    graph[edge[0]][edge[1]]["length"] = lengths[edge]
                path_length = sum(lengths[edge] for edge in path_edge_list)
                if path_length >= budget:
                    # This commodity's path is saturated for this phase;
                    # the outer loop will decide whether to stop.
                    if remaining > 1e-12:
                        continue
        if phases > math.ceil(math.log((1 + epsilon) / delta) / math.log(1 + epsilon)) + 2:
            break

    if phases == 0:
        # Demands were routable without saturating anything: one phase suffices.
        phases = 1
        for (source, target), amount in commodities:
            path = shortest(source, target)
            sent.append(((source, target), path, amount))
            for edge in path_edges(path):
                edge_flow[edge] += amount

    # The concatenation of the phases routes `phases` copies of the demand;
    # scaling by 1/phases yields a feasible routing of the demand itself.
    scale = 1.0 / phases
    scaled_paths = [(pair, path, amount * scale) for pair, path, amount in sent]
    congestion = 0.0
    for edge, flow in edge_flow.items():
        congestion = max(congestion, flow * scale / capacities[edge])
    return ApproximateCongestionResult(
        congestion=congestion,
        weighted_paths=scaled_paths,
        iterations=iterations,
    )


__all__ = ["approximate_min_congestion", "ApproximateCongestionResult"]
