"""Exact integral optimum for tiny instances.

The integral optimum ``opt_{G,Z}(d)`` (Section 4) minimizes congestion
over routings that send each unit of an integral demand along a single
path.  The problem is NP-hard in general; this module provides an exact
solver by exhaustive search over candidate-path assignments, intended for
the small lower-bound gadgets and unit tests (the lower-bound experiments
also know their integral optimum analytically — it is 1 on ``C(n, k)``).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.demands.demand import Demand
from repro.exceptions import DemandError, SolverError
from repro.graphs.network import Network, Path, Vertex, path_edges


def _candidate_paths(network: Network, source: Vertex, target: Vertex, limit: int) -> List[Path]:
    paths = []
    for nodes in nx.shortest_simple_paths(network.graph, source, target):
        paths.append(tuple(nodes))
        if len(paths) >= limit:
            break
    return paths


def exact_integral_optimum(
    network: Network,
    demand: Demand,
    paths_per_pair: int = 6,
    max_assignments: int = 200_000,
) -> Tuple[float, Dict[Tuple[Vertex, Vertex], Path]]:
    """Exact integral min-congestion for a small {0,1}-demand.

    Enumerates, for every demanded pair, up to ``paths_per_pair`` shortest
    simple paths, and exhaustively searches over joint assignments.  Both
    the demand (must be {0,1}) and the search space (bounded by
    ``max_assignments``) must be small.

    Returns the optimal congestion and one optimal assignment.
    """
    if not demand.is_zero_one():
        raise DemandError("exact integral optimum requires a {0,1}-demand")
    pairs = demand.pairs()
    if not pairs:
        return 0.0, {}
    candidates = [
        _candidate_paths(network, source, target, paths_per_pair) for source, target in pairs
    ]
    search_space = 1
    for options in candidates:
        search_space *= max(len(options), 1)
        if search_space > max_assignments:
            raise SolverError(
                f"search space {search_space} exceeds max_assignments={max_assignments}"
            )
    best_congestion = float("inf")
    best_assignment: Optional[Sequence[Path]] = None
    capacities = {edge: network.capacity_of(edge) for edge in network.edges}
    for assignment in itertools.product(*candidates):
        loads: Dict[Tuple[Vertex, Vertex], float] = {}
        for path in assignment:
            for edge in path_edges(path):
                loads[edge] = loads.get(edge, 0.0) + 1.0
        congestion = max(
            (load / capacities[edge] for edge, load in loads.items()), default=0.0
        )
        if congestion < best_congestion:
            best_congestion = congestion
            best_assignment = assignment
            if best_congestion <= 1.0:  # cannot do better than 1 for a {0,1}-demand on unit capacities
                if all(capacities[edge] <= 1.0 for edge in capacities):
                    break
    assert best_assignment is not None
    return best_congestion, dict(zip(pairs, best_assignment))


__all__ = ["exact_integral_optimum"]
