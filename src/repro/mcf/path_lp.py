"""Min-congestion routing restricted to a candidate path system.

This is the Stage-4 computation of the paper: once the demand is
revealed, the semi-oblivious router optimizes the split of each pair's
demand over its pre-installed candidate paths so as to minimize the
maximum edge congestion.  Formally it computes

.. math::

    cong_R(P, d) = \\min_{R \\text{ a routing on } P} cong(R, d)

(Definition 5.1) via the path-based LP with one variable per (pair,
candidate path) plus the congestion variable ``z``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

try:
    from scipy import sparse
    from scipy.optimize import linprog
except ImportError:  # pragma: no cover - scipy ships via the [lp] extra
    sparse = None
    linprog = None

from repro.core.path_system import PathSystem
from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import InfeasibleError, SolverError
from repro.graphs.network import Network, Path, Vertex, path_edges


@dataclass
class PathLPResult:
    """Result of the path-restricted min-congestion LP.

    Attributes
    ----------
    congestion:
        ``cong_R(P, d)`` — the best congestion achievable on the system.
    routing:
        The optimal routing on the path system (``None`` for empty demands).
    edge_congestions:
        Per-edge congestion under the optimal rates.
    """

    congestion: float
    routing: Optional[Routing]
    edge_congestions: Dict[Tuple[Vertex, Vertex], float]


def min_congestion_on_paths(
    system: PathSystem,
    demand: Demand,
    return_routing: bool = True,
) -> PathLPResult:
    """Optimally split ``demand`` over the candidate paths of ``system``.

    Raises
    ------
    InfeasibleError
        When some demanded pair has no candidate path in the system.
    """
    if linprog is None:
        raise SolverError(
            "scipy is required for LP solving; install the 'lp' extra "
            "(pip install repro-semi-oblivious-routing[lp])"
        )
    network = system.network
    commodities: List[Tuple[Tuple[Vertex, Vertex], float, List[Path]]] = []
    for pair, amount in demand.items():
        if amount <= 0:
            continue
        paths = system.paths(*pair)
        if not paths:
            raise InfeasibleError(f"path system has no candidate path for pair {pair!r}")
        commodities.append((pair, amount, paths))
    if not commodities:
        return PathLPResult(congestion=0.0, routing=None, edge_congestions={})

    # Variable layout: one weight per (commodity, path), then z.
    offsets: List[int] = []
    total_vars = 0
    for _, _, paths in commodities:
        offsets.append(total_vars)
        total_vars += len(paths)
    z_index = total_vars
    num_vars = total_vars + 1

    cost = np.zeros(num_vars)
    cost[z_index] = 1.0

    # Equality: per commodity, path weights sum to the demanded amount.
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_rhs = np.zeros(len(commodities))
    for commodity_index, (pair, amount, paths) in enumerate(commodities):
        eq_rhs[commodity_index] = amount
        for path_offset in range(len(paths)):
            eq_rows.append(commodity_index)
            eq_cols.append(offsets[commodity_index] + path_offset)
            eq_vals.append(1.0)
    a_eq = sparse.coo_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(commodities), num_vars)
    ).tocsr()

    # Inequality: per edge, total load <= z * capacity.
    edge_index_map = {edge: idx for idx, edge in enumerate(network.edges)}
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    for commodity_index, (pair, amount, paths) in enumerate(commodities):
        for path_offset, path in enumerate(paths):
            column = offsets[commodity_index] + path_offset
            for edge in path_edges(path):
                ub_rows.append(edge_index_map[edge])
                ub_cols.append(column)
                ub_vals.append(1.0)
    for edge, row in edge_index_map.items():
        ub_rows.append(row)
        ub_cols.append(z_index)
        ub_vals.append(-network.capacity_of(edge))
    a_ub = sparse.coo_matrix(
        (ub_vals, (ub_rows, ub_cols)), shape=(len(edge_index_map), num_vars)
    ).tocsr()
    b_ub = np.zeros(len(edge_index_map))

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=eq_rhs,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleError("path LP infeasible")
    if not result.success:
        raise SolverError(f"path LP failed: {result.message}")

    solution = result.x
    congestion = float(solution[z_index])

    edge_congestions: Dict[Tuple[Vertex, Vertex], float] = {}
    routing = None
    distributions = {}
    for commodity_index, (pair, amount, paths) in enumerate(commodities):
        weights = {}
        for path_offset, path in enumerate(paths):
            weight = float(solution[offsets[commodity_index] + path_offset])
            if weight > 1e-12:
                weights[path] = weight
                for edge in path_edges(path):
                    edge_congestions[edge] = edge_congestions.get(edge, 0.0) + weight
        if not weights:
            # Degenerate LP output; route everything on the first path.
            weights = {paths[0]: amount}
            for edge in path_edges(paths[0]):
                edge_congestions[edge] = edge_congestions.get(edge, 0.0) + amount
        total = sum(weights.values())
        distributions[pair] = {path: weight / total for path, weight in weights.items()}
    for edge in list(edge_congestions):
        edge_congestions[edge] /= network.capacity_of(edge)
    if return_routing:
        routing = Routing(network, distributions)

    return PathLPResult(
        congestion=congestion,
        routing=routing,
        edge_congestions=edge_congestions,
    )


def greedy_rates(system: PathSystem, demand: Demand, iterations: int = 200) -> PathLPResult:
    """An LP-free approximate rate adaptation (iterative load balancing).

    Starts from an even split per pair, then repeatedly moves a small
    fraction of every pair's traffic from its currently most congested
    candidate path to its least congested one.  Used as a cross-check and
    as a fast fallback for very large instances.
    """
    network = system.network
    commodities = []
    for pair, amount in demand.items():
        if amount <= 0:
            continue
        paths = system.paths(*pair)
        if not paths:
            raise InfeasibleError(f"path system has no candidate path for pair {pair!r}")
        commodities.append((pair, amount, paths))
    if not commodities:
        return PathLPResult(congestion=0.0, routing=None, edge_congestions={})

    weights: Dict[Tuple[Tuple[Vertex, Vertex], Path], float] = {}
    for pair, amount, paths in commodities:
        for path in paths:
            weights[(pair, path)] = amount / len(paths)

    edge_capacity = {edge: network.capacity_of(edge) for edge in network.edges}

    def edge_loads() -> Dict[Tuple[Vertex, Vertex], float]:
        loads: Dict[Tuple[Vertex, Vertex], float] = {}
        for (pair, path), weight in weights.items():
            if weight <= 0:
                continue
            for edge in path_edges(path):
                loads[edge] = loads.get(edge, 0.0) + weight
        return loads

    step = 0.25
    for _ in range(iterations):
        loads = edge_loads()
        improved = False
        for pair, amount, paths in commodities:
            if len(paths) < 2:
                continue

            def path_cost(path: Path) -> float:
                return max(
                    (loads.get(edge, 0.0) / edge_capacity[edge] for edge in path_edges(path)),
                    default=0.0,
                )

            worst = max(paths, key=path_cost)
            best = min(paths, key=path_cost)
            if path_cost(worst) <= path_cost(best) + 1e-12 or worst == best:
                continue
            move = step * weights[(pair, worst)]
            if move <= 1e-15:
                continue
            weights[(pair, worst)] -= move
            weights[(pair, best)] += move
            for edge in path_edges(worst):
                loads[edge] = loads.get(edge, 0.0) - move
            for edge in path_edges(best):
                loads[edge] = loads.get(edge, 0.0) + move
            improved = True
        if not improved:
            break
        step = max(step * 0.97, 0.02)

    loads = edge_loads()
    edge_congestions = {edge: load / edge_capacity[edge] for edge, load in loads.items()}
    congestion = max(edge_congestions.values(), default=0.0)
    distributions = {}
    for pair, amount, paths in commodities:
        pair_weights = {path: weights[(pair, path)] for path in paths if weights[(pair, path)] > 1e-15}
        total = sum(pair_weights.values())
        if total <= 0:
            pair_weights = {paths[0]: 1.0}
            total = 1.0
        distributions[pair] = {path: weight / total for path, weight in pair_weights.items()}
    routing = Routing(network, distributions)
    return PathLPResult(congestion=congestion, routing=routing, edge_congestions=edge_congestions)


__all__ = ["min_congestion_on_paths", "greedy_rates", "PathLPResult"]
