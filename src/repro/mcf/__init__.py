"""Multicommodity-flow solvers.

The paper compares semi-oblivious routings against the offline optimum
``opt_{G,R}(d)``: the minimum achievable maximum edge congestion over all
fractional routings of the demand.  This package provides:

* :func:`~repro.mcf.lp.min_congestion_lp` — the exact edge-flow LP
  (scipy / HiGHS), returning both the optimum value and an optimal
  routing (via flow decomposition),
* :func:`~repro.mcf.path_lp.min_congestion_on_paths` — the path-based LP
  restricted to a candidate path system (this computes ``cong_R(P, d)``,
  the Stage-4 adaptive rate optimization),
* :func:`~repro.mcf.mwu.approximate_min_congestion` — a Garg–Könemann /
  Fleischer multiplicative-weights approximation, used for large
  instances and as an LP-free cross-check,
* :func:`~repro.mcf.integral.exact_integral_optimum` — brute-force
  integral optimum for tiny instances (used by lower-bound tests).
"""

from repro.mcf.lp import min_congestion_lp, MinCongestionResult
from repro.mcf.path_lp import min_congestion_on_paths, PathLPResult
from repro.mcf.mwu import approximate_min_congestion
from repro.mcf.integral import exact_integral_optimum

__all__ = [
    "min_congestion_lp",
    "MinCongestionResult",
    "min_congestion_on_paths",
    "PathLPResult",
    "approximate_min_congestion",
    "exact_integral_optimum",
]
