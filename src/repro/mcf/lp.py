"""Exact min-congestion multicommodity flow via linear programming.

The offline optimum ``opt_{G,R}(d)`` (Section 4) is the value of the LP

.. math::

    \\min z \\quad \\text{s.t.} \\quad
    \\sum_k (f_k(u,v) + f_k(v,u)) \\le z \\cdot c(u,v) \\;\\forall \\{u,v\\},
    \\qquad f_k \\text{ routes } d_k \\text{ units from } s_k \\text{ to } t_k.

We solve the arc-flow formulation with ``scipy.optimize.linprog`` (HiGHS)
using sparse constraint matrices, and optionally decompose the optimal
edge flows into a :class:`~repro.core.routing.Routing` (weighted paths per
commodity) so the optimum can be *used*, not just reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

try:
    from scipy import sparse
    from scipy.optimize import linprog
except ImportError:  # pragma: no cover - scipy ships via the [lp] extra
    sparse = None
    linprog = None

from repro.core.routing import Routing
from repro.demands.demand import Demand
from repro.exceptions import InfeasibleError, SolverError
from repro.graphs.network import Network, Vertex
from repro.oblivious.electrical import decompose_flow
from repro.obs import trace_span


@dataclass
class MinCongestionResult:
    """Result of the min-congestion LP.

    Attributes
    ----------
    congestion:
        The optimal maximum edge congestion ``opt_{G,R}(d)``.
    routing:
        An optimal fractional routing (``None`` unless requested).
    edge_congestions:
        Per-edge congestion of the optimal flow.
    """

    congestion: float
    routing: Optional[Routing]
    edge_congestions: Dict[Tuple[Vertex, Vertex], float]


def min_congestion_lp(
    network: Network,
    demand: Demand,
    return_routing: bool = False,
) -> MinCongestionResult:
    """Solve the exact fractional min-congestion MCF for ``demand``.

    Parameters
    ----------
    network:
        The network (capacities taken from edge attributes).
    demand:
        The demand matrix; an empty demand yields congestion 0.
    return_routing:
        When True, decompose the optimal flow into per-commodity path
        distributions and return them as a :class:`Routing`.
    """
    if linprog is None:
        raise SolverError(
            "scipy is required for LP solving; install the 'lp' extra "
            "(pip install repro-semi-oblivious-routing[lp])"
        )
    commodities = [(pair, amount) for pair, amount in demand.items() if amount > 0]
    if not commodities:
        return MinCongestionResult(congestion=0.0, routing=None, edge_congestions={})

    n = network.num_vertices
    edges = network.edges
    m = len(edges)
    arcs: List[Tuple[Vertex, Vertex]] = []
    for u, v in edges:
        arcs.append((u, v))
        arcs.append((v, u))
    num_arcs = len(arcs)
    k = len(commodities)
    num_vars = k * num_arcs + 1  # + z
    z_index = num_vars - 1

    def var(commodity: int, arc: int) -> int:
        return commodity * num_arcs + arc

    with trace_span("mcf.lp") as span:
        span.add("columns", num_vars)
        span.add("commodities", k)

        # Objective: minimize z.
        cost = np.zeros(num_vars)
        cost[z_index] = 1.0

        with trace_span("mcf.lp_setup"):
            a_eq, eq_rhs, a_ub, b_ub = _build_constraints(
                network, commodities, arcs, n, m, k, num_vars, z_index, var
            )

        bounds = [(0, None)] * num_vars
        with trace_span("mcf.lp_solve"):
            result = linprog(
                cost,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=eq_rhs,
                bounds=bounds,
                method="highs",
            )
    if result.status == 2:
        raise InfeasibleError("min-congestion LP is infeasible (disconnected demand?)")
    if not result.success:
        raise SolverError(f"min-congestion LP failed: {result.message}")

    solution = result.x
    congestion = float(solution[z_index])

    # Per-edge congestion of the optimal flow.
    edge_congestions: Dict[Tuple[Vertex, Vertex], float] = {}
    for edge_index, (u, v) in enumerate(edges):
        load = 0.0
        for commodity_index in range(k):
            load += solution[var(commodity_index, 2 * edge_index)]
            load += solution[var(commodity_index, 2 * edge_index + 1)]
        edge_congestions[(u, v)] = load / network.capacity(u, v)

    routing = None
    if return_routing:
        routing = _decompose_to_routing(network, commodities, arcs, solution, var)

    return MinCongestionResult(
        congestion=congestion,
        routing=routing,
        edge_congestions=edge_congestions,
    )


def _build_constraints(network, commodities, arcs, n, m, k, num_vars, z_index, var):
    """Sparse flow-conservation (eq) and capacity-coupling (ub) systems."""
    edges = network.edges
    # Equality constraints: flow conservation per commodity per vertex.
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_rhs = np.zeros(k * n)
    for commodity_index, ((source, target), amount) in enumerate(commodities):
        source_row = commodity_index * n + network.vertex_index(source)
        target_row = commodity_index * n + network.vertex_index(target)
        eq_rhs[source_row] = amount
        eq_rhs[target_row] = -amount
        for arc_index, (u, v) in enumerate(arcs):
            column = var(commodity_index, arc_index)
            row_u = commodity_index * n + network.vertex_index(u)
            row_v = commodity_index * n + network.vertex_index(v)
            eq_rows.append(row_u)
            eq_cols.append(column)
            eq_vals.append(1.0)  # outgoing from u
            eq_rows.append(row_v)
            eq_cols.append(column)
            eq_vals.append(-1.0)  # incoming to v
    a_eq = sparse.coo_matrix((eq_vals, (eq_rows, eq_cols)), shape=(k * n, num_vars)).tocsr()

    # Inequality constraints: capacity coupling per undirected edge.
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    for edge_index, (u, v) in enumerate(edges):
        capacity = network.capacity(u, v)
        forward = 2 * edge_index
        backward = 2 * edge_index + 1
        for commodity_index in range(k):
            ub_rows.append(edge_index)
            ub_cols.append(var(commodity_index, forward))
            ub_vals.append(1.0)
            ub_rows.append(edge_index)
            ub_cols.append(var(commodity_index, backward))
            ub_vals.append(1.0)
        ub_rows.append(edge_index)
        ub_cols.append(z_index)
        ub_vals.append(-capacity)
    a_ub = sparse.coo_matrix((ub_vals, (ub_rows, ub_cols)), shape=(m, num_vars)).tocsr()
    b_ub = np.zeros(m)
    return a_eq, eq_rhs, a_ub, b_ub


def _decompose_to_routing(
    network: Network,
    commodities: List[Tuple[Tuple[Vertex, Vertex], float]],
    arcs: List[Tuple[Vertex, Vertex]],
    solution: np.ndarray,
    var,
) -> Routing:
    """Turn the optimal arc flows into per-pair path distributions."""
    distributions = {}
    for commodity_index, ((source, target), amount) in enumerate(commodities):
        flows: Dict[Tuple[Vertex, Vertex], float] = {}
        for arc_index, arc in enumerate(arcs):
            value = float(solution[var(commodity_index, arc_index)])
            if value > 1e-9:
                flows[arc] = flows.get(arc, 0.0) + value
        # Cancel opposite-direction flow before decomposing.
        for (u, v) in list(flows.keys()):
            if (v, u) in flows and (u, v) in flows:
                forward, backward = flows[(u, v)], flows[(v, u)]
                net = forward - backward
                if net > 0:
                    flows[(u, v)] = net
                    flows.pop((v, u), None)
                elif net < 0:
                    flows[(v, u)] = -net
                    flows.pop((u, v), None)
                else:
                    flows.pop((u, v), None)
                    flows.pop((v, u), None)
        decomposition = decompose_flow(flows, source, target)
        if not decomposition:
            # Fall back to a shortest path carrying everything (numerical residue).
            decomposition = [(network.shortest_path(source, target), amount)]
        total = sum(weight for _, weight in decomposition)
        distributions[(source, target)] = {
            path: weight / total for path, weight in decomposition
        }
    return Routing(network, distributions)


def optimal_congestion(network: Network, demand: Demand) -> float:
    """Shortcut returning only ``opt_{G,R}(d)``."""
    return min_congestion_lp(network, demand, return_routing=False).congestion


__all__ = ["min_congestion_lp", "MinCongestionResult", "optimal_congestion"]
