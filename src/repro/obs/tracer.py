"""Process-global span tracer with a zero-cost disabled path.

The repository's observability layer is built around three ideas:

* **Spans** are context managers measuring one named block with
  ``time.perf_counter`` (via the shared :class:`~repro.utils.timing.Stopwatch`
  primitive).  They nest through a :mod:`contextvars` variable, carry
  free-form attributes (set at open) and integer counters (accumulated
  while open), and may optionally sample peak memory via
  :mod:`tracemalloc`.

* **One process-global tracer.**  Instrumentation sites call the
  module-level :func:`trace_span`; when no tracer is installed that is
  one global read plus returning a shared no-op span, so the hot paths
  pay essentially nothing when tracing is off (gated by
  ``repro bench obs``).

* **Records, not objects.**  A finished span is emitted to the tracer's
  sink as a plain JSON-serializable dict, so traces stream to disk one
  line at a time (crash-robust, mergeable across worker processes) and
  the analysis side (:mod:`repro.obs.summary`, :mod:`repro.obs.chrome`)
  never needs live objects.

Timeline model: every tracer notes a ``perf_counter`` epoch and a
wall-clock epoch at construction and emits a ``kind="process"`` meta
record.  Span start offsets (``t0``) are relative to the per-process
monotonic epoch; the wall epochs let the Chrome exporter align multiple
processes onto one timeline.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import tracemalloc
from typing import Any, Dict, List, Optional

from repro.exceptions import ObsError
from repro.utils.timing import Stopwatch

from .sinks import RecordingSink

TRACE_SCHEMA = "repro-trace/v1"

_CURRENT: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

# The process-global active tracer.  ``None`` means tracing is disabled
# and trace_span() returns the shared no-op span.
_ACTIVE: Optional["Tracer"] = None


class _NoOpSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, value: int = 1) -> "_NoOpSpan":
        return self

    def set(self, key: str, value: Any) -> "_NoOpSpan":
        return self

    @property
    def recording(self) -> bool:
        return False


NO_OP_SPAN = _NoOpSpan()


class Span:
    """One timed, named block of work.

    Created by :meth:`Tracer.span` (usually via :func:`trace_span`) and
    used as a context manager.  Nesting is tracked per-execution-context
    so spans opened on worker threads or in callbacks attach to the
    right parent.
    """

    __slots__ = (
        "name",
        "attrs",
        "counters",
        "seq",
        "parent_seq",
        "depth",
        "duration",
        "mem_peak_kb",
        "_tracer",
        "_watch",
        "_memory",
        "_token",
        "_tid",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        memory: bool = False,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: Dict[str, int] = {}
        self.seq = -1
        self.parent_seq: Optional[int] = None
        self.depth = 0
        self.duration = 0.0
        self.mem_peak_kb: Optional[float] = None
        self._tracer = tracer
        self._watch = Stopwatch()
        self._memory = memory and tracer.memory
        self._token: Optional[contextvars.Token] = None
        self._tid = 0

    @property
    def recording(self) -> bool:
        return True

    def add(self, counter: str, value: int = 1) -> "Span":
        """Accumulate an integer counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + value
        return self

    def set(self, key: str, value: Any) -> "Span":
        """Set (or overwrite) an attribute on this span."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        parent = _CURRENT.get()
        if parent is not None:
            self.parent_seq = parent.seq
            self.depth = parent.depth + 1
        self.seq = self._tracer._next_seq()
        self._tid = threading.get_ident()
        self._token = _CURRENT.set(self)
        if self._memory:
            # Peak is a process-global high-water mark: resetting here
            # means nested memory spans each see the peak since their
            # own entry (an outer span's recorded peak can therefore be
            # clipped by an inner reset; marked spans are expected to be
            # coarse, non-overlapping probes).
            tracemalloc.reset_peak()
        self._watch.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._watch.__exit__(exc_type, exc, tb)
        self.duration = self._watch.elapsed
        if self._memory:
            self.mem_peak_kb = tracemalloc.get_traced_memory()[1] / 1024.0
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._emit_span(self)
        return False


class Tracer:
    """Collects spans for one process and forwards them to a sink.

    Parameters
    ----------
    sink:
        Where records go; defaults to an in-memory
        :class:`~repro.obs.sinks.RecordingSink`.
    role:
        Free-form process label (``"main"``, ``"worker"``) recorded in
        the process meta record and shown by the Chrome exporter.
    memory:
        When true, spans opened with ``memory=True`` sample
        :mod:`tracemalloc` peak memory.  Tracemalloc is started if it is
        not already running (and stopped again on :meth:`close` if this
        tracer started it).
    """

    def __init__(self, sink=None, role: str = "main", memory: bool = False) -> None:
        self.sink = sink if sink is not None else RecordingSink()
        self.role = role
        self.memory = memory
        self.pid = os.getpid()
        self.epoch_perf = time.perf_counter()
        self.epoch_wall = time.time()
        self._seq = 0
        self._lock = threading.Lock()
        self._started_tracemalloc = False
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self.sink.emit(
            {
                "schema": TRACE_SCHEMA,
                "kind": "process",
                "pid": self.pid,
                "role": role,
                "epoch": self.epoch_wall,
            }
        )

    def span(self, name: str, memory: bool = False, **attrs: Any) -> Span:
        return Span(self, name, memory=memory, attrs=attrs)

    def current(self) -> Optional[Span]:
        """The innermost open span in this execution context, if any."""
        return _CURRENT.get()

    def _next_seq(self) -> int:
        with self._lock:
            seq = self._seq
            self._seq += 1
            return seq

    def _emit_span(self, span: Span) -> None:
        record: Dict[str, Any] = {
            "schema": TRACE_SCHEMA,
            "kind": "span",
            "name": span.name,
            "pid": self.pid,
            "tid": span._tid,
            "seq": span.seq,
            "parent": span.parent_seq,
            "depth": span.depth,
            "t0": round(span._watch.started_at - self.epoch_perf, 9),
            "dur": round(span.duration, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if span.counters:
            record["counters"] = span.counters
        if span.mem_peak_kb is not None:
            record["mem_peak_kb"] = round(span.mem_peak_kb, 3)
        with self._lock:
            self.sink.emit(record)

    def adopt(self, record: Dict[str, Any]) -> None:
        """Forward a record produced by another process to this sink.

        Used by the sweep runner to merge per-worker trace part files
        into the parent's trace.
        """
        with self._lock:
            self.sink.emit(record)

    @property
    def records(self) -> List[Dict[str, Any]]:
        """Recorded records, for in-memory sinks (raises otherwise)."""
        records = getattr(self.sink, "records", None)
        if records is None:
            raise ObsError("the tracer's sink does not keep records in memory")
        return records

    def close(self) -> None:
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False
        self.sink.close()


def active_tracer() -> Optional[Tracer]:
    """The installed process-global tracer, or ``None`` when disabled."""
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-global tracer.

    Exactly one tracer may be installed at a time; installing over an
    existing one raises :class:`~repro.exceptions.ObsError` (uninstall
    first).  Returns the tracer for one-line install-and-keep usage.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise ObsError(
            "a process-global tracer is already installed; call uninstall_tracer() first"
        )
    _ACTIVE = tracer
    return tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Remove and return the process-global tracer (``None`` if absent)."""
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    return tracer


def trace_span(name: str, memory: bool = False, **attrs: Any):
    """Open a span on the process-global tracer (no-op when disabled).

    This is the one function instrumentation sites call::

        with trace_span("linalg.compile", representation=rep) as span:
            ...
            span.add("nnz", len(rows))

    Keyword attributes are evaluated by the *caller* even when tracing
    is disabled, so call sites must only pass O(1)-cheap values.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NO_OP_SPAN
    return tracer.span(name, memory=memory, **attrs)


def add_counter(counter: str, value: int = 1) -> None:
    """Accumulate a counter on the innermost open span, if tracing."""
    tracer = _ACTIVE
    if tracer is not None:
        span = _CURRENT.get()
        if span is not None:
            span.add(counter, value)


__all__ = [
    "TRACE_SCHEMA",
    "NO_OP_SPAN",
    "Span",
    "Tracer",
    "active_tracer",
    "add_counter",
    "install_tracer",
    "trace_span",
    "tracing_enabled",
    "uninstall_tracer",
]
