"""Chrome trace-event exporter.

Converts ``repro-trace/v1`` records into the Chrome trace-event JSON
format understood by ``chrome://tracing`` and https://ui.perfetto.dev:
one ``ph="X"`` (complete) event per span with microsecond timestamps,
plus ``ph="M"`` metadata events naming each process after its recorded
role.

Cross-process alignment: span ``t0`` offsets are relative to each
process's own monotonic epoch, so the exporter shifts every process
onto a common timeline using the wall-clock ``epoch`` carried by the
``kind="process"`` meta records (sub-millisecond wall-clock skew
between a sweep parent and its forked workers is irrelevant at trace
granularity).  Thread idents are remapped to small per-process tids.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .tracer import TRACE_SCHEMA


def chrome_trace_events(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list for a set of trace records."""
    epochs: Dict[int, float] = {}
    roles: Dict[int, str] = {}
    for record in records:
        if record.get("kind") == "process":
            pid = int(record["pid"])
            epochs[pid] = float(record.get("epoch", 0.0))
            roles[pid] = str(record.get("role", "process"))
    base_epoch = min(epochs.values()) if epochs else 0.0

    events: List[Dict[str, Any]] = []
    for pid in sorted(epochs):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{roles[pid]} (pid {pid})"},
            }
        )

    tid_maps: Dict[int, Dict[int, int]] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        pid = int(record.get("pid", 0))
        raw_tid = int(record.get("tid", 0))
        tid_map = tid_maps.setdefault(pid, {})
        tid = tid_map.setdefault(raw_tid, len(tid_map))
        shift = epochs.get(pid, base_epoch) - base_epoch
        args: Dict[str, Any] = {}
        args.update(record.get("attrs") or {})
        args.update(record.get("counters") or {})
        if "mem_peak_kb" in record:
            args["mem_peak_kb"] = record["mem_peak_kb"]
        event: Dict[str, Any] = {
            "ph": "X",
            "name": str(record.get("name", "?")),
            "cat": "repro",
            "pid": pid,
            "tid": tid,
            "ts": (shift + float(record.get("t0", 0.0))) * 1e6,
            "dur": float(record.get("dur", 0.0)) * 1e6,
        }
        if args:
            event["args"] = args
        events.append(event)
    return events


def export_chrome_trace(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Full Chrome trace document (object form, Perfetto-loadable)."""
    return {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA},
    }


def write_chrome_trace(records: List[Dict[str, Any]], path: str) -> str:
    """Serialize :func:`export_chrome_trace` to ``path``; returns ``path``."""
    document = export_chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, default=str)
        handle.write("\n")
    return str(path)


__all__ = ["chrome_trace_events", "export_chrome_trace", "write_chrome_trace"]
