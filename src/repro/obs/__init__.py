"""Observability layer: structured tracing and metrics (zero-dependency).

``repro.obs`` gives every subsystem one way to answer "where does the
time (and peak memory) actually go": context-manager spans with
attributes and counters, a process-global tracer whose disabled path
costs a single global read, streaming JSONL sinks that survive killed
sweep workers, cross-process trace merging, a hot-span summary table
and a Chrome trace-event exporter.

Quick start::

    from repro.obs import JsonlSink, Tracer, install_tracer, uninstall_tracer

    tracer = install_tracer(Tracer(sink=JsonlSink("run.jsonl")))
    try:
        run_workload()          # instrumented code emits spans
    finally:
        uninstall_tracer()
        tracer.close()

or, from the CLI, pass ``--trace run.jsonl`` to ``repro te``,
``repro scenarios run``, ``repro stream run`` or ``repro net fit/odme``
and inspect with ``repro trace summarize run.jsonl``.

The instrumentation overhead of this layer is itself benchmarked and
regression-gated: see ``repro bench obs`` and ``BENCH_obs.json``.
"""

from .chrome import chrome_trace_events, export_chrome_trace, write_chrome_trace
from .sinks import JsonlSink, RecordingSink, load_trace, merge_trace_parts
from .summary import normalized_tree, render_summary, span_records, summarize_trace
from .tracer import (
    NO_OP_SPAN,
    TRACE_SCHEMA,
    Span,
    Tracer,
    active_tracer,
    add_counter,
    install_tracer,
    trace_span,
    tracing_enabled,
    uninstall_tracer,
)

__all__ = [
    "NO_OP_SPAN",
    "TRACE_SCHEMA",
    "JsonlSink",
    "RecordingSink",
    "Span",
    "Tracer",
    "active_tracer",
    "add_counter",
    "chrome_trace_events",
    "export_chrome_trace",
    "install_tracer",
    "load_trace",
    "merge_trace_parts",
    "normalized_tree",
    "render_summary",
    "span_records",
    "summarize_trace",
    "trace_span",
    "tracing_enabled",
    "uninstall_tracer",
    "write_chrome_trace",
]
