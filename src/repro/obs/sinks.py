"""Trace sinks: where finished span records go.

Sinks receive plain dict records (see :mod:`repro.obs.tracer` for the
``repro-trace/v1`` record shapes) and need only two methods: ``emit``
and ``close``.  Two implementations cover every use in the repository:

* :class:`RecordingSink` keeps records in a list — tests, benches and
  the summary CLI use it.
* :class:`JsonlSink` streams one JSON line per record and flushes after
  each write, so a SIGKILLed worker loses at most its open spans (the
  loader tolerates a truncated final line for exactly this reason).

The module also hosts the loader (:func:`load_trace`) and the
cross-process merge helper (:func:`merge_trace_parts`) used by the
sweep runner to fold per-worker part files into the parent's trace.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.exceptions import ObsError


class RecordingSink:
    """Keeps every emitted record in memory (``.records``)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams records to a file, one JSON object per line.

    Every record is flushed immediately: traces written by sweep
    workers must survive the worker being killed mid-cell.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":"), default=str))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace file back into a list of records.

    A truncated *final* line (the signature of a killed writer) is
    dropped silently; malformed JSON anywhere else raises
    :class:`~repro.exceptions.ObsError`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        raise ObsError(f"cannot read trace file {path!r}: {error}") from error
    records: List[Dict[str, Any]] = []
    last_index = len(lines) - 1
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if index == last_index:
                break  # crash-truncated final line
            raise ObsError(f"{path}:{index + 1}: malformed trace record: {error}") from error
        if not isinstance(record, dict):
            raise ObsError(f"{path}:{index + 1}: trace record is not an object")
        records.append(record)
    return records


def merge_trace_parts(tracer, directory: str, remove: bool = True) -> int:
    """Adopt every ``*.jsonl`` part file under ``directory`` into ``tracer``.

    Part files are read in sorted (filename) order so merged traces are
    reproducible for a fixed set of worker pids.  Returns the number of
    records adopted.  When ``remove`` is true, successfully merged part
    files (and the directory, if emptied) are deleted.
    """
    if not os.path.isdir(directory):
        return 0
    merged = 0
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".jsonl"):
            continue
        part_path = os.path.join(directory, name)
        for record in load_trace(part_path):
            tracer.adopt(record)
            merged += 1
        if remove:
            os.unlink(part_path)
    if remove:
        try:
            os.rmdir(directory)
        except OSError:
            pass  # non-part files remain; leave the directory alone
    return merged


__all__ = ["JsonlSink", "RecordingSink", "load_trace", "merge_trace_parts"]
