"""Trace analysis: hot-span tables and structural normalization.

:func:`summarize_trace` aggregates span records by name into the table
``repro trace summarize`` prints: call count, cumulative time,
self-time (cumulative minus the time spent in direct children, computed
per process via the ``seq``/``parent`` links), and p50/p95/max
durations.  Sorting by self-time is what makes the table useful for
picking compiled-kernel candidates: a span that is hot only because of
its children sinks to the bottom.

:func:`normalized_tree` reduces a trace to its deterministic skeleton —
names, nesting, attributes and counters, with durations, pids, tids and
sequence numbers stripped — used by the determinism tests to assert
that two seeded runs produce identical span trees.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple


def span_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The ``kind="span"`` records of a trace, in emission order."""
    return [record for record in records if record.get("kind") == "span"]


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (len(sorted_values) - 1) * (q / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


def summarize_trace(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate spans by name; rows sorted by self-time, descending.

    Each row has ``name``, ``count``, ``total_s``, ``self_s``,
    ``p50_s``, ``p95_s`` and ``max_s``.
    """
    spans = span_records(records)
    # Time spent in direct children, keyed like spans by (pid, seq).
    child_time: Dict[Tuple[int, int], float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is None:
            continue
        key = (int(record.get("pid", 0)), int(parent))
        child_time[key] = child_time.get(key, 0.0) + float(record.get("dur", 0.0))

    by_name: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        name = str(record.get("name", "?"))
        dur = float(record.get("dur", 0.0))
        key = (int(record.get("pid", 0)), int(record.get("seq", -1)))
        self_time = max(0.0, dur - child_time.get(key, 0.0))
        row = by_name.setdefault(
            name, {"name": name, "count": 0, "total_s": 0.0, "self_s": 0.0, "durs": []}
        )
        row["count"] += 1
        row["total_s"] += dur
        row["self_s"] += self_time
        row["durs"].append(dur)

    rows: List[Dict[str, Any]] = []
    for row in by_name.values():
        durs = sorted(row.pop("durs"))
        row["p50_s"] = _percentile(durs, 50.0)
        row["p95_s"] = _percentile(durs, 95.0)
        row["max_s"] = durs[-1] if durs else 0.0
        rows.append(row)
    rows.sort(key=lambda row: (-row["self_s"], row["name"]))
    return rows


def render_summary(rows: List[Dict[str, Any]], limit: int = 30) -> str:
    """Fixed-width hot-span table for terminal output."""
    shown = rows[:limit] if limit else rows
    name_width = max([len(row["name"]) for row in shown] + [len("span")])
    header = (
        f"{'span':<{name_width}}  {'count':>7}  {'self_s':>10}  "
        f"{'total_s':>10}  {'p50_ms':>9}  {'p95_ms':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in shown:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>7}  {row['self_s']:>10.4f}  "
            f"{row['total_s']:>10.4f}  {row['p50_s'] * 1e3:>9.3f}  {row['p95_s'] * 1e3:>9.3f}"
        )
    if limit and len(rows) > limit:
        lines.append(f"... ({len(rows) - limit} more span name(s))")
    return "\n".join(lines)


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def normalized_tree(records: List[Dict[str, Any]]) -> Tuple[Any, ...]:
    """Deterministic skeleton of a trace, comparable across runs.

    Spans reduce to ``(name, attrs, counters, children)`` with children
    normalized recursively; durations, pids, tids, sequence numbers and
    memory samples are dropped.  Roots from all processes are pooled
    and the whole forest is sorted, so the result is invariant to
    worker scheduling and pid assignment — exactly the contract the
    trace-determinism tests assert.
    """
    spans = span_records(records)
    children: Dict[Tuple[int, Any], List[Dict[str, Any]]] = {}
    for record in spans:
        key = (int(record.get("pid", 0)), record.get("parent"))
        children.setdefault(key, []).append(record)

    def normalize(record: Dict[str, Any]) -> Tuple[Any, ...]:
        pid = int(record.get("pid", 0))
        kids = children.get((pid, record.get("seq")), [])
        return (
            str(record.get("name", "?")),
            _freeze(record.get("attrs") or {}),
            _freeze(record.get("counters") or {}),
            tuple(sorted(normalize(kid) for kid in kids)),
        )

    roots: List[Tuple[Any, ...]] = []
    for record in spans:
        if record.get("parent") is None:
            roots.append(normalize(record))
    return tuple(sorted(roots))


__all__ = ["normalized_tree", "render_summary", "span_records", "summarize_trace"]
