"""The ``obs`` bench target: what the tracing layer itself costs.

Registered with the :mod:`repro.linalg.bench` target registry (the
``repro bench obs`` CLI path).  The instrumentation threaded through the
hot paths is only acceptable if it is effectively free when no tracer is
installed and cheap when one is; this target measures both, so the
observability layer is perf-regression-gated like every other subsystem.

Two legs:

``batched``
    The tightest instrumented loop in the repository — batched demand
    evaluation through the compiled backend.  Three timings over the
    identical workload, interleaved round-robin; the gated overhead
    figures are medians of per-round paired ratios (see
    :func:`_paired_overhead_pct`):

    * ``baseline`` — ``compiled.congestions(demands)``, the raw inner
      call below the instrumented wrapper (no ``trace_span`` at all);
    * ``disabled`` — ``evaluator.congestions(demands)`` with **no
      tracer installed**: the production default, one no-op
      ``trace_span`` check per batch;
    * ``enabled`` — the same call with a recording tracer installed:
      the full span lifecycle (clock reads, contextvar swap, record
      assembly) per batch.

``sweep``
    One coarse-grained end-to-end run — the ``smoke`` scenario suite
    executed inline, untraced vs traced (single repetition each; the
    figure is informational, the gated numbers come from the batched
    leg where min-of-reps makes them stable).

Gate fields (asserted by CI against the committed ``BENCH_obs.json``):
``overhead_disabled_pct`` must stay ≈ 0 and ``overhead_enabled_pct``
must stay < 5.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.linalg.bench import (
    BENCH_SCHEMA,
    _workload,
    environment_info,
    register_bench,
)
from repro.linalg.evaluator import build_evaluator
from repro.utils.timing import Stopwatch, timing_entry

from repro.obs.sinks import RecordingSink
from repro.obs.tracer import Tracer, install_tracer, uninstall_tracer

#: Per-scale (rounds, inner evaluations per timed chunk) for the
#: batched leg.  Small scales need many inner evaluations to push each
#: timed chunk well past timer granularity (a single smoke batch is
#: ~1 ms, where per-chunk jitter runs multi-percent).
_OBS_REPS: Dict[str, Tuple[int, int]] = {
    "smoke": (15, 25),
    "small": (11, 5),
    "full": (31, 1),
}


def _interleaved_round_seconds(
    legs: Dict[str, Any], rounds: int, inner: int
) -> Dict[str, List[float]]:
    """Per-leg per-round chunk times, legs timed round-robin.

    Each round times one ``inner``-call chunk of every leg back to back
    before moving on, so slow drift (CPU frequency, co-tenant load) hits
    all legs alike instead of biasing whichever leg ran in the noisier
    window.  The leg order rotates every round — a fixed order would
    systematically tax whichever leg always ran while the clock slowed
    (turbo decay).  Returning the full per-round series lets the caller
    pair chunks *within* a round (see :func:`_paired_overhead_pct`),
    which is what actually survives shared-runner noise.

    Two further defenses against that noise, which is orders of
    magnitude larger than the effect under measurement:

    * chunks are timed with ``time.process_time`` rather than wall
      clock, so hypervisor steal and descheduled windows (hundreds of
      milliseconds on a busy single-vCPU box) do not count against
      whichever leg they happened to land on — the legs are pure CPU;
    * GC is paused during the timed chunks (as :mod:`timeit` does):
      the span's few extra allocations otherwise shift *whole
      collection passes* over the long-lived routing/network graph
      into whichever chunk crosses the threshold, charging
      milliseconds of unrelated work to microseconds of
      instrumentation.
    """
    import gc
    import time

    names = list(legs)
    samples: Dict[str, List[float]] = {name: [] for name in names}
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for round_index in range(rounds):
            offset = round_index % len(names)
            for name in names[offset:] + names[:offset]:
                callable_ = legs[name]
                with Stopwatch(clock=time.process_time) as watch:
                    for _ in range(inner):
                        callable_()
                samples[name].append(watch.elapsed / inner)
    finally:
        if gc_was_enabled:
            gc.enable()
    return samples


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _paired_overhead_pct(samples: Dict[str, List[float]], name: str) -> float:
    """Overhead of leg ``name`` vs ``baseline`` in percent, drift-immune.

    Per-leg aggregates (min or mean over rounds) still disagree by
    ±10% between *identical* legs on a contended box, because the
    machine's speed wanders over the run and each leg's aggregate
    samples a different mix of fast and slow phases.  Pairing instead
    compares each round's chunk against the *same round's* baseline
    chunk — measured within the same few hundred milliseconds, so
    drift cancels — and takes the median ratio over rounds, which
    throws away the rounds where a spike landed inside either chunk.
    """
    ratios = [
        leg / base
        for leg, base in zip(samples[name], samples["baseline"])
        if base > 0
    ]
    if not ratios:
        return 0.0
    return (_median(ratios) - 1.0) * 100.0


def _overhead_pct(seconds: float, baseline: float) -> float:
    """Relative overhead of ``seconds`` vs ``baseline`` in percent."""
    if baseline <= 0:
        return 0.0
    return (seconds / baseline - 1.0) * 100.0


def bench_obs(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Instrumentation overhead: untraced vs no-op-traced vs recording."""
    network, routing, demands = _workload(scale, seed)
    rounds, inner = _OBS_REPS[scale]

    evaluator = build_evaluator(routing, backend="sparse")
    compiled = evaluator.compiled
    tracer = Tracer(sink=RecordingSink(), role="bench")

    def run_baseline():
        compiled.congestions(demands)

    def run_disabled():
        evaluator.congestions(demands)

    def run_enabled():
        install_tracer(tracer)
        try:
            evaluator.congestions(demands)
        finally:
            uninstall_tracer()

    # Warm every code path once before timing (lazy imports, caches).
    for leg in (run_baseline, run_disabled, run_enabled):
        leg()
    samples = _interleaved_round_seconds(
        {"baseline": run_baseline, "disabled": run_disabled, "enabled": run_enabled},
        rounds,
        inner,
    )
    # Reported per-leg times are the min over rounds (best-case
    # throughput); the gated overhead figures come from the paired
    # per-round ratios, which are the drift-immune statistic.
    baseline_seconds = min(samples["baseline"])
    disabled_seconds = min(samples["disabled"])
    enabled_seconds = min(samples["enabled"])
    spans_per_call = 1  # one linalg.batched_evaluate span per batch

    # Sweep leg: coarse spans over a real end-to-end run (inline, so the
    # tracer covers install + every cell in-process).  Single rep each —
    # LP solve jitter dominates, hence informational rather than gated.
    from repro.scenarios import get_suite, run_suite

    import time as _time

    suite = get_suite("smoke").with_overrides(num_snapshots=1)
    run_suite(suite, workers=1, executor="inline")  # warm caches/imports
    with Stopwatch(clock=_time.process_time) as sweep_plain_watch:
        run_suite(suite, workers=1, executor="inline")
    sweep_sink = RecordingSink()
    install_tracer(Tracer(sink=sweep_sink, role="bench"))
    try:
        with Stopwatch(clock=_time.process_time) as sweep_traced_watch:
            run_suite(suite, workers=1, executor="inline")
    finally:
        uninstall_tracer()
    sweep_plain = sweep_plain_watch.elapsed
    sweep_traced = sweep_traced_watch.elapsed
    sweep_spans = sum(1 for record in sweep_sink.records if record.get("kind") == "span")

    batch_size = len(demands)
    return {
        "schema": BENCH_SCHEMA,
        "name": "obs",
        "scale": scale,
        "seed": seed,
        "network": {"name": network.name, "n": network.num_vertices, "m": network.num_edges},
        "workload": {
            "num_demands": batch_size,
            "num_pairs": compiled.num_pairs,
            "num_paths": compiled.num_paths,
            "rounds": rounds,
            "inner_evaluations": inner,
            "representation": compiled.representation,
        },
        "backends": {
            "baseline": {
                "backend": "untraced",
                **timing_entry(baseline_seconds, count=batch_size, rate_key="demands_per_sec"),
            },
            "disabled": {
                "backend": "noop-span",
                **timing_entry(disabled_seconds, count=batch_size, rate_key="demands_per_sec"),
            },
            "enabled": {
                "backend": "recording-span",
                **timing_entry(
                    enabled_seconds,
                    count=batch_size,
                    rate_key="demands_per_sec",
                    spans_per_call=spans_per_call,
                ),
            },
        },
        "overhead_disabled_pct": _paired_overhead_pct(samples, "disabled"),
        "overhead_enabled_pct": _paired_overhead_pct(samples, "enabled"),
        "sweep": {
            "suite": suite.name,
            "clock": "process_time",
            "num_cells": suite.num_cells(),
            "untraced_seconds": sweep_plain,
            "traced_seconds": sweep_traced,
            "overhead_pct": _overhead_pct(sweep_traced, sweep_plain),
            "num_spans": sweep_spans,
        },
        "environment": environment_info(),
    }


# overwrite=True keeps module re-imports (test reloads) idempotent.
register_bench(
    "obs",
    bench_obs,
    "tracing overhead: untraced vs no-op spans vs a recording tracer",
    overwrite=True,
)

__all__ = ["bench_obs"]
