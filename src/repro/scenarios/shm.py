"""Shared-memory array transport for the sweep executor.

The shared executor compiles every topology's routing operators **once**
in the parent, copies the backing arrays into one
:class:`multiprocessing.shared_memory.SharedMemory` segment per
topology, and hands workers only a small picklable *descriptor*
(segment name + per-array offset/shape/dtype).  Workers reconstruct
zero-copy read-only :func:`numpy.frombuffer` views — no recompilation,
no per-worker copies of the operators (the dense numpy-only leg ships
the dense operator the same way).

Lifecycle contract
------------------

* The **parent** owns every segment: it creates them before spawning
  the pool and close+unlinks them in a ``finally`` once the sweep ends,
  so a normally-terminating sweep leaks nothing.
* **Workers** attach by name with :mod:`multiprocessing.resource_tracker`
  registration suppressed — attaching would otherwise register a
  would-be owner, making every worker exit unlink the parent's segment
  (and race the other workers in the shared tracker daemon).  Attached
  handles are kept in a module-level registry so the views stay valid
  for the worker's lifetime.
* Segment names embed the owning pid (``repro_shm_<pid>_<seq>``), so
  debris from a SIGKILLed parent is identifiable:
  :func:`cleanup_stale_segments` removes segments whose owner is dead,
  and :func:`live_segments` lets tests and the bench assert that a
  finished sweep left zero segments behind.
"""

from __future__ import annotations

import itertools
import os
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

#: Name prefix for every segment this module creates.
SEGMENT_PREFIX = "repro_shm_"

#: Where POSIX shared memory appears on Linux (absent elsewhere; the
#: stale-segment helpers degrade to no-ops then).
_SHM_DIR = "/dev/shm"

#: Per-array alignment inside a segment (cache-line friendly).
_ALIGN = 64

_sequence = itertools.count()

#: Worker-side registry: segment name -> attached SharedMemory handle.
#: Keeps the mapped buffer alive as long as any view built from it.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def publish_arrays(
    arrays: Mapping[str, np.ndarray],
) -> Tuple[shared_memory.SharedMemory, Dict[str, Any]]:
    """Copy ``arrays`` into one fresh segment; return ``(segment, descriptor)``.

    The descriptor is a small picklable dict (segment name plus
    per-array layout) suitable for pool initargs; the caller must keep
    the returned segment handle and ``close()`` + ``unlink()`` it when
    the consumers are done.
    """
    entries: Dict[str, Dict[str, Any]] = {}
    offset = 0
    contiguous: Dict[str, np.ndarray] = {}
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        contiguous[name] = array
        entries[name] = {
            "offset": offset,
            "shape": list(array.shape),
            "dtype": array.dtype.str,
        }
        offset = _aligned(offset + array.nbytes)
    segment = shared_memory.SharedMemory(
        create=True,
        size=max(offset, 1),
        name=f"{SEGMENT_PREFIX}{os.getpid()}_{next(_sequence)}",
    )
    for name, array in contiguous.items():
        entry = entries[name]
        view = np.frombuffer(
            segment.buf, dtype=array.dtype, count=array.size, offset=entry["offset"]
        ).reshape(array.shape)
        view[...] = array
    return segment, {"segment": segment.name, "entries": entries}


def attach_arrays(descriptor: Mapping[str, Any]) -> Dict[str, np.ndarray]:
    """Zero-copy read-only views over a published segment (worker side).

    Safe to call repeatedly with the same descriptor: the segment is
    mapped once per process and cached in :data:`_ATTACHED`.
    """
    name = descriptor["segment"]
    segment = _ATTACHED.get(name)
    if segment is None:
        # Attaching would register this process as a would-be owner with
        # the resource tracker, which (a) would unlink the parent's
        # segment at worker exit and (b) races across workers — the
        # tracker daemon is shared, its cache is a set, and the second
        # worker's unregister of the same name raises in the daemon.
        # Suppress registration entirely for the attach: the parent owns
        # the segment and its tracker entry.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _ATTACHED[name] = segment
    arrays: Dict[str, np.ndarray] = {}
    for array_name, entry in descriptor["entries"].items():
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        view = np.frombuffer(
            segment.buf, dtype=dtype, count=count, offset=entry["offset"]
        ).reshape(shape)
        view.flags.writeable = False
        arrays[array_name] = view
    return arrays


def release_parent_segments(segments) -> None:
    """Close + unlink parent-owned segments, ignoring already-gone ones."""
    for segment in segments:
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def _owner_pid(segment_name: str) -> int:
    """Owning pid embedded in a segment name, or -1 if unparsable."""
    remainder = segment_name[len(SEGMENT_PREFIX):]
    pid_text = remainder.split("_", 1)[0]
    try:
        return int(pid_text)
    except ValueError:
        return -1


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def live_segments() -> List[str]:
    """Names of every currently-present ``repro_shm_*`` segment."""
    if not os.path.isdir(_SHM_DIR):
        return []
    return sorted(
        name for name in os.listdir(_SHM_DIR) if name.startswith(SEGMENT_PREFIX)
    )


def cleanup_stale_segments() -> List[str]:
    """Unlink segments whose owning process is dead; return their names.

    The recovery path after a SIGKILLed sweep parent: the kernel keeps
    POSIX shared memory alive past process death, so resume (and the
    test suite's leak finalizer) sweep the debris of previous owners
    while never touching segments of live sweeps.
    """
    removed: List[str] = []
    for name in live_segments():
        if _pid_alive(_owner_pid(name)):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except FileNotFoundError:
            continue
        removed.append(name)
    return removed


__all__ = [
    "SEGMENT_PREFIX",
    "publish_arrays",
    "attach_arrays",
    "release_parent_segments",
    "live_segments",
    "cleanup_stale_segments",
]
