"""Scenario-suite execution: install once per topology, fan cells out.

The runner realizes the SMORE-style sweep loop on top of the
:class:`~repro.engine.engine.RoutingEngine` facade.  Because every
random draw is keyed off ``(suite.seed, stream, index)`` via
:class:`numpy.random.SeedSequence`, every execution mode produces
**bit-identical** artifacts (rows are reassembled in canonical cell
order, never in worker completion order).

Executors
---------

``inline``
    Everything in-process: one engine per topology, built lazily,
    cells evaluated in canonical order.  The ``workers=1`` default.

``shared`` (default for ``workers > 1``)
    The production path.  The parent builds and installs one engine per
    topology **once**, compiles the fixed-ratio operators (when a
    compiled backend is selected) and publishes their arrays through
    ``multiprocessing.shared_memory`` (:mod:`repro.scenarios.shm`);
    workers receive the lean pickled engines via pool initargs, attach
    zero-copy read-only operator views, and drain a **cell-granular**
    work queue (``imap_unordered``, chunk size 1) so stragglers never
    serialize behind big topologies and more workers than topologies
    are fully used.

``rebuild``
    Same cell-granular queue, but every worker rebuilds engines from
    the spec on first touch — what ``shared`` replaces; kept as the
    honest baseline for ``repro bench sweep``.

``shard``
    The legacy one-process-per-topology ``pool.map`` path, kept for
    equivalence testing.

Resumable artifact store
------------------------

With ``artifact_dir=`` (or ``resume=``) every completed cell is
streamed — by the parent, the store's single writer — into an
append-only chunked :class:`~repro.scenarios.store.ArtifactStore`.  A
killed sweep resumes by re-opening the store (validated against the
content hash of ``(suite, backend)``), dropping at most one
crash-truncated trailing record, and evaluating only the missing
cells; finalization re-serializes from store records, so the resumed
artifact is byte-identical to an uninterrupted run's.

Cell semantics
--------------

Per cell, per snapshot, per scheme:

* **healthy cells** route through ``engine.route`` — the per-snapshot
  optimal MCF is solved once and shared across schemes;
* **failure cells** degrade the network (:func:`apply_failure`), rebase
  each scheme's installed candidate paths onto the degraded network, and
  re-optimize only the sending rates — forwarding state is never
  recomputed, which is precisely the semi-oblivious robustness story.
  Fixed-ratio schemes renormalize each pair's surviving path
  distribution; the ``optimal`` scheme re-solves the MCF on the degraded
  network (it is the fair post-failure baseline).  A scheme that loses
  every candidate path for some demanded pair gets infinite congestion
  and a coverage below 1.  Cells whose failure disconnects the network
  report null congestion and keep only coverage.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rate_adaptation import optimal_rates
from repro.demands.demand import Demand
from repro.engine.adapters import FixedRatioRouter, OptimalRouter
from repro.engine.engine import RoutingEngine
from repro.engine.router import RouteResult
from repro.graphs.network import Network, edge_key
from repro.linalg.evaluator import BACKEND_CHOICES
from repro.mcf.lp import min_congestion_lp
from repro.obs import JsonlSink, Tracer, active_tracer, install_tracer, merge_trace_parts, trace_span
from repro.te.failures import apply_failure, rebase_system, rebase_without_network

from repro.scenarios.spec import ScenarioCell, ScenarioSuite
from repro.scenarios.report import SuiteResult

#: SeedSequence stream tags: (suite.seed, _STREAM_*, index) -> generator.
_STREAM_TOPOLOGY = 0
_STREAM_ENGINE = 1
_STREAM_DEMAND = 2
_STREAM_FAILURE = 3


def _derived_rng(seed: int, stream: int, index: int) -> np.random.Generator:
    """The canonical per-(stream, index) generator of a suite."""
    return np.random.default_rng(np.random.SeedSequence([int(seed), stream, index]))


# --------------------------------------------------------------------- #
# Per-scheme evaluation under failure
# --------------------------------------------------------------------- #
def _coverage(surviving_paths: Dict[Tuple, List], demand: Demand) -> float:
    pairs = demand.pairs()
    if not pairs:
        return 1.0
    return sum(1 for pair in pairs if surviving_paths.get(pair)) / len(pairs)


def _disconnected_coverage(router: Any, event, demand: Demand) -> float:
    """Surviving-candidate coverage when the event disconnects the network.

    Congestion is undefined here, but coverage is still derivable from
    the installed forwarding state: candidate paths for system-backed
    routers, split distributions for fixed-ratio routers.  The optimal
    MCF has no installed state, so its coverage is NaN.
    """
    system = getattr(router, "system", None)
    if system is not None:
        return _coverage(rebase_without_network(system, event), demand)
    if isinstance(router, FixedRatioRouter):
        banned = {edge_key(u, v) for u, v in event.failed_edges}
        pairs = demand.pairs()
        if not pairs:
            return 1.0
        covered = 0
        for source, target in pairs:
            if not router.routing.covers(source, target):
                continue
            for path in router.routing.distribution(source, target):
                if all(edge_key(u, v) not in banned for u, v in zip(path, path[1:])):
                    covered += 1
                    break
        return covered / len(pairs)
    return float("nan")


def _route_fixed_ratio_degraded(
    router: FixedRatioRouter,
    demand: Demand,
    degraded: Network,
    event=None,
) -> Tuple[Optional[float], float]:
    """Renormalize surviving split ratios per pair; (congestion, coverage).

    The scheme's own ``router.backend`` decides the path — it already
    encodes the engine-default-vs-spec-pin precedence, so failure cells
    evaluate through exactly the backend the healthy cells used.  With a
    compiled backend the renormalization happens once per failure event
    on the compiled arrays (failed-edge paths masked, probabilities
    rescaled, capacity vector thinned — no recompilation) and every
    snapshot of the cell reuses the rebased operator.
    """
    backend = getattr(router, "backend", "dict")
    if backend != "dict" and event is not None:
        evaluator = router.routing.evaluator(backend).rebased(event)
        coverage = evaluator.coverage(demand)
        if demand.pairs() and coverage < 1.0:
            return None, coverage
        return evaluator.congestion(demand), coverage
    weighted: List[Tuple[Sequence, float]] = []
    pairs = demand.pairs()
    covered = 0
    for source, target in pairs:
        if not router.routing.covers(source, target):
            continue
        distribution = router.routing.distribution(source, target)
        surviving = {
            path: probability
            for path, probability in distribution.items()
            if all(degraded.has_edge(u, v) for u, v in zip(path, path[1:]))
        }
        if not surviving:
            continue
        covered += 1
        total = sum(surviving.values())
        amount = demand.value(source, target)
        for path, probability in surviving.items():
            weighted.append((path, amount * probability / total))
    coverage = covered / len(pairs) if pairs else 1.0
    if pairs and covered < len(pairs):
        return None, coverage
    return degraded.congestion(weighted), coverage


def _route_under_failure(
    router: Any,
    label: str,
    demand: Demand,
    degraded: Network,
    optimum: float,
    event=None,
) -> Tuple[RouteResult, float]:
    """One scheme's post-failure result: re-adapt rates, never re-install."""
    if isinstance(router, OptimalRouter):
        return (
            RouteResult(scheme=label, congestion=optimum, optimal_congestion=optimum, method="mcf"),
            1.0,
        )
    if isinstance(router, FixedRatioRouter):
        congestion, coverage = _route_fixed_ratio_degraded(
            router, demand, degraded, event=event
        )
        result = RouteResult(
            scheme=label,
            congestion=float("inf") if congestion is None else congestion,
            optimal_congestion=optimum,
            method="fixed",
        )
        return result, coverage
    system = getattr(router, "system", None)
    if system is None:
        # Custom router without an inspectable path system: we cannot
        # simulate its failure response; report unsupported explicitly.
        result = RouteResult(
            scheme=label,
            congestion=float("nan"),
            optimal_congestion=optimum,
            method="unsupported-under-failure",
        )
        return result, float("nan")
    survivors = rebase_system(system, degraded)
    pairs = demand.pairs()
    coverage = (
        sum(1 for pair in pairs if survivors.paths(*pair)) / len(pairs) if pairs else 1.0
    )
    if pairs and not survivors.covers(pairs):
        result = RouteResult(
            scheme=label,
            congestion=float("inf"),
            optimal_congestion=optimum,
            method=getattr(router, "method", "lp"),
        )
        return result, coverage
    adaptation = optimal_rates(survivors, demand, method=getattr(router, "method", "lp"))
    result = RouteResult(
        scheme=label,
        congestion=adaptation.congestion,
        optimal_congestion=optimum,
        method=adaptation.method,
    )
    return result, coverage


# --------------------------------------------------------------------- #
# Cell evaluation
# --------------------------------------------------------------------- #
def _evaluate_cell(
    suite: ScenarioSuite,
    cell: ScenarioCell,
    network: Network,
    engine: RoutingEngine,
) -> Dict[str, Any]:
    with trace_span(
        "sweep.cell",
        cell=cell.index,
        key=f"t{cell.topology_index}.d{cell.demand_index}.f{cell.failure_index}",
    ) as span:
        payload = _evaluate_cell_body(suite, cell, network, engine)
        span.add("rows", len(payload["rows"]))
        return payload


def _evaluate_cell_body(
    suite: ScenarioSuite,
    cell: ScenarioCell,
    network: Network,
    engine: RoutingEngine,
) -> Dict[str, Any]:
    topology_spec = suite.topologies[cell.topology_index]
    demand_spec = suite.demands[cell.demand_index]
    failure_spec = suite.failures[cell.failure_index]

    # Demands are seeded per (topology, demand) pair — NOT per cell — so
    # every failure cell replays exactly the traffic of its healthy
    # baseline and ratio differences along the failure axis measure the
    # failure, not demand resampling.  Failure events are per cell.
    demand_stream = cell.topology_index * len(suite.demands) + cell.demand_index
    series = demand_spec.series(
        network, suite.num_snapshots, _derived_rng(suite.seed, _STREAM_DEMAND, demand_stream)
    )
    event = failure_spec.process().sample(
        network, _derived_rng(suite.seed, _STREAM_FAILURE, cell.index)
    )

    payload: Dict[str, Any] = {
        "cell": cell.index,
        "topology": {"index": cell.topology_index, "spec": topology_spec.describe(),
                     "name": network.name, "n": network.num_vertices, "m": network.num_edges},
        "demand": {"index": cell.demand_index, "spec": demand_spec.describe()},
        "failure": {"index": cell.failure_index, "spec": failure_spec.describe(),
                    "event": event.to_dict()},
        "disconnected": False,
        "rows": [],
    }

    degraded = apply_failure(network, event)
    if degraded is None:
        payload["disconnected"] = True
        for snapshot_index, snapshot in enumerate(series):
            for label in engine.labels():
                coverage = _disconnected_coverage(engine[label], event, snapshot)
                row = RouteResult(scheme=label, congestion=float("nan")).to_dict()
                row.update(snapshot=snapshot_index, coverage=coverage)
                payload["rows"].append(row)
        return payload

    healthy = event.is_null()
    for snapshot_index, snapshot in enumerate(series):
        if snapshot.is_empty():
            continue
        if healthy:
            results = engine.route(snapshot)
            for label in engine.labels():
                row = results[label].to_dict()
                row.update(snapshot=snapshot_index, coverage=1.0)
                payload["rows"].append(row)
        else:
            optimum = min_congestion_lp(degraded, snapshot).congestion
            for label in engine.labels():
                result, coverage = _route_under_failure(
                    engine[label], label, snapshot, degraded, optimum, event=event,
                )
                row = result.to_dict()
                row.update(snapshot=snapshot_index, coverage=coverage)
                payload["rows"].append(row)
    return payload


# --------------------------------------------------------------------- #
# Engine construction (shared by every executor)
# --------------------------------------------------------------------- #
def _build_topology_engine(
    suite: ScenarioSuite, topology_index: int, backend: str
) -> RoutingEngine:
    """One installed engine for a topology — identical in every executor.

    Topology construction and scheme installation consume exactly the
    ``(_STREAM_TOPOLOGY, index)`` / ``(_STREAM_ENGINE, index)`` streams,
    so a parent-built engine, a worker-rebuilt engine, and a legacy
    shard engine are interchangeable bit for bit.
    """
    topology_spec = suite.topologies[topology_index]
    with trace_span(
        "sweep.install", topology=topology_index, spec=topology_spec.describe()
    ):
        network = topology_spec.build(
            _derived_rng(suite.seed, _STREAM_TOPOLOGY, topology_index)
        )
        engine = RoutingEngine(
            network,
            list(suite.schemes),
            rng=_derived_rng(suite.seed, _STREAM_ENGINE, topology_index),
            backend=None if backend == "dict" else backend,
        )
        engine.install()
    return engine


# --------------------------------------------------------------------- #
# Test hooks (crash/fault injection for the resume harness)
# --------------------------------------------------------------------- #
def _apply_test_hooks(cell_index: int) -> None:
    """Honor the env-var fault-injection hooks of ``tests/test_sweep_resume``.

    ``REPRO_SWEEP_DELAY_MS`` sleeps before evaluating each cell (so a
    kill test reliably lands mid-sweep); ``REPRO_SWEEP_FAIL_CELL``
    raises inside exactly that cell's evaluation.  Both are inert when
    unset and apply uniformly across executors.
    """
    delay = os.environ.get("REPRO_SWEEP_DELAY_MS")
    if delay:
        time.sleep(float(delay) / 1000.0)
    fail = os.environ.get("REPRO_SWEEP_FAIL_CELL")
    if fail not in (None, "") and int(fail) == cell_index:
        raise RuntimeError(
            f"injected failure in cell {cell_index} (REPRO_SWEEP_FAIL_CELL)"
        )


# --------------------------------------------------------------------- #
# Cell-granular workers (shared + rebuild executors)
# --------------------------------------------------------------------- #
#: Per-process executor state, populated by the pool initializers.
_WORKER: Dict[str, Any] = {}


def _init_worker_tracer(trace_dir: Optional[str]) -> None:
    """Install a per-worker tracer streaming to a pid-named part file.

    Only active when the parent sweep itself is being traced: each
    worker writes ``worker-<pid>.jsonl`` next to the artifact store (or
    in a temp directory), flushed per record so a killed worker loses
    at most its open spans.  The parent merges the parts after the pool
    drains (:func:`repro.obs.merge_trace_parts`).
    """
    if not trace_dir:
        return
    path = os.path.join(trace_dir, f"worker-{os.getpid()}.jsonl")
    install_tracer(Tracer(sink=JsonlSink(path), role="worker"))


def _init_shared_worker(suite_payload, backend, engines, descriptors, trace_dir=None) -> None:
    """Pool initializer: adopt parent-built engines, attach shm operators.

    ``engines`` arrives through initargs pickling — lean, because
    :meth:`Routing.__getstate__` strips evaluator caches — and
    ``descriptors`` maps ``topology_index -> {label: (meta,
    descriptor)}`` for the compiled operators published in shared
    memory.  Attaching rebuilds each :class:`CompiledRouting` as
    zero-copy read-only views and seeds the routing's evaluator cache,
    so workers never recompile.
    """
    from repro.linalg.compiled import CompiledRouting
    from repro.scenarios.shm import attach_arrays

    _init_worker_tracer(trace_dir)
    suite = ScenarioSuite.from_dict(suite_payload)
    for topology_index, per_label in descriptors.items():
        engine = engines[topology_index]
        for label, (meta, descriptor) in per_label.items():
            compiled = CompiledRouting.from_arrays(
                engine.network, meta, attach_arrays(descriptor)
            )
            engine.attach_compiled(label, compiled)
    _WORKER.update(suite=suite, backend=backend, engines=engines)


def _shared_cell_task(cell_index: int) -> Tuple[int, Dict[str, Any], int]:
    """Evaluate one cell against the adopted per-topology engine."""
    suite: ScenarioSuite = _WORKER["suite"]
    _apply_test_hooks(cell_index)
    cell = suite.cell(cell_index)
    engine: RoutingEngine = _WORKER["engines"][cell.topology_index]
    payload = _evaluate_cell(suite, cell, engine.network, engine)
    return cell_index, payload, os.getpid()


def _init_rebuild_worker(suite_payload, backend, trace_dir=None) -> None:
    """Pool initializer for the rebuild baseline: spec only, no shared state."""
    _init_worker_tracer(trace_dir)
    _WORKER.update(
        suite=ScenarioSuite.from_dict(suite_payload), backend=backend, engines={}
    )


def _rebuild_cell_task(cell_index: int) -> Tuple[int, Dict[str, Any], int]:
    """Evaluate one cell, rebuilding the topology's engine on first touch."""
    suite: ScenarioSuite = _WORKER["suite"]
    _apply_test_hooks(cell_index)
    cell = suite.cell(cell_index)
    engines: Dict[int, RoutingEngine] = _WORKER["engines"]
    engine = engines.get(cell.topology_index)
    if engine is None:
        engine = _build_topology_engine(suite, cell.topology_index, _WORKER["backend"])
        engines[cell.topology_index] = engine
    payload = _evaluate_cell(suite, cell, engine.network, engine)
    return cell_index, payload, os.getpid()


# --------------------------------------------------------------------- #
# Legacy topology shards
# --------------------------------------------------------------------- #
def _run_topology_shard(task: Tuple[Dict[str, Any], int, str]) -> List[Dict[str, Any]]:
    """Worker entry point: evaluate every cell of one topology.

    ``task`` is ``(suite.to_dict(), topology_index, backend)`` — plain
    JSON types, so the function is picklable under any multiprocessing
    start method and the worker rebuilds exactly the state the spec
    declares.
    """
    suite_payload, topology_index, backend = task
    suite = ScenarioSuite.from_dict(suite_payload)
    engine = _build_topology_engine(suite, topology_index, backend)
    cells = [cell for cell in suite.cells() if cell.topology_index == topology_index]
    return [_evaluate_cell(suite, cell, engine.network, engine) for cell in cells]


def _run_suite_shard_cells(
    suite: ScenarioSuite, workers: int, backend: str
) -> List[Dict[str, Any]]:
    """The pre-store executor: one ``pool.map`` task per topology."""
    suite_payload = suite.to_dict()
    tasks = [
        (suite_payload, topology_index, backend)
        for topology_index in range(len(suite.topologies))
    ]
    if workers == 1 or len(tasks) == 1:
        shard_results = [_run_topology_shard(task) for task in tasks]
    else:
        pool_size = min(workers, len(tasks))
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=pool_size) as pool:
            shard_results = pool.map(_run_topology_shard, tasks)
    return sorted(
        (cell for shard in shard_results for cell in shard), key=lambda cell: cell["cell"]
    )


# --------------------------------------------------------------------- #
# The sweep entry point
# --------------------------------------------------------------------- #
#: Accepted ``executor=`` values; ``auto`` maps to inline/shared.
EXECUTOR_CHOICES = ("auto", "inline", "shared", "rebuild", "shard")


def _record_completion(store, payloads, index, payload, pid) -> None:
    if store is not None:
        store.record_cell(index, payload, pid=pid)
        # Use the store's normalized copy (the JSON round trip maps
        # tuples to lists, non-finite floats to null) so a streamed run
        # and a resumed run assemble from identical objects.
        payloads[index] = store.payload(index)
    else:
        payloads[index] = payload


def _run_pending_cells(
    suite: ScenarioSuite,
    pending: List[int],
    workers: int,
    backend: str,
    executor: str,
    store,
    payloads: Dict[int, Dict[str, Any]],
) -> None:
    """Evaluate ``pending`` cells through the selected executor."""
    from repro.scenarios.shm import publish_arrays, release_parent_segments

    if executor == "inline":
        engines: Dict[int, RoutingEngine] = {}
        for index in pending:
            _apply_test_hooks(index)
            cell = suite.cell(index)
            engine = engines.get(cell.topology_index)
            if engine is None:
                engine = _build_topology_engine(suite, cell.topology_index, backend)
                engines[cell.topology_index] = engine
            payload = _evaluate_cell(suite, cell, engine.network, engine)
            _record_completion(store, payloads, index, payload, os.getpid())
        return

    # Cell-granular pool executors.  Pool size is capped only by the
    # amount of pending work — NOT by the number of topologies (the old
    # shard executor wasted workers > len(topologies)) and not by
    # os.cpu_count() (oversubscription is the caller's call).
    pool_size = max(1, min(workers, len(pending)))
    context = multiprocessing.get_context("spawn")
    segments: List[Any] = []

    # When the parent is traced, workers stream their spans into
    # pid-named part files (next to the artifact store when one exists)
    # and the parent folds them into its own sink after the pool drains
    # — one coherent trace per sweep, install spans in the parent, cell
    # spans per worker.
    tracer = active_tracer()
    trace_dir: Optional[str] = None
    if tracer is not None:
        if store is not None:
            trace_dir = os.path.join(store.path, "trace-parts")
            os.makedirs(trace_dir, exist_ok=True)
        else:
            import tempfile

            trace_dir = tempfile.mkdtemp(prefix="repro-trace-")
    try:
        if executor == "shared":
            topology_indices = sorted({suite.cell(i).topology_index for i in pending})
            engines = {
                index: _build_topology_engine(suite, index, backend)
                for index in topology_indices
            }
            descriptors: Dict[int, Dict[str, Any]] = {}
            if backend != "dict":
                for topology_index, engine in engines.items():
                    per_label: Dict[str, Any] = {}
                    for label, compiled in engine.export_compiled(backend).items():
                        meta, arrays = compiled.export_arrays()
                        segment, descriptor = publish_arrays(arrays)
                        segments.append(segment)
                        per_label[label] = (meta, descriptor)
                    descriptors[topology_index] = per_label
            initializer = _init_shared_worker
            initargs = (suite.to_dict(), backend, engines, descriptors, trace_dir)
            task = _shared_cell_task
        else:  # rebuild
            initializer = _init_rebuild_worker
            initargs = (suite.to_dict(), backend, trace_dir)
            task = _rebuild_cell_task
        with context.Pool(
            processes=pool_size, initializer=initializer, initargs=initargs
        ) as pool:
            for index, payload, pid in pool.imap_unordered(task, pending, chunksize=1):
                _record_completion(store, payloads, index, payload, pid)
    finally:
        release_parent_segments(segments)
        if tracer is not None and trace_dir is not None:
            merge_trace_parts(tracer, trace_dir, remove=True)


def run_suite(
    suite: ScenarioSuite,
    workers: int = 1,
    backend: str = "dict",
    executor: str = "auto",
    artifact_dir: Optional[str] = None,
    resume: Optional[str] = None,
) -> SuiteResult:
    """Execute every cell of ``suite``; deterministic for any ``workers``.

    The returned :class:`SuiteResult` is identical — bit for bit —
    across worker counts, executors, kills, and resumes.

    ``backend`` selects the evaluation backend for fixed-ratio schemes:
    ``"dict"`` (default) reproduces the reference artifacts bit for bit;
    ``"sparse"``/``"dense"``/``"auto"`` evaluate through the compiled
    linear-algebra backend (numerically equivalent within 1e-9; failure
    cells rebase the compiled operators instead of re-filtering path
    dicts per snapshot).

    ``executor`` picks the execution strategy (see the module docs):
    ``"auto"`` (inline for ``workers=1``, shared otherwise),
    ``"inline"``, ``"shared"`` (compile once in the parent, publish
    operators via shared memory, cell-granular queue), ``"rebuild"``
    (cell-granular, per-worker engine rebuilds — the bench baseline) or
    ``"shard"`` (legacy one-task-per-topology ``pool.map``).

    ``artifact_dir`` streams completed cells into a resumable
    :class:`~repro.scenarios.store.ArtifactStore` at that path;
    ``resume`` re-opens such a store and evaluates only the cells it
    does not already hold.  Both may name the same directory (the usual
    kill-and-resume flow); pointing them at *different* paths is an
    error.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown evaluation backend {backend!r}; available: {list(BACKEND_CHOICES)}"
        )
    if executor not in EXECUTOR_CHOICES:
        raise ValueError(
            f"unknown executor {executor!r}; available: {list(EXECUTOR_CHOICES)}"
        )
    if resume is not None and artifact_dir is not None:
        if os.path.abspath(resume) != os.path.abspath(artifact_dir):
            raise ValueError(
                "resume and artifact_dir point at different stores; pass one "
                "path (or the same path twice)"
            )
    store_path = resume if resume is not None else artifact_dir
    if executor == "auto":
        executor = "inline" if workers == 1 else "shared"
    if executor == "shard":
        if store_path is not None:
            raise ValueError(
                "the legacy 'shard' executor predates the artifact store; use "
                "executor='shared' (or 'inline'/'rebuild') with artifact_dir/resume"
            )
        cells = _run_suite_shard_cells(suite, workers, backend)
        return SuiteResult(suite=suite, cells=cells, backend=_resolved_backend(backend))

    from repro.scenarios.shm import cleanup_stale_segments

    # Debris from a SIGKILLed predecessor (its segments outlive it);
    # never touches segments of live sweeps.
    cleanup_stale_segments()

    store = None
    payloads: Dict[int, Dict[str, Any]] = {}
    try:
        if store_path is not None:
            from repro.scenarios.store import ArtifactStore

            store = ArtifactStore.open_or_create(
                store_path, suite.to_dict(), backend, suite.num_cells()
            )
            payloads.update(store.completed_payloads())
        pending = [i for i in range(suite.num_cells()) if i not in payloads]
        if pending:
            with trace_span(
                "sweep.run", suite=suite.name, executor=executor
            ) as run_span:
                run_span.add("cells", len(pending))
                _run_pending_cells(
                    suite, pending, workers, backend, executor, store, payloads
                )
    finally:
        if store is not None:
            store.close()
    cells = [payloads[index] for index in range(suite.num_cells())]
    return SuiteResult(suite=suite, cells=cells, backend=_resolved_backend(backend))


def _resolved_backend(backend: str) -> str:
    """Record the *resolved* backend ("sparse" resolves to "dense" on
    numpy-only installs), so the artifact attributes what actually ran."""
    if backend == "dict":
        return backend
    from repro.linalg._matrix import resolve_representation

    return resolve_representation(backend)


__all__ = ["run_suite", "EXECUTOR_CHOICES"]
