"""Scenario-suite execution: install once per topology, fan cells out.

The runner realizes the SMORE-style sweep loop on top of the
:class:`~repro.engine.engine.RoutingEngine` facade.  Work is sharded by
*topology*: each shard builds its network, constructs one engine (one
oblivious-routing build, one :class:`CutCache`, one memoized optimal-MCF
solver), installs candidate paths once, and then evaluates every grid
cell of that topology.  Shards are independent, so they run either
inline (``workers=1``) or on a ``multiprocessing`` pool — and because
every random draw is keyed off ``(suite.seed, stream, index)`` via
:class:`numpy.random.SeedSequence`, both modes produce **bit-identical**
artifacts (rows are reassembled in canonical cell order, never in worker
completion order).

Cell semantics
--------------

Per cell, per snapshot, per scheme:

* **healthy cells** route through ``engine.route`` — the per-snapshot
  optimal MCF is solved once and shared across schemes;
* **failure cells** degrade the network (:func:`apply_failure`), rebase
  each scheme's installed candidate paths onto the degraded network, and
  re-optimize only the sending rates — forwarding state is never
  recomputed, which is precisely the semi-oblivious robustness story.
  Fixed-ratio schemes renormalize each pair's surviving path
  distribution; the ``optimal`` scheme re-solves the MCF on the degraded
  network (it is the fair post-failure baseline).  A scheme that loses
  every candidate path for some demanded pair gets infinite congestion
  and a coverage below 1.  Cells whose failure disconnects the network
  report null congestion and keep only coverage.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rate_adaptation import optimal_rates
from repro.demands.demand import Demand
from repro.engine.adapters import FixedRatioRouter, OptimalRouter
from repro.engine.engine import RoutingEngine
from repro.engine.router import RouteResult
from repro.graphs.network import Network, edge_key
from repro.linalg.evaluator import BACKEND_CHOICES
from repro.mcf.lp import min_congestion_lp
from repro.te.failures import apply_failure, rebase_system, rebase_without_network

from repro.scenarios.spec import ScenarioCell, ScenarioSuite
from repro.scenarios.report import SuiteResult

#: SeedSequence stream tags: (suite.seed, _STREAM_*, index) -> generator.
_STREAM_TOPOLOGY = 0
_STREAM_ENGINE = 1
_STREAM_DEMAND = 2
_STREAM_FAILURE = 3


def _derived_rng(seed: int, stream: int, index: int) -> np.random.Generator:
    """The canonical per-(stream, index) generator of a suite."""
    return np.random.default_rng(np.random.SeedSequence([int(seed), stream, index]))


# --------------------------------------------------------------------- #
# Per-scheme evaluation under failure
# --------------------------------------------------------------------- #
def _coverage(surviving_paths: Dict[Tuple, List], demand: Demand) -> float:
    pairs = demand.pairs()
    if not pairs:
        return 1.0
    return sum(1 for pair in pairs if surviving_paths.get(pair)) / len(pairs)


def _disconnected_coverage(router: Any, event, demand: Demand) -> float:
    """Surviving-candidate coverage when the event disconnects the network.

    Congestion is undefined here, but coverage is still derivable from
    the installed forwarding state: candidate paths for system-backed
    routers, split distributions for fixed-ratio routers.  The optimal
    MCF has no installed state, so its coverage is NaN.
    """
    system = getattr(router, "system", None)
    if system is not None:
        return _coverage(rebase_without_network(system, event), demand)
    if isinstance(router, FixedRatioRouter):
        banned = {edge_key(u, v) for u, v in event.failed_edges}
        pairs = demand.pairs()
        if not pairs:
            return 1.0
        covered = 0
        for source, target in pairs:
            if not router.routing.covers(source, target):
                continue
            for path in router.routing.distribution(source, target):
                if all(edge_key(u, v) not in banned for u, v in zip(path, path[1:])):
                    covered += 1
                    break
        return covered / len(pairs)
    return float("nan")


def _route_fixed_ratio_degraded(
    router: FixedRatioRouter,
    demand: Demand,
    degraded: Network,
    event=None,
) -> Tuple[Optional[float], float]:
    """Renormalize surviving split ratios per pair; (congestion, coverage).

    The scheme's own ``router.backend`` decides the path — it already
    encodes the engine-default-vs-spec-pin precedence, so failure cells
    evaluate through exactly the backend the healthy cells used.  With a
    compiled backend the renormalization happens once per failure event
    on the compiled arrays (failed-edge paths masked, probabilities
    rescaled, capacity vector thinned — no recompilation) and every
    snapshot of the cell reuses the rebased operator.
    """
    backend = getattr(router, "backend", "dict")
    if backend != "dict" and event is not None:
        evaluator = router.routing.evaluator(backend).rebased(event)
        coverage = evaluator.coverage(demand)
        if demand.pairs() and coverage < 1.0:
            return None, coverage
        return evaluator.congestion(demand), coverage
    weighted: List[Tuple[Sequence, float]] = []
    pairs = demand.pairs()
    covered = 0
    for source, target in pairs:
        if not router.routing.covers(source, target):
            continue
        distribution = router.routing.distribution(source, target)
        surviving = {
            path: probability
            for path, probability in distribution.items()
            if all(degraded.has_edge(u, v) for u, v in zip(path, path[1:]))
        }
        if not surviving:
            continue
        covered += 1
        total = sum(surviving.values())
        amount = demand.value(source, target)
        for path, probability in surviving.items():
            weighted.append((path, amount * probability / total))
    coverage = covered / len(pairs) if pairs else 1.0
    if pairs and covered < len(pairs):
        return None, coverage
    return degraded.congestion(weighted), coverage


def _route_under_failure(
    router: Any,
    label: str,
    demand: Demand,
    degraded: Network,
    optimum: float,
    event=None,
) -> Tuple[RouteResult, float]:
    """One scheme's post-failure result: re-adapt rates, never re-install."""
    if isinstance(router, OptimalRouter):
        return (
            RouteResult(scheme=label, congestion=optimum, optimal_congestion=optimum, method="mcf"),
            1.0,
        )
    if isinstance(router, FixedRatioRouter):
        congestion, coverage = _route_fixed_ratio_degraded(
            router, demand, degraded, event=event
        )
        result = RouteResult(
            scheme=label,
            congestion=float("inf") if congestion is None else congestion,
            optimal_congestion=optimum,
            method="fixed",
        )
        return result, coverage
    system = getattr(router, "system", None)
    if system is None:
        # Custom router without an inspectable path system: we cannot
        # simulate its failure response; report unsupported explicitly.
        result = RouteResult(
            scheme=label,
            congestion=float("nan"),
            optimal_congestion=optimum,
            method="unsupported-under-failure",
        )
        return result, float("nan")
    survivors = rebase_system(system, degraded)
    pairs = demand.pairs()
    coverage = (
        sum(1 for pair in pairs if survivors.paths(*pair)) / len(pairs) if pairs else 1.0
    )
    if pairs and not survivors.covers(pairs):
        result = RouteResult(
            scheme=label,
            congestion=float("inf"),
            optimal_congestion=optimum,
            method=getattr(router, "method", "lp"),
        )
        return result, coverage
    adaptation = optimal_rates(survivors, demand, method=getattr(router, "method", "lp"))
    result = RouteResult(
        scheme=label,
        congestion=adaptation.congestion,
        optimal_congestion=optimum,
        method=adaptation.method,
    )
    return result, coverage


# --------------------------------------------------------------------- #
# Cell evaluation
# --------------------------------------------------------------------- #
def _evaluate_cell(
    suite: ScenarioSuite,
    cell: ScenarioCell,
    network: Network,
    engine: RoutingEngine,
) -> Dict[str, Any]:
    topology_spec = suite.topologies[cell.topology_index]
    demand_spec = suite.demands[cell.demand_index]
    failure_spec = suite.failures[cell.failure_index]

    # Demands are seeded per (topology, demand) pair — NOT per cell — so
    # every failure cell replays exactly the traffic of its healthy
    # baseline and ratio differences along the failure axis measure the
    # failure, not demand resampling.  Failure events are per cell.
    demand_stream = cell.topology_index * len(suite.demands) + cell.demand_index
    series = demand_spec.series(
        network, suite.num_snapshots, _derived_rng(suite.seed, _STREAM_DEMAND, demand_stream)
    )
    event = failure_spec.process().sample(
        network, _derived_rng(suite.seed, _STREAM_FAILURE, cell.index)
    )

    payload: Dict[str, Any] = {
        "cell": cell.index,
        "topology": {"index": cell.topology_index, "spec": topology_spec.describe(),
                     "name": network.name, "n": network.num_vertices, "m": network.num_edges},
        "demand": {"index": cell.demand_index, "spec": demand_spec.describe()},
        "failure": {"index": cell.failure_index, "spec": failure_spec.describe(),
                    "event": event.to_dict()},
        "disconnected": False,
        "rows": [],
    }

    degraded = apply_failure(network, event)
    if degraded is None:
        payload["disconnected"] = True
        for snapshot_index, snapshot in enumerate(series):
            for label in engine.labels():
                coverage = _disconnected_coverage(engine[label], event, snapshot)
                row = RouteResult(scheme=label, congestion=float("nan")).to_dict()
                row.update(snapshot=snapshot_index, coverage=coverage)
                payload["rows"].append(row)
        return payload

    healthy = event.is_null()
    for snapshot_index, snapshot in enumerate(series):
        if snapshot.is_empty():
            continue
        if healthy:
            results = engine.route(snapshot)
            for label in engine.labels():
                row = results[label].to_dict()
                row.update(snapshot=snapshot_index, coverage=1.0)
                payload["rows"].append(row)
        else:
            optimum = min_congestion_lp(degraded, snapshot).congestion
            for label in engine.labels():
                result, coverage = _route_under_failure(
                    engine[label], label, snapshot, degraded, optimum, event=event,
                )
                row = result.to_dict()
                row.update(snapshot=snapshot_index, coverage=coverage)
                payload["rows"].append(row)
    return payload


# --------------------------------------------------------------------- #
# Topology shards
# --------------------------------------------------------------------- #
def _run_topology_shard(task: Tuple[Dict[str, Any], int, str]) -> List[Dict[str, Any]]:
    """Worker entry point: evaluate every cell of one topology.

    ``task`` is ``(suite.to_dict(), topology_index, backend)`` — plain
    JSON types, so the function is picklable under any multiprocessing
    start method and the worker rebuilds exactly the state the spec
    declares.
    """
    suite_payload, topology_index, backend = task
    suite = ScenarioSuite.from_dict(suite_payload)
    topology_spec = suite.topologies[topology_index]
    network = topology_spec.build(_derived_rng(suite.seed, _STREAM_TOPOLOGY, topology_index))
    engine = RoutingEngine(
        network,
        list(suite.schemes),
        rng=_derived_rng(suite.seed, _STREAM_ENGINE, topology_index),
        backend=None if backend == "dict" else backend,
    )
    engine.install()
    cells = [cell for cell in suite.cells() if cell.topology_index == topology_index]
    return [_evaluate_cell(suite, cell, network, engine) for cell in cells]


def run_suite(
    suite: ScenarioSuite,
    workers: int = 1,
    backend: str = "dict",
) -> SuiteResult:
    """Execute every cell of ``suite``; deterministic for any ``workers``.

    ``workers=1`` runs the topology shards inline; ``workers>1`` fans
    them out on a spawn-context ``multiprocessing`` pool (capped at the
    number of shards).  The returned :class:`SuiteResult` is identical —
    bit for bit — in both modes.

    ``backend`` selects the evaluation backend for fixed-ratio schemes:
    ``"dict"`` (default) reproduces the reference artifacts bit for bit;
    ``"sparse"``/``"dense"``/``"auto"`` evaluate through the compiled
    linear-algebra backend (numerically equivalent within 1e-9; failure
    cells rebase the compiled operators instead of re-filtering path
    dicts per snapshot).
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown evaluation backend {backend!r}; available: {list(BACKEND_CHOICES)}"
        )
    suite_payload = suite.to_dict()
    tasks = [
        (suite_payload, topology_index, backend)
        for topology_index in range(len(suite.topologies))
    ]
    if workers == 1 or len(tasks) == 1:
        shard_results = [_run_topology_shard(task) for task in tasks]
    else:
        pool_size = min(workers, len(tasks), os.cpu_count() or 1)
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=pool_size) as pool:
            shard_results = pool.map(_run_topology_shard, tasks)
    cells = sorted(
        (cell for shard in shard_results for cell in shard), key=lambda cell: cell["cell"]
    )
    # Record the *resolved* backend ("sparse" resolves to "dense" on
    # numpy-only installs), so the artifact attributes what actually ran.
    if backend != "dict":
        from repro.linalg._matrix import resolve_representation

        backend = resolve_representation(backend)
    return SuiteResult(suite=suite, cells=cells, backend=backend)


__all__ = ["run_suite"]
