"""Declarative scenario-suite specifications.

A :class:`ScenarioSuite` is the full cross product of three declarative
axes — topology generators, demand models, failure processes — plus the
scheme line-up every cell is routed through.  Suites are *data*: every
spec is JSON round-trippable (``to_dict``/``from_dict``), picklable, and
carries no live network or router objects, so the runner can ship suites
to worker processes and rebuild identical state from seeds alone.

Determinism contract
--------------------

Everything random about a suite derives from ``suite.seed`` through
:class:`numpy.random.SeedSequence` with fixed stream tags (see
:mod:`repro.scenarios.runner`):

* topology construction and scheme installation are seeded per topology
  *index*,
* demand generation is seeded per (topology, demand) *pair* — every
  failure cell replays exactly its healthy baseline's traffic, and
* failure sampling is seeded per cell *index*,

so the artifact a suite produces is a pure function of the suite spec —
independent of worker count, scheduling order, or execution mode.

Example::

    suite = ScenarioSuite(
        name="demo",
        topologies=[TopologySpec("hypercube", 3), TopologySpec("torus", 3)],
        demands=[DemandSpec("gravity"), DemandSpec("permutation")],
        failures=[FailureSpec("none"), FailureSpec("k-edge", params=(("k", 1),))],
        schemes=["ksp(k=2)", "spf"],
        num_snapshots=2,
        seed=0,
    )
    assert len(suite.cells()) == 2 * 2 * 2
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.demands.traffic_matrix import (
    TrafficMatrixSeries,
    constant_series,
    diurnal_gravity_series,
    gravity_series,
    permutation_series,
)
from repro.exceptions import ReproError
from repro.graphs.network import Network
from repro.te.failures import FailureProcess, build_failure_process
from repro.utils.rng import RngLike, ensure_rng


class ScenarioError(ReproError):
    """Raised for malformed scenario specs or unknown suite/axis names."""


# --------------------------------------------------------------------- #
# Axis registries
# --------------------------------------------------------------------- #
#: Modules registering extension axis kinds on import (the ingestion
#: layer adds ``zoo``/``sndlib`` topologies and the fitted demand
#: models).  Loaded lazily through :func:`_ensure_extension_axes` so the
#: spec layer never imports upward eagerly — same pattern as the bench
#: target registry in :mod:`repro.linalg.bench`.
_EXTENSION_AXIS_MODULES = (
    "repro.net.scenario_axes",
    "repro.telemetry.scenario_axes",
    "repro.forwarding.scenario_axes",
    "repro.synth.scenario_axes",
)
_extension_axes_loaded = False


def _ensure_extension_axes() -> None:
    global _extension_axes_loaded
    if _extension_axes_loaded:
        return
    import importlib

    # Mark loaded only after success: a failing import surfaces its real
    # error on every call instead of a misleading "unknown kind" later.
    # (Extension modules register with overwrite=True, so a retry after
    # a partial failure is idempotent.)
    for module in _EXTENSION_AXIS_MODULES:
        importlib.import_module(module)
    _extension_axes_loaded = True


@dataclass(frozen=True)
class TopologyKind:
    """A registered topology-axis kind.

    ``builder(size, params, rng)`` constructs the network;
    ``validate(size, params)``, when given, runs at *spec-parse* time so
    a typo'd catalog name or parameter fails before any runner/worker
    starts (with the available choices in the message).
    """

    builder: Callable[[Optional[int], Dict[str, Any], Any], Network]
    description: str = ""
    validate: Optional[Callable[[Optional[int], Dict[str, Any]], None]] = None


_TOPOLOGY_KINDS: Dict[str, TopologyKind] = {}


def register_topology_kind(
    kind: str,
    builder: Callable[[Optional[int], Dict[str, Any], Any], Network],
    description: str = "",
    validate: Optional[Callable[[Optional[int], Dict[str, Any]], None]] = None,
    overwrite: bool = False,
) -> None:
    """Register a topology-axis kind (``builder(size, params, rng)``)."""
    if kind in _TOPOLOGY_KINDS and not overwrite:
        raise ScenarioError(
            f"topology kind {kind!r} is already registered (pass overwrite=True)"
        )
    _TOPOLOGY_KINDS[kind] = TopologyKind(builder, description, validate)


def available_topology_kinds() -> List[str]:
    """Canonical names of the registered topology kinds."""
    _ensure_extension_axes()
    return sorted(_TOPOLOGY_KINDS)


def _register_builtin_topologies() -> None:
    from repro.graphs import topologies
    from repro.graphs.generators import waxman_isp

    register_topology_kind(
        "hypercube",
        lambda size, params, rng: topologies.hypercube(size if size is not None else 3),
        "K-dimensional hypercube",
    )
    register_topology_kind(
        "torus",
        lambda size, params, rng: topologies.torus_2d(
            size if size is not None else 3, params.get("cols")
        ),
        "2-D torus (wrap-around grid)",
    )
    register_topology_kind(
        "grid",
        lambda size, params, rng: topologies.grid_2d(
            size if size is not None else 3, params.get("cols")
        ),
        "2-D grid",
    )
    register_topology_kind(
        "clique",
        lambda size, params, rng: topologies.complete_graph(size if size is not None else 5),
        "complete graph",
    )
    register_topology_kind(
        "fat-tree",
        lambda size, params, rng: topologies.fat_tree(size if size is not None else 4),
        "k-ary fat tree",
    )
    register_topology_kind(
        "expander",
        lambda size, params, rng: topologies.random_regular_expander(
            size if size is not None else 10, degree=int(params.get("degree", 4)), rng=rng
        ),
        "random regular expander",
    )
    register_topology_kind(
        "waxman",
        lambda size, params, rng: waxman_isp(size if size is not None else 12, rng=rng),
        "random Waxman ISP-like graph",
    )


_register_builtin_topologies()


# ``"kind"`` or ``"kind(positional, key=value, …)"`` axis shorthand.
_KIND_STRING_RE = re.compile(r"^\s*([\w.-]+)\s*(?:\((.*)\))?\s*$")


def _coerce_scalar(text: str) -> Any:
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def _parse_kind_string(text: str, what: str) -> Tuple[str, List[Any], Dict[str, Any]]:
    """Parse ``"zoo(abilene)"`` / ``"torus(4, cols=5)"`` shorthand."""
    match = _KIND_STRING_RE.match(text)
    if not match or (match.group(2) is None and "(" in text):
        raise ScenarioError(f"cannot parse {what} spec string {text!r}")
    kind = match.group(1)
    positional: List[Any] = []
    params: Dict[str, Any] = {}
    arguments = match.group(2)
    if arguments and arguments.strip():
        for token in arguments.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                params[key.strip()] = _coerce_scalar(value.strip())
            else:
                positional.append(_coerce_scalar(token))
    return kind, positional, params


@dataclass(frozen=True)
class TopologySpec:
    """One topology-axis entry: a generator kind, a size, extra parameters.

    Random generators (``expander``, ``waxman``) consume the generator
    passed to :meth:`build`; deterministic kinds ignore it, so rebuilding
    with an equally seeded generator always yields the same network.
    """

    kind: str
    size: Optional[int] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _ensure_extension_axes()
        if self.kind not in _TOPOLOGY_KINDS:
            raise ScenarioError(
                f"unknown topology kind {self.kind!r}; available: {sorted(_TOPOLOGY_KINDS)}"
            )
        object.__setattr__(self, "params", tuple(self.params))
        validate = _TOPOLOGY_KINDS[self.kind].validate
        if validate is not None:
            validate(self.size, dict(self.params))

    def build(self, rng: RngLike = None) -> Network:
        _ensure_extension_axes()
        return _TOPOLOGY_KINDS[self.kind].builder(
            self.size, dict(self.params), ensure_rng(rng)
        )

    def describe(self) -> str:
        params = dict(self.params)
        # Catalog kinds read as zoo(abilene): the name renders bare.
        bits = [str(params.pop("name"))] if "name" in params else []
        if self.size is not None:
            bits.append(str(self.size))
        bits += [f"{key}={value}" for key, value in sorted(params.items())]
        return f"{self.kind}({', '.join(bits)})" if bits else self.kind

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.size is not None:
            payload["size"] = self.size
        payload.update(dict(self.params))
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TopologySpec":
        mapping = dict(payload)
        kind = mapping.pop("kind", None)
        if not kind:
            raise ScenarioError(f"topology spec needs a 'kind' key: {payload!r}")
        size = mapping.pop("size", None)
        return cls(kind=kind, size=size, params=tuple(sorted(mapping.items())))

    @classmethod
    def from_string(cls, text: str) -> "TopologySpec":
        """Parse axis shorthand: ``"torus(4)"``, ``"zoo(abilene)"``.

        An integer positional argument is the size; a non-integer one is
        the catalog ``name`` parameter.
        """
        kind, positional, params = _parse_kind_string(text, "topology")
        size = None
        for argument in positional:
            if isinstance(argument, int) and size is None:
                size = argument
            elif isinstance(argument, str) and "name" not in params:
                params["name"] = argument
            else:
                # A second integer (e.g. "grid(3, 5)") must not silently
                # become a name parameter the builder ignores.
                raise ScenarioError(
                    f"cannot interpret positional argument {argument!r} in "
                    f"topology spec {text!r}; use key=value (e.g. cols=5)"
                )
        return cls(kind=kind, size=size, params=tuple(sorted(params.items())))


# --------------------------------------------------------------------- #
# Demand axis
# --------------------------------------------------------------------- #
def _series_gravity(network: Network, snapshots: int, rng, params: Dict[str, Any]) -> TrafficMatrixSeries:
    return gravity_series(network, snapshots, total=float(params.get("total", 10.0)), rng=rng)


def _series_diurnal(network: Network, snapshots: int, rng, params: Dict[str, Any]) -> TrafficMatrixSeries:
    return diurnal_gravity_series(
        network,
        num_snapshots=snapshots,
        base_total=float(params.get("total", 10.0)),
        diurnal_amplitude=float(params.get("amplitude", 0.5)),
        rng=rng,
    )


def _series_permutation(network: Network, snapshots: int, rng, params: Dict[str, Any]) -> TrafficMatrixSeries:
    return permutation_series(network, snapshots, rng=rng)


def _series_bisection(network: Network, snapshots: int, rng, params: Dict[str, Any]) -> TrafficMatrixSeries:
    from repro.demands.generators import bisection_demand

    return TrafficMatrixSeries(
        snapshots=[bisection_demand(network, rng=rng) for _ in range(snapshots)]
    )


def _series_uniform(network: Network, snapshots: int, rng, params: Dict[str, Any]) -> TrafficMatrixSeries:
    from repro.demands.generators import uniform_demand

    demand = uniform_demand(network, total=float(params.get("total", 10.0)))
    return constant_series(demand, snapshots)


def _series_adversarial(network: Network, snapshots: int, rng, params: Dict[str, Any]) -> TrafficMatrixSeries:
    from repro.demands.adversarial import spf_stress_permutation

    demand = spf_stress_permutation(
        network, num_trials=int(params.get("num_trials", 8)), rng=rng
    )
    return constant_series(demand, snapshots)


def _series_from_stream(kind: str) -> Callable[..., TrafficMatrixSeries]:
    """A demand-axis factory backed by a registered demand stream.

    The stream axis of the grid: each cell materializes ``snapshots``
    steps of the named :mod:`repro.stream` source into an ordinary
    traffic-matrix series (the runner's batch loop consumes snapshots;
    deltas matter only on the streaming path).  Randomness is consumed
    from the runner-passed generator, so stream-backed cells obey the
    same replay-the-healthy-baseline seeding as every other demand kind.
    """

    def factory(
        network: Network, snapshots: int, rng, params: Dict[str, Any]
    ) -> TrafficMatrixSeries:
        from repro.stream.sources import build_stream

        return build_stream(kind, network, num_steps=snapshots, seed=rng, **params).as_series()

    return factory


_DEMAND_KINDS: Dict[str, Callable[..., TrafficMatrixSeries]] = {
    "gravity": _series_gravity,
    "diurnal": _series_diurnal,
    "permutation": _series_permutation,
    "bisection": _series_bisection,
    "uniform": _series_uniform,
    "adversarial": _series_adversarial,
    # The stream axis: time-correlated demand sequences from repro.stream.
    "random-walk": _series_from_stream("random-walk"),
    "flash-crowd": _series_from_stream("flash-crowd"),
    "adversarial-shift": _series_from_stream("adversarial-shift"),
}


def register_demand_kind(
    kind: str,
    factory: Callable[..., TrafficMatrixSeries],
    overwrite: bool = False,
) -> None:
    """Register a demand-axis kind (``factory(network, snapshots, rng, params)``)."""
    if kind in _DEMAND_KINDS and not overwrite:
        raise ScenarioError(
            f"demand kind {kind!r} is already registered (pass overwrite=True)"
        )
    _DEMAND_KINDS[kind] = factory


@dataclass(frozen=True)
class DemandSpec:
    """One demand-axis entry: a demand model plus its parameters.

    :meth:`series` consumes randomness only from the passed generator;
    the ``uniform`` model is fully deterministic and ``adversarial`` is
    the worst-of-k SPF stress permutation held constant over snapshots.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _ensure_extension_axes()
        if self.kind not in _DEMAND_KINDS:
            raise ScenarioError(
                f"unknown demand kind {self.kind!r}; available: {sorted(_DEMAND_KINDS)}"
            )
        object.__setattr__(self, "params", tuple(self.params))

    def series(self, network: Network, num_snapshots: int, rng: RngLike = None) -> TrafficMatrixSeries:
        return _DEMAND_KINDS[self.kind](network, num_snapshots, ensure_rng(rng), dict(self.params))

    def describe(self) -> str:
        rendered = ", ".join(f"{key}={value}" for key, value in self.params)
        return f"{self.kind}({rendered})" if rendered else self.kind

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DemandSpec":
        mapping = dict(payload)
        kind = mapping.pop("kind", None)
        if not kind:
            raise ScenarioError(f"demand spec needs a 'kind' key: {payload!r}")
        return cls(kind=kind, params=tuple(sorted(mapping.items())))

    @classmethod
    def from_string(cls, text: str) -> "DemandSpec":
        """Parse axis shorthand: ``"gravity"``, ``"max-entropy(total=20)"``."""
        kind, positional, params = _parse_kind_string(text, "demand")
        if positional:
            raise ScenarioError(
                f"demand spec {text!r} takes key=value arguments only"
            )
        return cls(kind=kind, params=tuple(sorted(params.items())))


def available_demand_kinds() -> List[str]:
    """Canonical names of the registered demand models."""
    _ensure_extension_axes()
    return sorted(_DEMAND_KINDS)


# --------------------------------------------------------------------- #
# Failure axis
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FailureSpec:
    """One failure-axis entry, resolved through :func:`build_failure_process`."""

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        self.process()  # validate kind and parameters eagerly

    def process(self) -> FailureProcess:
        return build_failure_process(self.kind, **dict(self.params))

    def describe(self) -> str:
        return self.process().describe()

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FailureSpec":
        mapping = dict(payload)
        kind = mapping.pop("kind", None)
        if not kind:
            raise ScenarioError(f"failure spec needs a 'kind' key: {payload!r}")
        return cls(kind=kind, params=tuple(sorted(mapping.items())))


def _coerce(spec: Any, cls: type, what: str) -> Any:
    if isinstance(spec, cls):
        return spec
    if isinstance(spec, Mapping):
        return cls.from_dict(spec)
    if isinstance(spec, str):
        # Axis shorthand where supported: "zoo(abilene)", "torus(4)".
        if hasattr(cls, "from_string"):
            return cls.from_string(spec)
        return cls.from_dict({"kind": spec})
    raise ScenarioError(f"cannot interpret {spec!r} as a {what} spec")


# --------------------------------------------------------------------- #
# The suite: a declarative grid
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioCell:
    """One grid cell: indices into the suite's three axes.

    ``index`` is the flat position in topology-major / demand-middle /
    failure-minor order — the canonical cell id used for seeding and for
    ordering artifact rows.
    """

    index: int
    topology_index: int
    demand_index: int
    failure_index: int


@dataclass(frozen=True)
class ScenarioSuite:
    """A declarative failure × demand × topology sweep.

    Parameters
    ----------
    name / description:
        Identification, recorded in the artifact manifest.
    topologies / demands / failures:
        The three grid axes (specs, dicts, or bare kind strings).
    schemes:
        Scheme spec strings routed in every cell; normalized through the
        registry parser at construction (so typos fail fast and the
        canonical strings are what workers rebuild from).
    num_snapshots:
        Demand snapshots evaluated per cell.
    seed:
        Master seed; see the module docstring for the derivation rules.
    """

    name: str
    topologies: Tuple[TopologySpec, ...] = ()
    demands: Tuple[DemandSpec, ...] = ()
    failures: Tuple[FailureSpec, ...] = (FailureSpec("none"),)
    schemes: Tuple[str, ...] = ("semi-oblivious(racke, alpha=4)", "spf")
    num_snapshots: int = 1
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        from repro.engine.registry import parse_spec

        object.__setattr__(
            self,
            "topologies",
            tuple(_coerce(spec, TopologySpec, "topology") for spec in self.topologies),
        )
        object.__setattr__(
            self, "demands", tuple(_coerce(spec, DemandSpec, "demand") for spec in self.demands)
        )
        object.__setattr__(
            self, "failures", tuple(_coerce(spec, FailureSpec, "failure") for spec in self.failures)
        )
        if not self.topologies or not self.demands or not self.failures:
            raise ScenarioError("a scenario suite needs at least one entry per axis")
        if not self.schemes:
            raise ScenarioError("a scenario suite needs at least one scheme")
        object.__setattr__(
            self, "schemes", tuple(parse_spec(spec).spec_string() for spec in self.schemes)
        )
        if self.num_snapshots < 1:
            raise ScenarioError("num_snapshots must be at least 1")

    # ------------------------------------------------------------------ #
    # Grid enumeration
    # ------------------------------------------------------------------ #
    def num_cells(self) -> int:
        return len(self.topologies) * len(self.demands) * len(self.failures)

    def cells(self) -> List[ScenarioCell]:
        """Every grid cell in canonical (topology-major) order."""
        cells: List[ScenarioCell] = []
        index = 0
        for t in range(len(self.topologies)):
            for d in range(len(self.demands)):
                for f in range(len(self.failures)):
                    cells.append(ScenarioCell(index, t, d, f))
                    index += 1
        return cells

    def cell(self, index: int) -> ScenarioCell:
        per_topology = len(self.demands) * len(self.failures)
        t, rest = divmod(index, per_topology)
        d, f = divmod(rest, len(self.failures))
        if not (0 <= t < len(self.topologies)):
            raise ScenarioError(f"cell index {index} out of range for {self.num_cells()} cells")
        return ScenarioCell(index, t, d, f)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "num_snapshots": self.num_snapshots,
            "schemes": list(self.schemes),
            "topologies": [spec.to_dict() for spec in self.topologies],
            "demands": [spec.to_dict() for spec in self.demands],
            "failures": [spec.to_dict() for spec in self.failures],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSuite":
        return cls(
            name=str(payload.get("name", "suite")),
            description=str(payload.get("description", "")),
            seed=int(payload.get("seed", 0)),
            num_snapshots=int(payload.get("num_snapshots", 1)),
            schemes=tuple(payload.get("schemes", ())),
            topologies=tuple(payload.get("topologies", ())),
            demands=tuple(payload.get("demands", ())),
            failures=tuple(payload.get("failures", ())),
        )

    def with_overrides(
        self, seed: Optional[int] = None, num_snapshots: Optional[int] = None
    ) -> "ScenarioSuite":
        """A copy with the master seed and/or snapshot count replaced."""
        payload = self.to_dict()
        if seed is not None:
            payload["seed"] = seed
        if num_snapshots is not None:
            payload["num_snapshots"] = num_snapshots
        return ScenarioSuite.from_dict(payload)

    def describe(self) -> str:
        lines = [
            f"suite {self.name!r}: {len(self.topologies)} topologies x "
            f"{len(self.demands)} demands x {len(self.failures)} failures = "
            f"{self.num_cells()} cells, {self.num_snapshots} snapshot(s) each, seed={self.seed}",
        ]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append("  topologies: " + ", ".join(spec.describe() for spec in self.topologies))
        lines.append("  demands:    " + ", ".join(spec.describe() for spec in self.demands))
        lines.append("  failures:   " + ", ".join(spec.describe() for spec in self.failures))
        lines.append("  schemes:    " + ", ".join(self.schemes))
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Built-in suites
# --------------------------------------------------------------------- #
def _suite_smoke() -> ScenarioSuite:
    return ScenarioSuite(
        name="smoke",
        description="tiny 3x2x2 grid used by the test suite and CI (seconds, not minutes)",
        topologies=[
            TopologySpec("hypercube", 3),
            TopologySpec("torus", 3),
            TopologySpec("expander", 8),
        ],
        demands=[DemandSpec("gravity"), DemandSpec("permutation")],
        failures=[FailureSpec("none"), FailureSpec("k-edge", params=(("k", 1),))],
        schemes=("semi-oblivious(racke, alpha=4)", "ksp(k=3)"),
        num_snapshots=1,
        seed=0,
    )


def _suite_failures() -> ScenarioSuite:
    return ScenarioSuite(
        name="failures",
        description="failure-model sweep: independent cuts, regional/SRLG outages, brown-outs",
        topologies=[
            TopologySpec("hypercube", 4),
            TopologySpec("waxman", 12),
            TopologySpec("fat-tree", 4),
        ],
        demands=[DemandSpec("gravity"), DemandSpec("adversarial")],
        failures=[
            FailureSpec("none"),
            FailureSpec("k-edge", params=(("k", 1),)),
            FailureSpec("k-edge", params=(("k", 2),)),
            FailureSpec("regional", params=(("radius", 1),)),
            FailureSpec("degrade", params=(("fraction", 0.25), ("factor", 0.5))),
        ],
        schemes=("semi-oblivious(racke, alpha=4)", "ksp(k=4)", "spf"),
        num_snapshots=2,
        seed=0,
    )


def _suite_diurnal() -> ScenarioSuite:
    return ScenarioSuite(
        name="diurnal",
        description="SMORE-style install-once/re-optimize-per-matrix loop over diurnal series",
        topologies=[TopologySpec("waxman", 14), TopologySpec("expander", 12)],
        demands=[DemandSpec("diurnal"), DemandSpec("gravity"), DemandSpec("bisection")],
        failures=[FailureSpec("none"), FailureSpec("k-edge", params=(("k", 1),))],
        schemes=(
            "semi-oblivious(racke, alpha=4)",
            "oblivious(racke)",
            "ksp(k=4)",
            "spf",
        ),
        num_snapshots=6,
        seed=0,
    )


def _suite_streaming() -> ScenarioSuite:
    return ScenarioSuite(
        name="streaming",
        description="stream axis: time-correlated demand sequences "
        "(random-walk drift, flash crowds, adversarial shifts)",
        topologies=[TopologySpec("torus", 4), TopologySpec("hypercube", 3)],
        demands=[
            DemandSpec("random-walk", params=(("num_pairs", 24),)),
            DemandSpec("flash-crowd", params=(("num_pairs", 24),)),
            DemandSpec("adversarial-shift", params=(("shift_every", 2),)),
        ],
        failures=[FailureSpec("none"), FailureSpec("k-edge", params=(("k", 1),))],
        schemes=("semi-oblivious(racke, alpha=4)", "spf"),
        num_snapshots=4,
        seed=0,
    )


def _suite_real_world() -> ScenarioSuite:
    return ScenarioSuite(
        name="real-world",
        description="bundled real topologies (ingestion catalog) x fitted demand "
        "models (gravity, max-entropy from link-load marginals) x failures",
        topologies=["zoo(abilene)", "sndlib(polska)", "sndlib(nobel-germany)"],
        demands=[DemandSpec("fitted-gravity"), DemandSpec("max-entropy")],
        failures=[FailureSpec("none"), FailureSpec("k-edge", params=(("k", 1),))],
        schemes=("semi-oblivious(racke, alpha=4)", "ksp(k=4)", "spf"),
        num_snapshots=2,
        seed=0,
    )


def _suite_odme() -> ScenarioSuite:
    return ScenarioSuite(
        name="odme",
        description="telemetry axis: true fitted demand vs its ODME estimate "
        "from noisy partial-coverage link-load observations",
        topologies=["zoo(abilene)", "sndlib(polska)"],
        demands=[
            DemandSpec("fitted-gravity"),
            DemandSpec(
                "estimated",
                params=(
                    ("base", "fitted-gravity"),
                    ("coverage", 0.75),
                    ("noise", 0.05),
                ),
            ),
        ],
        failures=[FailureSpec("none"), FailureSpec("k-edge", params=(("k", 1),))],
        schemes=("semi-oblivious(racke, alpha=4)", "spf"),
        num_snapshots=2,
        seed=0,
    )


_BUILTIN_SUITES: Dict[str, Callable[[], ScenarioSuite]] = {
    "smoke": _suite_smoke,
    "failures": _suite_failures,
    "diurnal": _suite_diurnal,
    "streaming": _suite_streaming,
    "real-world": _suite_real_world,
    "odme": _suite_odme,
}


def available_suites() -> List[str]:
    """Names of the built-in scenario suites (including extension axes)."""
    _ensure_extension_axes()
    return sorted(_BUILTIN_SUITES)


def get_suite(name: str) -> ScenarioSuite:
    """Look up a built-in suite by name."""
    _ensure_extension_axes()
    if name not in _BUILTIN_SUITES:
        raise ScenarioError(f"unknown suite {name!r}; available: {available_suites()}")
    return _BUILTIN_SUITES[name]()


def register_suite(name: str, factory: Callable[[], ScenarioSuite], overwrite: bool = False) -> None:
    """Register a custom named suite (mainly for downstream projects and tests)."""
    if name in _BUILTIN_SUITES and not overwrite:
        raise ScenarioError(f"suite name {name!r} is already registered (pass overwrite=True)")
    _BUILTIN_SUITES[name] = factory


__all__ = [
    "ScenarioError",
    "TopologyKind",
    "TopologySpec",
    "DemandSpec",
    "FailureSpec",
    "ScenarioCell",
    "ScenarioSuite",
    "available_demand_kinds",
    "available_suites",
    "available_topology_kinds",
    "get_suite",
    "register_demand_kind",
    "register_suite",
    "register_topology_kind",
]
