"""The ``sweep`` bench target: shared-memory executor vs rebuild baseline.

Registered with the :mod:`repro.linalg.bench` target registry (the
``repro bench sweep`` CLI path).  The bench runs one install-heavy
scenario suite twice through :func:`repro.scenarios.runner.run_suite`
with identical worker counts:

* ``rebuild`` — the honest baseline the shared executor replaces: a
  cell-granular work queue whose workers rebuild and re-install every
  topology's engine on first touch, so ``W`` workers pay up to ``W``
  oblivious-routing constructions per topology;
* ``shared`` — the production path: the parent installs each engine
  once, ships it lean through pool initargs, and publishes the compiled
  fixed-ratio operators through ``multiprocessing.shared_memory``
  (zero-copy read-only views in the workers).

The suite is deliberately construction-dominated: hop-constrained
oblivious routing (the paper's central object) with a deep tree
ensemble makes installation expensive, while single-snapshot
``permutation`` demands keep the per-cell LP evaluations cheap — the
regime real catalog sweeps live in once topologies stop being toys.
Every failure axis has at least as many cells per topology as workers,
so the rebuild baseline genuinely touches each topology from (almost)
every worker.

Two correctness gates ride along in the payload: ``artifacts_identical``
records that both executors serialized bit-identical suite artifacts,
and ``leaked_segments`` counts ``repro_shm_*`` segments still alive
after both runs (must be zero — the parent unlinks on exit).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.linalg.bench import BENCH_SCHEMA, environment_info, register_bench
from repro.utils.timing import Stopwatch, timing_entry

from repro.scenarios.runner import _STREAM_TOPOLOGY, _derived_rng, run_suite
from repro.scenarios.shm import cleanup_stale_segments, live_segments
from repro.scenarios.spec import (
    DemandSpec,
    FailureSpec,
    ScenarioSuite,
    TopologySpec,
)

#: Per-scale suite shape: topology axis, hop-constrained ensemble depth,
#: failure axis length, and pool size.  Failure cells per topology stay
#: >= workers so every rebuild worker pays installs for every topology.
_SWEEP_SCALES: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "topologies": (("torus", 4), ("hypercube", 3)),
        "hop_bound": 6,
        "num_trees": 4,
        "num_failures": 2,
        "workers": 2,
    },
    "small": {
        "topologies": (("torus", 5), ("hypercube", 4)),
        "hop_bound": 8,
        "num_trees": 16,
        "num_failures": 4,
        "workers": 2,
    },
    "full": {
        "topologies": (("torus", 6), ("torus", 5), ("hypercube", 4)),
        "hop_bound": 10,
        "num_trees": 64,
        "num_failures": 4,
        "workers": 4,
    },
}


def sweep_bench_suite(scale: str = "small", seed: int = 0) -> ScenarioSuite:
    """The install-heavy suite a given bench scale executes."""
    if scale not in _SWEEP_SCALES:
        raise ValueError(
            f"unknown bench scale {scale!r}; available: {sorted(_SWEEP_SCALES)}"
        )
    config = _SWEEP_SCALES[scale]
    failures = [FailureSpec("none")]
    failures += [
        FailureSpec("k-edge", params=(("k", k),))
        for k in range(1, int(config["num_failures"]))
    ]
    return ScenarioSuite(
        name=f"bench-sweep-{scale}",
        description=(
            "install-dominated executor benchmark: hop-constrained oblivious "
            f"routing ({config['num_trees']} trees) across "
            f"{len(config['topologies'])} topologies"
        ),
        topologies=[TopologySpec(kind, size) for kind, size in config["topologies"]],
        demands=[DemandSpec("permutation")],
        failures=failures,
        schemes=(
            "oblivious(hop-constrained, hop_bound="
            f"{config['hop_bound']}, num_trees={config['num_trees']})",
            "spf",
        ),
        num_snapshots=1,
        seed=seed,
    )


def bench_sweep(scale: str = "small", seed: int = 0) -> Dict[str, Any]:
    """Time the shared-memory executor against the rebuild-per-worker baseline."""
    config = _SWEEP_SCALES[scale]
    suite = sweep_bench_suite(scale, seed)
    workers = int(config["workers"])

    networks = [
        spec.build(_derived_rng(suite.seed, _STREAM_TOPOLOGY, index))
        for index, spec in enumerate(suite.topologies)
    ]

    cleanup_stale_segments()
    with Stopwatch() as rebuild_watch:
        rebuild_result = run_suite(
            suite, workers=workers, backend="auto", executor="rebuild"
        )
    with Stopwatch() as shared_watch:
        shared_result = run_suite(
            suite, workers=workers, backend="auto", executor="shared"
        )
    leaked = live_segments()

    num_cells = suite.num_cells()
    rebuild_seconds = rebuild_watch.elapsed
    shared_seconds = shared_watch.elapsed
    return {
        "schema": BENCH_SCHEMA,
        "name": "sweep",
        "scale": scale,
        "seed": seed,
        "network": {
            "name": "+".join(network.name for network in networks),
            "n": sum(network.num_vertices for network in networks),
            "m": sum(network.num_edges for network in networks),
        },
        "workload": {
            "num_topologies": len(suite.topologies),
            "num_cells": num_cells,
            "num_snapshots": suite.num_snapshots,
            "workers": workers,
            "schemes": list(suite.schemes),
            "backend": shared_result.backend,
        },
        "backends": {
            "rebuild": {
                "backend": "rebuild-per-worker",
                **timing_entry(rebuild_seconds, count=num_cells, rate_key="cells_per_sec"),
            },
            "shared": {
                "backend": "shared-memory",
                **timing_entry(shared_seconds, count=num_cells, rate_key="cells_per_sec"),
            },
        },
        "speedup_shared_over_rebuild": (
            rebuild_seconds / shared_seconds if shared_seconds > 0 else None
        ),
        "artifacts_identical": rebuild_result.to_json() == shared_result.to_json(),
        "leaked_segments": len(leaked),
        "environment": environment_info(),
    }


register_bench(
    "sweep",
    bench_sweep,
    "sweep executors: shared-memory operators vs rebuild-per-worker engines",
)

__all__ = ["bench_sweep", "sweep_bench_suite"]
