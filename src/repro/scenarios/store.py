"""Resumable on-disk artifact store for scenario sweeps.

An :class:`ArtifactStore` is an append-only directory the sweep runner
streams per-cell results into, so a killed 10k-cell sweep resumes
instead of rerunning:

``manifest.json``
    Written atomically (temp file + ``os.replace``) when the store is
    created.  Records the store schema version, the suite manifest, the
    requested backend, the cell count, and — the resume key — a SHA-256
    content hash of ``(suite.to_dict(), backend)``.  Opening a store
    whose hash does not match the suite/backend being resumed raises a
    typed :class:`~repro.exceptions.ArtifactError` instead of silently
    mixing artifacts from different sweeps.

``cells-00000.jsonl``, ``cells-00001.jsonl``, …
    Chunked completion records, one JSON object per line:
    ``{"cell": <index>, "pid": <worker pid>, "payload": {...}}``.  Each
    record is written as a single ``write()`` + ``flush()``, so the only
    damage a ``SIGKILL`` can inflict is a truncated *final* line of the
    *last* chunk — which the store detects on open, truncates away, and
    re-evaluates (one cell of lost work, never a corrupt artifact).  A
    short or unparsable line anywhere else is genuine corruption and
    raises :class:`~repro.exceptions.ArtifactError`.

Records are serialized through :func:`repro.utils.serialization.dumps`
— exactly the writer the final ``SuiteResult`` JSON uses — so payloads
round-tripping through the store (non-finite floats to ``null``,
tuples to lists) re-serialize byte-identically to the direct in-memory
path, preserving the bit-identical-for-any-worker-count guarantee
across kills and resumes.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Mapping, Optional

from repro.exceptions import ArtifactError
from repro.utils.serialization import dumps as _json_dumps

#: Store schema version, bumped on any incompatible layout change.
STORE_VERSION = 1

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Completion records per chunk file before rolling over.
DEFAULT_CHUNK_LINES = 512

_CHUNK_PREFIX = "cells-"
_CHUNK_SUFFIX = ".jsonl"


def suite_hash(suite_payload: Mapping[str, Any], backend: str) -> str:
    """SHA-256 content hash keying a store to one ``(suite, backend)``.

    Computed over the sorted-key canonical JSON of the suite manifest
    plus the *requested* backend string, so any change to the grid, the
    schemes, seeds, snapshot counts, or the evaluation backend produces
    a different store identity.
    """
    canonical = json.dumps(
        {"suite": suite_payload, "backend": backend}, sort_keys=True, default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _chunk_name(index: int) -> str:
    return f"{_CHUNK_PREFIX}{index:05d}{_CHUNK_SUFFIX}"


def _chunk_index(name: str) -> int:
    return int(name[len(_CHUNK_PREFIX):-len(_CHUNK_SUFFIX)])


class ArtifactStore:
    """Append-only, chunked, resumable per-cell result store (see module doc).

    Use :meth:`open_or_create`; the constructor is internal plumbing.
    The store is **single-writer**: the sweep parent records completions
    (workers only compute), which is what makes flush-per-line crash
    consistency sufficient.
    """

    def __init__(self, path: str, manifest: Dict[str, Any]) -> None:
        self.path = path
        self.manifest = manifest
        self._records: Dict[int, Dict[str, Any]] = {}
        self._pids: Dict[int, Optional[int]] = {}
        self._handle = None
        self._current_chunk = 0
        self._current_lines = 0
        self._load_chunks()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def open_or_create(
        cls,
        path: str,
        suite_payload: Mapping[str, Any],
        backend: str,
        num_cells: int,
        chunk_lines: int = DEFAULT_CHUNK_LINES,
    ) -> "ArtifactStore":
        """Open the store at ``path``, creating it when absent.

        An existing store must carry the exact suite hash of
        ``(suite_payload, backend)`` — resuming a different sweep into
        it raises :class:`ArtifactError`.
        """
        manifest_path = os.path.join(path, MANIFEST_NAME)
        expected = suite_hash(suite_payload, backend)
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                try:
                    manifest = json.load(handle)
                except json.JSONDecodeError as error:
                    raise ArtifactError(
                        f"store manifest {manifest_path} is not valid JSON: {error}"
                    ) from error
            if manifest.get("artifact") != "sweep-store":
                raise ArtifactError(
                    f"{manifest_path} is not a sweep artifact store manifest"
                )
            if manifest.get("version") != STORE_VERSION:
                raise ArtifactError(
                    f"store {path} has schema version {manifest.get('version')!r}; "
                    f"this build reads version {STORE_VERSION}"
                )
            found = manifest.get("suite_hash")
            if found != expected:
                raise ArtifactError(
                    f"store {path} belongs to a different sweep: its suite hash is "
                    f"{found}, the resuming suite/backend hashes to {expected}"
                )
            return cls(path, manifest)
        os.makedirs(path, exist_ok=True)
        manifest = {
            "artifact": "sweep-store",
            "version": STORE_VERSION,
            "suite_hash": expected,
            "backend": str(backend),
            "num_cells": int(num_cells),
            "chunk_lines": int(chunk_lines),
            "suite": json.loads(_json_dumps(dict(suite_payload), indent=None)),
        }
        temp_path = manifest_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(_json_dumps(manifest))
        os.replace(temp_path, manifest_path)  # atomic: never a half manifest
        return cls(path, manifest)

    @classmethod
    def open_existing(cls, path: str) -> "ArtifactStore":
        """Open a store without a suite to validate against (inspection)."""
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise ArtifactError(f"no sweep artifact store at {path} (missing manifest)")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as error:
                raise ArtifactError(
                    f"store manifest {manifest_path} is not valid JSON: {error}"
                ) from error
        return cls(path, manifest)

    # ------------------------------------------------------------------ #
    # Chunk recovery
    # ------------------------------------------------------------------ #
    def _chunk_files(self) -> List[str]:
        names = [
            name
            for name in os.listdir(self.path)
            if name.startswith(_CHUNK_PREFIX) and name.endswith(_CHUNK_SUFFIX)
        ]
        return sorted(names, key=_chunk_index)

    def _load_chunks(self) -> None:
        chunks = self._chunk_files()
        for position, name in enumerate(chunks):
            chunk_path = os.path.join(self.path, name)
            is_last = position == len(chunks) - 1
            lines = 0
            with open(chunk_path, "rb") as handle:
                data = handle.read()
            offset = 0
            while offset < len(data):
                newline = data.find(b"\n", offset)
                complete = newline >= 0
                raw = data[offset: newline if complete else len(data)]
                record = None
                if complete:
                    try:
                        record = json.loads(raw.decode("utf-8"))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        record = None
                if record is None:
                    at_end = (newline if complete else len(data)) >= len(data) - 1
                    if is_last and at_end:
                        # The signature of a killed writer: drop the
                        # partial final line so appends start clean.
                        with open(chunk_path, "r+b") as handle:
                            handle.truncate(offset)
                        break
                    raise ArtifactError(
                        f"corrupt record in {chunk_path} at byte {offset}: not a "
                        "crash-truncated final line, refusing to resume"
                    )
                self._ingest(record, chunk_path, offset)
                lines += 1
                offset = newline + 1
            if is_last:
                self._current_chunk = _chunk_index(name)
                self._current_lines = lines
        if not chunks:
            self._current_chunk = 0
            self._current_lines = 0

    def _ingest(self, record: Mapping[str, Any], chunk_path: str, offset: int) -> None:
        try:
            index = int(record["cell"])
            payload = record["payload"]
        except (KeyError, TypeError, ValueError) as error:
            raise ArtifactError(
                f"malformed completion record in {chunk_path} at byte {offset}: {error}"
            ) from error
        if index in self._records:
            raise ArtifactError(
                f"duplicate completion record for cell {index} in {chunk_path}"
            )
        num_cells = self.manifest.get("num_cells")
        if num_cells is not None and not (0 <= index < int(num_cells)):
            raise ArtifactError(
                f"completion record for cell {index} outside the suite's "
                f"{num_cells} cells in {chunk_path}"
            )
        self._records[index] = payload
        pid = record.get("pid")
        self._pids[index] = int(pid) if pid is not None else None

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        return int(self.manifest.get("num_cells", 0))

    def completed_indices(self) -> List[int]:
        """Indices of cells with a completion record, ascending."""
        return sorted(self._records)

    def completed_payloads(self) -> Dict[int, Dict[str, Any]]:
        """``cell index -> payload`` for every completed cell (a copy)."""
        return dict(self._records)

    def payload(self, index: int) -> Dict[str, Any]:
        """The recorded payload of one completed cell."""
        try:
            return self._records[index]
        except KeyError as error:
            raise ArtifactError(f"cell {index} has no completion record") from error

    def completed_pids(self) -> Dict[int, Optional[int]]:
        """``cell index -> recording worker pid`` (a copy)."""
        return dict(self._pids)

    def is_complete(self) -> bool:
        return len(self._records) == self.num_cells

    def __contains__(self, index: int) -> bool:
        return index in self._records

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def record_cell(
        self, index: int, payload: Mapping[str, Any], pid: Optional[int] = None
    ) -> None:
        """Append one completion record (single write + flush; duplicates raise)."""
        if index in self._records:
            raise ArtifactError(f"cell {index} already has a completion record")
        if not (0 <= index < self.num_cells):
            raise ArtifactError(
                f"cell index {index} outside the suite's {self.num_cells} cells"
            )
        chunk_lines = int(self.manifest.get("chunk_lines", DEFAULT_CHUNK_LINES))
        if self._handle is not None and self._current_lines >= chunk_lines:
            self._handle.close()
            self._handle = None
            self._current_chunk += 1
            self._current_lines = 0
        if self._handle is None:
            chunk_path = os.path.join(self.path, _chunk_name(self._current_chunk))
            self._handle = open(chunk_path, "ab")
        record = {"cell": int(index), "pid": pid, "payload": payload}
        line = _json_dumps(record, indent=None) + "\n"
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()
        self._current_lines += 1
        # Keep the in-memory view identical to what a re-open would read:
        # the JSON round trip normalizes tuples to lists and non-finite
        # floats to null, exactly like the final artifact serialization.
        self._records[index] = json.loads(line)["payload"]
        self._pids[index] = int(pid) if pid is not None else None

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ArtifactStore(path={self.path!r}, completed={len(self._records)}/"
            f"{self.num_cells})"
        )


__all__ = [
    "ArtifactStore",
    "suite_hash",
    "STORE_VERSION",
    "MANIFEST_NAME",
    "DEFAULT_CHUNK_LINES",
]
