"""Scenario artifacts: the JSON result of a suite run and its table views.

A :class:`SuiteResult` bundles the suite manifest with the per-cell rows
the runner produced.  ``SuiteResult.from_dict(json.loads(result.to_json()))``
rebuilds an equivalent result, and :meth:`SuiteResult.to_experiment_result`
hands the rows to the experiment harness's :class:`Table` layer so
scenario sweeps render exactly like the E1–E12 experiments (and land in
the same paper-vs-measured workflow EXPERIMENTS.md records).

One serialization caveat, inherited from strict JSON: non-finite floats
become ``null`` in the artifact (``worst_ratio = inf`` reads back as
``None``).  The boolean ``covered`` column therefore carries the "a
demanded pair lost every candidate path" signal losslessly: a row with
``covered = false`` had at least one snapshot with infinite congestion
(or a disconnected network), regardless of how its ratios serialized.

Aggregation conventions: per (cell, scheme) the summary keeps the mean
ratio over snapshots (infinite ratios excluded), the worst ratio, the
minimum coverage, and ``covered``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.utils.serialization import dumps as _json_dumps

from repro.scenarios.spec import ScenarioSuite

#: Artifact schema version, bumped on any incompatible layout change.
ARTIFACT_VERSION = 1


@dataclass
class SuiteResult:
    """Outcome of one scenario-suite run: manifest plus per-cell rows.

    ``backend`` records which evaluation backend produced the rows
    (``dict`` is the bit-exact reference; compiled backends agree within
    1e-9 but differ in float summation order), so an artifact is
    attributable even when two runs of the same manifest are
    byte-different.
    """

    suite: ScenarioSuite
    cells: List[Dict[str, Any]] = field(default_factory=list)
    backend: str = "dict"

    # ------------------------------------------------------------------ #
    # Serialization (the JSON artifact)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "artifact": "scenario-suite",
            "version": ARTIFACT_VERSION,
            "backend": self.backend,
            "suite": self.suite.to_dict(),
            "cells": [dict(cell) for cell in self.cells],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Strict-JSON artifact (NaN/inf map to null)."""
        return _json_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SuiteResult":
        return cls(
            suite=ScenarioSuite.from_dict(payload.get("suite", {})),
            cells=[dict(cell) for cell in payload.get("cells", ())],
            backend=str(payload.get("backend", "dict")),
        )

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def summary_rows(self) -> List[Dict[str, Any]]:
        """One row per (cell, scheme): the grid view of the sweep."""
        rows: List[Dict[str, Any]] = []
        for cell in self.cells:
            per_scheme: Dict[str, Dict[str, Any]] = {}
            for row in cell.get("rows", ()):
                bucket = per_scheme.setdefault(
                    row["scheme"], {"ratios": [], "coverages": [], "snapshots": 0}
                )
                bucket["snapshots"] += 1
                ratio = row.get("ratio")
                if ratio is not None:
                    bucket["ratios"].append(float(ratio))
                coverage = row.get("coverage")
                if coverage is not None and not _is_nan(coverage):
                    bucket["coverages"].append(float(coverage))
            for scheme, bucket in per_scheme.items():
                finite = [r for r in bucket["ratios"] if math.isfinite(r)]
                worst = max(bucket["ratios"], default=None)
                disconnected = bool(cell.get("disconnected", False))
                min_coverage = min(bucket["coverages"], default=None)
                covered = (
                    not disconnected
                    and min_coverage is not None
                    and min_coverage >= 1.0 - 1e-12
                )
                rows.append(
                    {
                        "cell": cell["cell"],
                        "topology": cell["topology"]["spec"],
                        "demand": cell["demand"]["spec"],
                        "failure": cell["failure"]["spec"],
                        "scheme": scheme,
                        "snapshots": bucket["snapshots"],
                        "mean_ratio": sum(finite) / len(finite) if finite else None,
                        "worst_ratio": worst,
                        "min_coverage": min_coverage,
                        "covered": covered,
                        "disconnected": disconnected,
                    }
                )
        return rows

    def scheme_summary(self) -> List[Dict[str, Any]]:
        """One row per scheme aggregated over the whole grid."""
        grid_rows = self.summary_rows()
        buckets: Dict[str, Dict[str, List[float]]] = {}
        order: List[str] = []
        for row in grid_rows:
            scheme = row["scheme"]
            if scheme not in buckets:
                buckets[scheme] = {"ratios": [], "coverages": [], "cells": []}
                order.append(scheme)
            buckets[scheme]["cells"].append(row["cell"])
            if row["mean_ratio"] is not None:
                buckets[scheme]["ratios"].append(row["mean_ratio"])
            if row["min_coverage"] is not None:
                buckets[scheme]["coverages"].append(row["min_coverage"])
        summary = []
        for scheme in order:
            ratios = buckets[scheme]["ratios"]
            coverages = buckets[scheme]["coverages"]
            summary.append(
                {
                    "scheme": scheme,
                    "cells": len(buckets[scheme]["cells"]),
                    "mean_ratio": sum(ratios) / len(ratios) if ratios else None,
                    "worst_mean_ratio": max(ratios, default=None),
                    "min_coverage": min(coverages, default=None),
                }
            )
        return summary

    # ------------------------------------------------------------------ #
    # Harness bridge
    # ------------------------------------------------------------------ #
    def to_experiment_result(self):
        """Render through the experiment harness (tables + notes)."""
        from repro.experiments.harness import experiment_result_from_scenario

        return experiment_result_from_scenario(self.to_dict())

    def render(self) -> str:
        """Plain-text table rendering via the harness ``Table`` layer."""
        return self.to_experiment_result().render()

    def __repr__(self) -> str:
        return f"SuiteResult(suite={self.suite.name!r}, cells={len(self.cells)})"


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and math.isnan(value)


__all__ = ["SuiteResult", "ARTIFACT_VERSION"]
