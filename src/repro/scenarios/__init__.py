"""Scenario sweeps: declarative failure × demand × topology grids.

The production-scale counterpart of the one-at-a-time experiments: a
:class:`ScenarioSuite` declares a grid of topology generators, demand
models and failure processes; :func:`run_suite` executes every cell
through a shared :class:`~repro.engine.engine.RoutingEngine` (one
oblivious-routing construction and one min-cut cache per topology,
candidate paths installed once) with deterministic per-cell seeds, and
emits a JSON artifact consumable by the experiment harness::

    from repro.scenarios import get_suite, run_suite

    result = run_suite(get_suite("smoke"), workers=2)
    print(result.render())          # harness Table view
    artifact = result.to_json()     # bit-identical for any worker count
"""

from repro.scenarios.report import ARTIFACT_VERSION, SuiteResult
from repro.scenarios.runner import EXECUTOR_CHOICES, run_suite
from repro.scenarios.store import ArtifactStore, suite_hash
from repro.scenarios.spec import (
    DemandSpec,
    FailureSpec,
    ScenarioCell,
    ScenarioError,
    ScenarioSuite,
    TopologyKind,
    TopologySpec,
    available_demand_kinds,
    available_suites,
    available_topology_kinds,
    get_suite,
    register_demand_kind,
    register_suite,
    register_topology_kind,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "EXECUTOR_CHOICES",
    "SuiteResult",
    "run_suite",
    "suite_hash",
    "DemandSpec",
    "FailureSpec",
    "ScenarioCell",
    "ScenarioError",
    "ScenarioSuite",
    "TopologyKind",
    "TopologySpec",
    "available_demand_kinds",
    "available_suites",
    "available_topology_kinds",
    "get_suite",
    "register_demand_kind",
    "register_suite",
    "register_topology_kind",
]
