"""Electrical-flow oblivious routing.

Route the unit (s, t)-demand along the electrical flow of the network
with conductances equal to edge capacities.  Electrical flows spread
traffic across many parallel routes and are a standard oblivious routing
heuristic (they are provably competitive on expanders and are the
``l_2``-optimal oblivious routing in general).

The electrical flow is a fractional flow, not a path distribution, so the
builder decomposes it into paths: orienting each edge in the direction of
decreasing potential yields a DAG, and iteratively peeling off
maximum-bottleneck source→target paths terminates after at most ``m``
iterations.  The resulting path weights form the distribution
``R(s, t)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import RoutingError
from repro.graphs.network import Network, Path, Vertex
from repro.oblivious.base import ObliviousRoutingBuilder

_FLOW_TOL = 1e-9


class ElectricalFlowRouting(ObliviousRoutingBuilder):
    """Oblivious routing along electrical flows (capacities as conductances).

    Parameters
    ----------
    network:
        Underlying network.
    min_path_weight:
        Paths carrying less than this fraction of the unit flow are
        dropped (and the remainder renormalized) to keep supports small.
    """

    name = "electrical-flow"

    def __init__(self, network: Network, min_path_weight: float = 1e-4) -> None:
        super().__init__(network)
        self._min_path_weight = min_path_weight
        self._laplacian_inverse = self._pseudo_inverse_laplacian()

    def _pseudo_inverse_laplacian(self) -> np.ndarray:
        n = self.network.num_vertices
        laplacian = np.zeros((n, n), dtype=float)
        for u, v in self.network.edges:
            conductance = self.network.capacity(u, v)
            i, j = self.network.vertex_index(u), self.network.vertex_index(v)
            laplacian[i, i] += conductance
            laplacian[j, j] += conductance
            laplacian[i, j] -= conductance
            laplacian[j, i] -= conductance
        return np.linalg.pinv(laplacian)

    # ------------------------------------------------------------------ #
    def _potentials(self, source: Vertex, target: Vertex) -> np.ndarray:
        n = self.network.num_vertices
        injection = np.zeros(n)
        injection[self.network.vertex_index(source)] = 1.0
        injection[self.network.vertex_index(target)] = -1.0
        return self._laplacian_inverse @ injection

    def _edge_flows(self, source: Vertex, target: Vertex) -> Dict[Tuple[Vertex, Vertex], float]:
        """Directed flow on each edge (oriented from higher to lower potential)."""
        potentials = self._potentials(source, target)
        flows: Dict[Tuple[Vertex, Vertex], float] = {}
        for u, v in self.network.edges:
            conductance = self.network.capacity(u, v)
            drop = potentials[self.network.vertex_index(u)] - potentials[self.network.vertex_index(v)]
            flow = conductance * drop
            if flow > _FLOW_TOL:
                flows[(u, v)] = flow
            elif flow < -_FLOW_TOL:
                flows[(v, u)] = -flow
        return flows

    def distribution_for(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        flows = self._edge_flows(source, target)
        decomposition = decompose_flow(flows, source, target)
        if not decomposition:
            raise RoutingError(f"electrical flow decomposition failed for {(source, target)!r}")
        total = sum(weight for _, weight in decomposition)
        distribution: Dict[Path, float] = {}
        for path, weight in decomposition:
            fraction = weight / total
            if fraction >= self._min_path_weight:
                distribution[path] = distribution.get(path, 0.0) + fraction
        if not distribution:
            # All paths were below the pruning threshold; keep the heaviest.
            path, weight = max(decomposition, key=lambda item: item[1])
            distribution = {path: 1.0}
        normalizer = sum(distribution.values())
        return {path: weight / normalizer for path, weight in distribution.items()}


def decompose_flow(
    flows: Dict[Tuple[Vertex, Vertex], float],
    source: Vertex,
    target: Vertex,
    tolerance: float = 1e-9,
) -> List[Tuple[Path, float]]:
    """Decompose a directed acyclic (s, t)-flow into weighted simple paths.

    Repeatedly follows the largest-capacity outgoing flow arc from the
    source to the target, peels off the bottleneck amount, and repeats
    until less than ``tolerance`` flow leaves the source.
    """
    residual = dict(flows)
    outgoing: Dict[Vertex, Dict[Vertex, float]] = {}
    for (u, v), amount in residual.items():
        outgoing.setdefault(u, {})[v] = amount

    def source_outflow() -> float:
        return sum(amount for amount in outgoing.get(source, {}).values() if amount > tolerance)

    decomposition: List[Tuple[Path, float]] = []
    max_iterations = 4 * max(len(flows), 1)
    iterations = 0
    while source_outflow() > tolerance and iterations < max_iterations:
        iterations += 1
        # Greedy widest-arc walk from source to target.
        path = [source]
        visited = {source}
        current = source
        while current != target:
            candidates = {
                v: amount
                for v, amount in outgoing.get(current, {}).items()
                if amount > tolerance and v not in visited
            }
            if not candidates:
                break
            nxt = max(candidates, key=candidates.get)
            path.append(nxt)
            visited.add(nxt)
            current = nxt
        if current != target:
            # Dead end caused by numerical residue; abandon the remainder.
            break
        bottleneck = min(outgoing[u][v] for u, v in zip(path, path[1:]))
        for u, v in zip(path, path[1:]):
            outgoing[u][v] -= bottleneck
        decomposition.append((tuple(path), bottleneck))
    return decomposition


__all__ = ["ElectricalFlowRouting", "decompose_flow"]
