"""Oblivious routing constructions used as sampling sources.

The paper's construction samples candidate paths from *any* competitive
oblivious routing (Theorem 5.3 is stated relative to the chosen routing
R).  This package provides:

* :class:`~repro.oblivious.base.ObliviousRoutingBuilder` — the interface,
* Valiant–Brebner routing on hypercubes (``valiant``),
* deterministic shortest-path and k-shortest-path routings
  (``shortest_path``) — the weak baselines,
* electrical-flow routing (``electrical``),
* the practical Räcke construction: multiplicative-weights iteration over
  congestion-aware trees (``racke``),
* hop-constrained oblivious routing (``hop_constrained``), the GHZ21
  stand-in used by the Section 7 completion-time results.
"""

from repro.oblivious.base import ObliviousRoutingBuilder, build_routing_for_pairs
from repro.oblivious.shortest_path import ShortestPathRouting, KShortestPathRouting
from repro.oblivious.valiant import ValiantHypercubeRouting
from repro.oblivious.valiant_general import ValiantGeneralRouting
from repro.oblivious.electrical import ElectricalFlowRouting
from repro.oblivious.racke import RaeckeTreeRouting
from repro.oblivious.hop_constrained import HopConstrainedRouting

__all__ = [
    "ObliviousRoutingBuilder",
    "build_routing_for_pairs",
    "ShortestPathRouting",
    "KShortestPathRouting",
    "ValiantHypercubeRouting",
    "ValiantGeneralRouting",
    "ElectricalFlowRouting",
    "RaeckeTreeRouting",
    "HopConstrainedRouting",
]
