"""Shortest-path based oblivious routings.

Two baselines:

* :class:`ShortestPathRouting` — the deterministic single shortest path
  per pair.  This is the 1-sparse oblivious routing whose competitiveness
  on hypercubes is Θ̃(√n) ([KKT91]); it anchors experiment E4.
* :class:`KShortestPathRouting` — the uniform distribution over the k
  shortest simple paths, a common traffic-engineering baseline (and the
  path set "KSP" that SMORE compares against).
"""

from __future__ import annotations

from itertools import islice
from typing import Dict

import networkx as nx

from repro.exceptions import RoutingError
from repro.graphs.network import Network, Path, Vertex
from repro.oblivious.base import ObliviousRoutingBuilder


class ShortestPathRouting(ObliviousRoutingBuilder):
    """Deterministic single shortest-path routing (ties broken by networkx order)."""

    name = "shortest-path"

    def distribution_for(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        path = self.network.shortest_path(source, target)
        return {path: 1.0}


class KShortestPathRouting(ObliviousRoutingBuilder):
    """Uniform distribution over the ``k`` shortest simple paths per pair.

    Parameters
    ----------
    network:
        Underlying network.
    k:
        Number of shortest simple paths to use (fewer when the graph has
        fewer simple paths).
    weight:
        Optional edge attribute to use as path length; hops by default.
    inverse_capacity_weight:
        When True, edge lengths are ``1 / capacity`` so high-capacity
        links are preferred — the usual TE variant.
    """

    name = "k-shortest-paths"

    def __init__(
        self,
        network: Network,
        k: int = 4,
        inverse_capacity_weight: bool = False,
    ) -> None:
        super().__init__(network)
        if k < 1:
            raise RoutingError("k must be at least 1")
        self._k = k
        self._weight_attr = None
        if inverse_capacity_weight:
            self._weight_attr = "_ksp_length"
            for u, v, data in network.graph.edges(data=True):
                data[self._weight_attr] = 1.0 / float(data.get("capacity", 1.0))

    @property
    def k(self) -> int:
        return self._k

    def distribution_for(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        generator = nx.shortest_simple_paths(
            self.network.graph, source, target, weight=self._weight_attr
        )
        paths = [tuple(path) for path in islice(generator, self._k)]
        if not paths:
            raise RoutingError(f"no path between {source!r} and {target!r}")
        probability = 1.0 / len(paths)
        return {path: probability for path in paths}


__all__ = ["ShortestPathRouting", "KShortestPathRouting"]
