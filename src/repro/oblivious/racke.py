"""Practical Räcke-style oblivious routing: MWU over congestion-aware trees.

The paper samples from Räcke's O(log n)-competitive oblivious routing
[Räc08], whose exact construction (hierarchical cut-based decompositions)
is intricate.  We implement the *practical* variant used by traffic
engineering systems (SMORE) and by experimental studies of oblivious
routing: a multiplicative-weights iteration over routing trees.

Construction
------------
We maintain per-edge lengths, initialized to ``1 / capacity``.  Each
iteration:

1. builds a spanning routing tree that prefers short (i.e. currently
   uncongested) edges — a shortest-path tree from a random root under
   randomized perturbations of the current lengths;
2. measures the *relative load* the tree places on each edge (routing the
   uniform all-pairs demand over the tree, divided by capacity);
3. multiplies the length of every edge by ``exp(epsilon * load_e /
   max_load)`` so that later trees avoid the edges the earlier trees
   overloaded.

The final oblivious routing assigns each pair the uniform mixture over
the per-tree unique paths (duplicate paths merged).  The competitiveness
of the construction is *measured* (experiment E10) rather than assumed;
on the evaluated topologies it is a small factor, which is all that
Theorem 5.3 needs from its sampling source.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import RoutingError
from repro.graphs.network import Network, Path, Vertex, edge_key
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.utils.rng import RngLike, ensure_rng


class RaeckeTreeRouting(ObliviousRoutingBuilder):
    """MWU-over-trees oblivious routing (practical Räcke construction).

    Parameters
    ----------
    network:
        Underlying network.
    num_trees:
        Number of routing trees (defaults to ``ceil(log2 n) + 1``).
    epsilon:
        Multiplicative-weights learning rate.
    perturbation:
        Relative random perturbation applied to edge lengths when
        building each tree (diversifies the tree collection).
    rng:
        Randomness source (seed, Generator, or None).
    """

    name = "raecke-trees"

    def __init__(
        self,
        network: Network,
        num_trees: Optional[int] = None,
        epsilon: float = 0.5,
        perturbation: float = 0.3,
        rng: RngLike = None,
    ) -> None:
        super().__init__(network)
        if num_trees is None:
            num_trees = max(2, int(math.ceil(math.log2(max(network.num_vertices, 2)))) + 1)
        if num_trees < 1:
            raise RoutingError("num_trees must be at least 1")
        self._num_trees = num_trees
        self._epsilon = epsilon
        self._perturbation = perturbation
        self._rng = ensure_rng(rng)
        self._trees: List[nx.Graph] = []
        self._tree_weights: List[float] = []
        self._build_trees()

    # ------------------------------------------------------------------ #
    # Tree construction
    # ------------------------------------------------------------------ #
    @property
    def trees(self) -> List[nx.Graph]:
        """The routing trees (spanning trees of the network)."""
        return list(self._trees)

    @property
    def tree_weights(self) -> List[float]:
        """Mixture weights over trees (sum to 1)."""
        return list(self._tree_weights)

    def _build_trees(self) -> None:
        graph = self.network.graph
        lengths: Dict[Tuple[Vertex, Vertex], float] = {
            edge: 1.0 / self.network.capacity_of(edge) for edge in self.network.edges
        }
        vertices = self.network.vertices
        for _ in range(self._num_trees):
            tree = self._congestion_aware_tree(lengths)
            self._trees.append(tree)
            loads = self._relative_loads(tree)
            max_load = max(loads.values(), default=1.0)
            if max_load <= 0:
                max_load = 1.0
            for edge, load in loads.items():
                lengths[edge] *= math.exp(self._epsilon * load / max_load)
        # Uniform mixture: each tree contributes equally.  (Weighting trees
        # by inverse max relative load gave no measurable improvement in
        # calibration runs and complicates reproducibility, so we keep the
        # uniform mixture and let the MWU length updates do the balancing.)
        self._tree_weights = [1.0 / len(self._trees)] * len(self._trees)
        _ = vertices

    def _congestion_aware_tree(self, lengths: Dict[Tuple[Vertex, Vertex], float]) -> nx.Graph:
        """A shortest-path tree from a random root under perturbed lengths."""
        graph = self.network.graph
        weighted = nx.Graph()
        for u, v in self.network.edges:
            base = lengths[edge_key(u, v)]
            noise = 1.0 + self._perturbation * float(self._rng.random())
            weighted.add_edge(u, v, weight=base * noise)
        root_index = int(self._rng.integers(0, self.network.num_vertices))
        root = self.network.vertices[root_index]
        distances, paths = nx.single_source_dijkstra(weighted, root, weight="weight")
        tree = nx.Graph()
        tree.add_nodes_from(graph.nodes())
        for vertex, path in paths.items():
            for u, v in zip(path, path[1:]):
                tree.add_edge(u, v)
        _ = distances
        if tree.number_of_nodes() != graph.number_of_nodes() or not nx.is_connected(tree):
            raise RoutingError("failed to build a spanning routing tree")
        return tree

    def _relative_loads(self, tree: nx.Graph) -> Dict[Tuple[Vertex, Vertex], float]:
        """Relative load each network edge receives when the uniform demand rides the tree.

        Removing a tree edge splits the vertices into two sides of sizes
        ``a`` and ``n - a``; the uniform all-pairs demand sends ``a * (n -
        a)`` units over that edge.  Non-tree edges receive no load.
        """
        n = self.network.num_vertices
        loads: Dict[Tuple[Vertex, Vertex], float] = {}
        # Root the tree and compute subtree sizes in one DFS.
        root = next(iter(tree.nodes()))
        parent: Dict[Vertex, Optional[Vertex]] = {root: None}
        order: List[Vertex] = []
        stack = [root]
        seen = {root}
        while stack:
            vertex = stack.pop()
            order.append(vertex)
            for neighbor in tree.neighbors(vertex):
                if neighbor not in seen:
                    seen.add(neighbor)
                    parent[neighbor] = vertex
                    stack.append(neighbor)
        subtree_size = {vertex: 1 for vertex in tree.nodes()}
        for vertex in reversed(order):
            if parent[vertex] is not None:
                subtree_size[parent[vertex]] += subtree_size[vertex]
        for vertex in order:
            if parent[vertex] is None:
                continue
            below = subtree_size[vertex]
            crossing = below * (n - below)
            edge = edge_key(vertex, parent[vertex])
            loads[edge] = crossing / self.network.capacity_of(edge)
        return loads

    # ------------------------------------------------------------------ #
    # Distribution per pair
    # ------------------------------------------------------------------ #
    def distribution_for(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        distribution: Dict[Path, float] = {}
        for tree, weight in zip(self._trees, self._tree_weights):
            nodes = nx.shortest_path(tree, source, target)
            path: Path = tuple(nodes)
            distribution[path] = distribution.get(path, 0.0) + weight
        return distribution

    def sample_path(self, source: Vertex, target: Vertex, rng: RngLike = None) -> Path:
        """Draw one path: pick a tree by weight, return its unique (s, t)-path."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        index = int(generator.choice(len(self._trees), p=self._tree_weights))
        nodes = nx.shortest_path(self._trees[index], source, target)
        return tuple(nodes)


__all__ = ["RaeckeTreeRouting"]
