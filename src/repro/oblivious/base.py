"""The oblivious-routing builder interface.

An oblivious routing is just a :class:`~repro.core.routing.Routing`
object.  Builders differ in *how* they pick the path distribution for a
pair: each builder implements ``distribution_for(source, target)`` and
the base class assembles full or partial routings from it, caching the
per-pair work so that repeated sampling from the same routing is cheap.
"""

from __future__ import annotations

import abc
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.routing import Routing
from repro.exceptions import RoutingError
from repro.graphs.network import Network, Path, Vertex

Pair = Tuple[Vertex, Vertex]


class ObliviousRoutingBuilder(abc.ABC):
    """Base class for oblivious routing constructions.

    Subclasses implement :meth:`distribution_for`.  The builder caches
    per-pair distributions; :meth:`routing` materializes a
    :class:`Routing` over a requested pair set (default: all ordered
    pairs), and :meth:`routing_for_demand` over a demand's support only.
    """

    #: Human-readable scheme name (overridden by subclasses).
    name: str = "oblivious"

    def __init__(self, network: Network) -> None:
        self._network = network
        self._cache: Dict[Pair, Dict[Path, float]] = {}

    @property
    def network(self) -> Network:
        return self._network

    @abc.abstractmethod
    def distribution_for(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        """Return the path distribution ``R(source, target)``.

        Implementations must return a nonempty mapping from simple
        (source, target)-paths to positive probabilities summing to one.
        """

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def pair_distribution(self, source: Vertex, target: Vertex) -> Mapping[Path, float]:
        """Cached access to ``distribution_for``.

        Returns a read-only view of the cached distribution — callers
        share the cache entry without being able to corrupt it, and
        repeated access copies nothing.
        """
        if source == target:
            raise RoutingError("oblivious routings do not route a vertex to itself")
        key = (source, target)
        if key not in self._cache:
            distribution = self.distribution_for(source, target)
            if not distribution:
                raise RoutingError(f"builder produced an empty distribution for {key!r}")
            self._cache[key] = dict(distribution)
        return MappingProxyType(self._cache[key])

    def prewarm(self, pairs: Iterable[Pair]) -> int:
        """Bulk-fill the per-pair cache for ``pairs`` (self-pairs skipped).

        Used by the engine's batch path so that every scheme sharing
        this builder finds a warm cache.  Returns the number of pairs
        newly computed.
        """
        computed = 0
        for source, target in pairs:
            if source == target:
                continue
            if (source, target) not in self._cache:
                self.pair_distribution(source, target)
                computed += 1
        return computed

    def routing(self, pairs: Optional[Iterable[Pair]] = None) -> Routing:
        """Materialize a routing over ``pairs`` (default: every ordered pair)."""
        if pairs is None:
            pairs = self._network.vertex_pairs(ordered=True)
        distributions = {}
        for source, target in pairs:
            if source == target:
                continue
            distributions[(source, target)] = self.pair_distribution(source, target)
        return Routing(self._network, distributions)

    def routing_for_demand(self, demand) -> Routing:
        """Materialize a routing covering exactly the demand's support."""
        return self.routing(pairs=demand.pairs())

    def clear_cache(self) -> None:
        self._cache.clear()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(network={self._network.name!r})"


def build_routing_for_pairs(
    builder: ObliviousRoutingBuilder,
    pairs: Iterable[Pair],
) -> Routing:
    """Convenience wrapper: materialize ``builder`` over an explicit pair list."""
    return builder.routing(pairs=list(pairs))


__all__ = ["ObliviousRoutingBuilder", "build_routing_for_pairs", "Pair"]
