"""Valiant–Brebner oblivious routing on the hypercube ([VB81]).

"Valiant's trick": to route from ``s`` to ``t``, first fix the bits from
``s`` toward a uniformly random intermediate vertex ``w`` (left-to-right
bit fixing), then fix the bits from ``w`` toward ``t``.  For any
permutation demand the expected congestion of every edge is O(1), making
the scheme (poly log n)-competitive — the canonical example of a
competitive oblivious routing that is *not* sparse (its per-pair support
has ~n paths), which is exactly what Section 5 samples from.

The exact distribution has exponentially many support paths, so the
builder exposes two modes:

* ``distribution_for`` enumerates the support only for small dimensions
  (it is used by tests on tiny cubes), capped by ``max_support``;
* ``sample_path`` draws a path from the exact distribution without ever
  materializing it — this is what α-sampling uses, and it works for any
  dimension.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import GraphError, RoutingError
from repro.graphs.network import Network, Path, Vertex
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.utils.rng import RngLike, ensure_rng


def bit_fixing_path(source: int, target: int, dimension: int) -> Tuple[int, ...]:
    """The left-to-right bit-fixing path from ``source`` to ``target``."""
    path = [source]
    current = source
    for bit in range(dimension):
        mask = 1 << bit
        if (current & mask) != (target & mask):
            current ^= mask
            path.append(current)
    return tuple(path)


class ValiantHypercubeRouting(ObliviousRoutingBuilder):
    """Valiant's two-phase randomized routing on a ``dimension``-cube.

    Parameters
    ----------
    network:
        A hypercube built by :func:`repro.graphs.topologies.hypercube`.
    dimension:
        The cube dimension; validated against the network size.
    max_support:
        Cap on the number of intermediate vertices enumerated when
        materializing the exact distribution (safety guard for tests on
        small cubes; sampling never enumerates).
    rng:
        Generator used by :meth:`sample_path`.
    """

    name = "valiant-hypercube"

    def __init__(
        self,
        network: Network,
        dimension: int,
        max_support: int = 4096,
        rng: RngLike = None,
    ) -> None:
        super().__init__(network)
        if network.num_vertices != (1 << dimension):
            raise GraphError(
                f"network has {network.num_vertices} vertices, expected {1 << dimension}"
            )
        self._dimension = dimension
        self._max_support = max_support
        self._rng = ensure_rng(rng)

    @property
    def dimension(self) -> int:
        return self._dimension

    # ------------------------------------------------------------------ #
    # Exact distribution (small cubes only)
    # ------------------------------------------------------------------ #
    def distribution_for(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        size = 1 << self._dimension
        if size > self._max_support:
            raise RoutingError(
                "exact Valiant distribution is too large to materialize; "
                "use sample_path / alpha_sample instead"
            )
        distribution: Dict[Path, float] = {}
        probability = 1.0 / size
        for intermediate in range(size):
            path = self._two_phase_path(int(source), int(target), intermediate)
            distribution[path] = distribution.get(path, 0.0) + probability
        return distribution

    # ------------------------------------------------------------------ #
    # Sampling (any dimension)
    # ------------------------------------------------------------------ #
    def sample_path(self, source: Vertex, target: Vertex, rng: RngLike = None) -> Path:
        """Draw one path from the exact Valiant distribution."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        intermediate = int(generator.integers(0, 1 << self._dimension))
        return self._two_phase_path(int(source), int(target), intermediate)

    def _two_phase_path(self, source: int, target: int, intermediate: int) -> Path:
        first = bit_fixing_path(source, intermediate, self._dimension)
        second = bit_fixing_path(intermediate, target, self._dimension)
        combined: List[int] = list(first) + list(second[1:])
        return self._make_simple(combined)

    @staticmethod
    def _make_simple(walk: List[int]) -> Path:
        """Shortcut a walk into a simple path by removing loops.

        The concatenation of the two bit-fixing phases can revisit a
        vertex (for example when the intermediate shares bits with both
        endpoints); shortcutting removes the excursion between the two
        visits, which never increases the congestion contribution.
        """
        last_seen = {}
        simple: List[int] = []
        for vertex in walk:
            if vertex in last_seen:
                # Remove the loop: drop everything after the first visit.
                cut = last_seen[vertex]
                for removed in simple[cut + 1 :]:
                    last_seen.pop(removed, None)
                simple = simple[: cut + 1]
            else:
                last_seen[vertex] = len(simple)
                simple.append(vertex)
        return tuple(simple)


__all__ = ["ValiantHypercubeRouting", "bit_fixing_path"]
