"""Hop-constrained oblivious routing (the [GHZ21] stand-in, Section 7).

The completion-time results of Section 7 consume a *h-hop oblivious
routing*: a routing whose dilation is at most ``beta * h`` (hop stretch
``beta``) and whose congestion is within a factor ``C`` of the best
routing restricted to dilation ``h``.  The exact [GHZ21] construction
(hop-constrained expander decompositions) is far outside laptop scope, so
we build a simulated equivalent that honours the same black-box
interface:

* candidate paths are restricted to at most ``hop_bound * hop_stretch``
  hops;
* within the hop budget, traffic is spread over many near-shortest paths
  using the same congestion-aware MWU-over-trees idea as
  :class:`~repro.oblivious.racke.RaeckeTreeRouting`, but with trees built
  from hop-limited searches (so tree paths respect the budget), falling
  back to hop-limited k-shortest paths for pairs the trees fail to serve
  within budget;
* pairs whose graph distance already exceeds the hop bound raise
  :class:`InfeasibleError` — matching the paper's convention that
  ``opt^{(h)}`` is only compared against routings that meet the bound.

The measured hop-stretch and congestion-approximation of the construction
are reported by experiment E7; only those two measured quantities enter
the Section 7 pipeline, so the substitution preserves the behaviour the
theory relies on (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import math
from itertools import islice
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import InfeasibleError, RoutingError
from repro.graphs.network import Network, Path, Vertex, edge_key
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.utils.rng import RngLike, ensure_rng


class HopConstrainedRouting(ObliviousRoutingBuilder):
    """An oblivious routing whose paths respect a hop budget.

    Parameters
    ----------
    network:
        Underlying network.
    hop_bound:
        The target hop bound ``h``.
    hop_stretch:
        Allowed multiplicative slack: produced paths use at most
        ``ceil(hop_stretch * hop_bound)`` hops (the ``beta`` of the
        [GHZ21] interface).  Defaults to 2.
    num_trees:
        Number of congestion-aware trees used to diversify paths.
    fallback_paths:
        Number of hop-limited shortest simple paths used when the trees
        cannot serve a pair within budget.
    rng:
        Randomness source.
    """

    name = "hop-constrained"

    def __init__(
        self,
        network: Network,
        hop_bound: int,
        hop_stretch: float = 2.0,
        num_trees: Optional[int] = None,
        fallback_paths: int = 4,
        rng: RngLike = None,
    ) -> None:
        super().__init__(network)
        if hop_bound < 1:
            raise RoutingError("hop_bound must be at least 1")
        if hop_stretch < 1.0:
            raise RoutingError("hop_stretch must be at least 1")
        self._hop_bound = hop_bound
        self._hop_limit = int(math.ceil(hop_bound * hop_stretch))
        self._fallback_paths = max(1, fallback_paths)
        self._rng = ensure_rng(rng)
        if num_trees is None:
            num_trees = max(2, int(math.ceil(math.log2(max(network.num_vertices, 2)))))
        self._num_trees = num_trees
        self._lengths: Dict[Tuple[Vertex, Vertex], float] = {
            edge: 1.0 / network.capacity_of(edge) for edge in network.edges
        }
        self._length_graphs: List[nx.Graph] = self._build_length_graphs()

    @property
    def hop_bound(self) -> int:
        return self._hop_bound

    @property
    def hop_limit(self) -> int:
        """The actual per-path hop cap (``ceil(hop_stretch * hop_bound)``)."""
        return self._hop_limit

    def _build_length_graphs(self) -> List[nx.Graph]:
        """Randomly perturbed length graphs; each plays the role of one 'tree'."""
        graphs = []
        for _ in range(self._num_trees):
            weighted = nx.Graph()
            for u, v in self.network.edges:
                base = self._lengths[edge_key(u, v)]
                noise = 1.0 + 0.5 * float(self._rng.random())
                weighted.add_edge(u, v, weight=base * noise)
            graphs.append(weighted)
        return graphs

    # ------------------------------------------------------------------ #
    def _hop_limited_paths(self, source: Vertex, target: Vertex) -> List[Path]:
        shortest = self.network.distance(source, target)
        if shortest > self._hop_limit:
            raise InfeasibleError(
                f"pair {(source, target)!r} has distance {shortest} > hop limit {self._hop_limit}"
            )
        candidates: List[Path] = []
        seen = set()
        # Randomized-length shortest paths (diverse but short).
        for weighted in self._length_graphs:
            nodes = nx.shortest_path(weighted, source, target, weight="weight")
            path = tuple(nodes)
            if len(path) - 1 <= self._hop_limit and path not in seen:
                seen.add(path)
                candidates.append(path)
        # Hop-limited k-shortest fallback to guarantee coverage.
        if len(candidates) < self._fallback_paths:
            generator = nx.shortest_simple_paths(self.network.graph, source, target)
            for nodes in islice(generator, 4 * self._fallback_paths):
                path = tuple(nodes)
                if len(path) - 1 > self._hop_limit:
                    break  # simple paths are produced in length order
                if path not in seen:
                    seen.add(path)
                    candidates.append(path)
                if len(candidates) >= self._fallback_paths:
                    break
        if not candidates:
            raise InfeasibleError(
                f"no path within {self._hop_limit} hops between {source!r} and {target!r}"
            )
        return candidates

    def distribution_for(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        candidates = self._hop_limited_paths(source, target)
        probability = 1.0 / len(candidates)
        return {path: probability for path in candidates}

    def sample_path(self, source: Vertex, target: Vertex, rng: RngLike = None) -> Path:
        """Sample a path uniformly from the hop-limited candidate set."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        candidates = self._hop_limited_paths(source, target)
        index = int(generator.integers(0, len(candidates)))
        return candidates[index]

    # ------------------------------------------------------------------ #
    def measured_hop_stretch(self, pairs: Optional[List[Tuple[Vertex, Vertex]]] = None) -> float:
        """Maximum produced-path hops divided by the hop bound (the empirical beta)."""
        if pairs is None:
            pairs = list(self.network.vertex_pairs(ordered=False))
        worst = 0.0
        for source, target in pairs:
            try:
                candidates = self._hop_limited_paths(source, target)
            except InfeasibleError:
                continue
            longest = max(len(path) - 1 for path in candidates)
            worst = max(worst, longest / self._hop_bound)
        return worst


__all__ = ["HopConstrainedRouting"]
