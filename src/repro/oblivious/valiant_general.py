"""Valiant-style load balancing on general graphs (the "VLB" baseline).

The hypercube-specific Valiant routing generalizes to arbitrary graphs:
route from ``s`` to a uniformly random intermediate vertex ``w`` along a
shortest path, then from ``w`` to ``t`` along a shortest path.  This is
the classical "Valiant load balancing" scheme used as a baseline in
traffic engineering evaluations (SMORE calls it VLB); it trades path
length (dilation up to twice the diameter) for load spreading.

Like the hypercube version, the exact distribution has up to ``n``
support paths per pair, so the builder supports both exact
materialization (capped) and direct sampling for use with α-samples.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import RoutingError
from repro.graphs.network import Network, Path, Vertex
from repro.oblivious.base import ObliviousRoutingBuilder
from repro.utils.rng import RngLike, ensure_rng


def _splice(first: Path, second: Path) -> Path:
    """Concatenate two paths sharing an endpoint and shortcut repeated vertices."""
    walk: List[Vertex] = list(first) + list(second[1:])
    last_seen: Dict[Vertex, int] = {}
    simple: List[Vertex] = []
    for vertex in walk:
        if vertex in last_seen:
            cut = last_seen[vertex]
            for removed in simple[cut + 1 :]:
                last_seen.pop(removed, None)
            simple = simple[: cut + 1]
        else:
            last_seen[vertex] = len(simple)
            simple.append(vertex)
    return tuple(simple)


class ValiantGeneralRouting(ObliviousRoutingBuilder):
    """Valiant load balancing via random intermediate vertices on any graph.

    Parameters
    ----------
    network:
        Underlying network.
    max_support:
        Cap on the number of intermediate vertices enumerated when the
        exact distribution is materialized; sampling never enumerates.
    rng:
        Randomness used by :meth:`sample_path`.
    """

    name = "valiant-general"

    def __init__(self, network: Network, max_support: int = 512, rng: RngLike = None) -> None:
        super().__init__(network)
        self._max_support = max_support
        self._rng = ensure_rng(rng)

    def distribution_for(self, source: Vertex, target: Vertex) -> Dict[Path, float]:
        vertices = self.network.vertices
        if len(vertices) > self._max_support:
            raise RoutingError(
                "exact Valiant-general distribution is too large to materialize; "
                "use sample_path / alpha_sample instead"
            )
        probability = 1.0 / len(vertices)
        distribution: Dict[Path, float] = {}
        for intermediate in vertices:
            path = self._two_phase_path(source, target, intermediate)
            distribution[path] = distribution.get(path, 0.0) + probability
        return distribution

    def sample_path(self, source: Vertex, target: Vertex, rng: RngLike = None) -> Path:
        """Draw one path: random intermediate vertex, shortest paths both phases."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        vertices = self.network.vertices
        intermediate = vertices[int(generator.integers(0, len(vertices)))]
        return self._two_phase_path(source, target, intermediate)

    def _two_phase_path(self, source: Vertex, target: Vertex, intermediate: Vertex) -> Path:
        first = self.network.shortest_path(source, intermediate)
        second = self.network.shortest_path(intermediate, target)
        return _splice(first, second)


__all__ = ["ValiantGeneralRouting"]
