#!/usr/bin/env python3
"""The Section 8 lower bound, constructively.

Builds the gadget C(n, k) of Lemma 8.1 (Figure 1 of the paper), samples an
alpha-sparse semi-oblivious routing from a competitive oblivious routing,
and runs the pigeonhole adversary from the proof: it finds a permutation
demand between star leaves whose every candidate path squeezes through a
common set S' of at most alpha middle vertices.  Any routing restricted to
the candidate paths then has congestion at least |matching| / alpha, while
the offline optimum routes the same demand with congestion 1.

Run with::

    python examples/lower_bound_demo.py [n] [alpha]
"""

from __future__ import annotations

import sys

from repro.core.rate_adaptation import optimal_rates
from repro.core.sampling import alpha_sample
from repro.demands.adversarial import lower_bound_adversary
from repro.graphs.lower_bound import ascii_render_gadget, gadget_size_k, lower_bound_gadget
from repro.mcf import min_congestion_lp
from repro.oblivious import RaeckeTreeRouting
from repro.utils.tables import Table


def main(n: int = 64, alpha: int = 2, seed: int = 0) -> None:
    k = gadget_size_k(n, alpha)
    network, layout = lower_bound_gadget(n, k)
    print(ascii_render_gadget(layout))
    print(f"\nGadget C({n}, {k}): {network.num_vertices} vertices, {network.num_edges} edges "
          f"(k = floor(n^(1/(2*alpha))) for alpha = {alpha})\n")

    oblivious = RaeckeTreeRouting(network, rng=seed)
    pairs = [(s, t) for s in layout.left_leaves for t in layout.right_leaves]
    system = alpha_sample(oblivious, alpha, pairs=pairs, rng=seed)
    print(f"Sampled an alpha = {alpha} sparse semi-oblivious routing over the "
          f"{len(pairs)} leaf-to-leaf pairs.")

    adversary = lower_bound_adversary(system, layout)
    print(f"Adversary found a matching of {len(adversary.matching)} leaf pairs whose candidate "
          f"paths all cross the bottleneck set S' of {len(adversary.bottleneck_vertices)} middle "
          f"vertex(es).")

    adaptation = optimal_rates(system, adversary.demand)
    optimum = min_congestion_lp(network, adversary.demand).congestion

    table = Table(headers=["quantity", "value"], title="\nLemma 8.1 in numbers")
    table.add_row("offline optimal congestion", optimum)
    table.add_row("guaranteed lower bound (matching / |S'|)", adversary.congestion_lower_bound)
    table.add_row("best congestion on the sampled paths", adaptation.congestion)
    table.add_row("measured competitive ratio", adaptation.congestion / optimum)
    table.add_row("theory curve n^(1/(2 alpha)) / alpha", k / alpha)
    print(table)
    print("\nEven with demand-adaptive rates, the sparse candidate set cannot escape the "
          "bottleneck — matching the paper's lower-bound trade-off.")


if __name__ == "__main__":
    n_arg = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    alpha_arg = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(n_arg, alpha_arg)
