#!/usr/bin/env python3
"""Completion-time competitive semi-oblivious routing (Section 7).

On a ring of cliques, minimizing congestion alone can send packets on long
detours, hurting the completion time (congestion + dilation).  Sampling
from hop-constrained oblivious routings at several geometric hop scales
(the Lemma 2.8 construction) keeps both congestion and dilation small.

Run with::

    python examples/completion_time_demo.py [num_cliques] [clique_size]
"""

from __future__ import annotations

import sys

from repro.core.completion_time import (
    MultiScaleHopSample,
    best_completion_time_on_system,
    completion_time_competitive_ratio,
)
from repro.core.sampling import alpha_sample
from repro.demands import random_pairs_demand
from repro.graphs import topologies
from repro.oblivious import RaeckeTreeRouting
from repro.utils.tables import Table


def main(num_cliques: int = 5, clique_size: int = 4, alpha: int = 3, seed: int = 0) -> None:
    network = topologies.ring_of_cliques(num_cliques, clique_size)
    print(f"Topology: {network.name} (n={network.num_vertices}, diameter={network.diameter()})")

    demand = random_pairs_demand(network, num_pairs=8, rng=seed)
    print(f"Demand: {demand.support_size()} random unit pairs\n")

    # Congestion-only candidate paths (sampled from the Raecke-style routing).
    congestion_only = alpha_sample(
        RaeckeTreeRouting(network, rng=seed), alpha, pairs=demand.pairs(), rng=seed
    )
    congestion_result = best_completion_time_on_system(congestion_only, demand)

    # Multi-scale hop-constrained sample (Lemma 2.8).
    hop_sample = MultiScaleHopSample.build(network, alpha=alpha, pairs=demand.pairs(), rng=seed)
    hop_ratio, hop_result, baseline = completion_time_competitive_ratio(hop_sample, demand)

    table = Table(
        headers=["scheme", "congestion", "dilation", "completion time"],
        title="Completion time = congestion + dilation",
    )
    table.add_row("congestion-optimal baseline (MCF routing)", baseline - 0, "-", baseline)
    table.add_row(
        f"congestion-only alpha={alpha} sample",
        congestion_result.congestion,
        congestion_result.dilation,
        congestion_result.completion_time,
    )
    table.add_row(
        f"multi-scale hop sample ({len(hop_sample.scales)} scales, sparsity {hop_sample.sparsity()})",
        hop_result.congestion,
        hop_result.dilation,
        hop_result.completion_time,
    )
    print(table)
    print(f"\nCompletion-time competitive ratio of the multi-scale sample: {hop_ratio:.2f}")
    print("Sampling per hop scale bounds the dilation without giving up congestion — the "
          "Section 7 extension via hop-constrained oblivious routings.")


if __name__ == "__main__":
    cliques = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(cliques, size)
